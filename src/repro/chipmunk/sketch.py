"""Sketch construction for program synthesis.

Chipmunk (paper §5.2) "generates machine code in the form of constant
integers from a given Domino file through the use of program synthesis".  In
synthesis terms the machine-code pairs are *holes*; a sketch enumerates the
holes to be solved for and the candidate values each may take.

The reproduction has no SMT solver available offline, so the search operates
over explicit finite domains: bounded holes (multiplexers, opcodes) use their
natural domain and unbounded holes (immediates) draw from a *constant pool*
derived from the program being compiled.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import SynthesisError
from ..hardware import PipelineSpec
from ..machine_code.pairs import MachineCode

#: Default immediates offered to unbounded holes when no pool is supplied.
DEFAULT_CONSTANT_POOL: Tuple[int, ...] = (0, 1, 2)


@dataclass
class Sketch:
    """A finite search space over machine-code pairs.

    Attributes
    ----------
    pipeline_spec:
        The hardware configuration the machine code targets.
    search_names:
        The machine-code pair names being synthesised, in a fixed order (an
        *assignment* is a list of indices parallel to this list).
    domains:
        Candidate values for each searched name.
    frozen:
        Values for every pair that is **not** being searched (the baseline is
        the all-pass-through program, possibly overridden by the caller —
        e.g. a compiler front end that has already decided the routing).
    """

    pipeline_spec: PipelineSpec
    search_names: List[str]
    domains: Dict[str, List[int]]
    frozen: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_pipeline(
        cls,
        pipeline_spec: PipelineSpec,
        constant_pool: Sequence[int] = DEFAULT_CONSTANT_POOL,
        freeze: Optional[Mapping[str, int]] = None,
        search_names: Optional[Iterable[str]] = None,
    ) -> "Sketch":
        """Build a sketch for ``pipeline_spec``.

        ``freeze`` pins specific pairs to fixed values (they are excluded
        from the search); ``search_names`` restricts the search to a subset
        of pairs (defaults to every pair not frozen).  Unbounded holes get
        the ``constant_pool`` as their domain.
        """
        if not constant_pool:
            raise SynthesisError("constant pool must not be empty")
        pool = sorted({int(value) for value in constant_pool})
        if any(value < 0 for value in pool):
            raise SynthesisError("constant pool values must be unsigned")

        baseline = pipeline_spec.passthrough_machine_code().as_dict()
        frozen = dict(baseline)
        if freeze:
            unknown = set(freeze) - set(baseline)
            if unknown:
                raise SynthesisError(
                    f"freeze refers to unknown machine-code pairs: {sorted(unknown)[:3]}"
                )
            frozen.update({name: int(value) for name, value in freeze.items()})

        hole_domains = pipeline_spec.hole_domains()
        if search_names is None:
            names = [name for name in baseline if name not in (freeze or {})]
        else:
            names = list(search_names)
            unknown = set(names) - set(baseline)
            if unknown:
                raise SynthesisError(
                    f"search_names refers to unknown machine-code pairs: {sorted(unknown)[:3]}"
                )

        domains: Dict[str, List[int]] = {}
        for name in names:
            domain_size = hole_domains[name]
            if domain_size == 0:
                domains[name] = list(pool)
            else:
                domains[name] = list(range(domain_size))
            frozen.pop(name, None)

        return cls(
            pipeline_spec=pipeline_spec,
            search_names=names,
            domains=domains,
            frozen=frozen,
        )

    # ------------------------------------------------------------------
    # Search-space queries
    # ------------------------------------------------------------------
    def space_size(self) -> int:
        """Total number of candidate assignments."""
        size = 1
        for name in self.search_names:
            size *= len(self.domains[name])
        return size

    def domain_sizes(self) -> List[int]:
        """Domain cardinality per searched name (parallel to ``search_names``)."""
        return [len(self.domains[name]) for name in self.search_names]

    # ------------------------------------------------------------------
    # Assignments
    # ------------------------------------------------------------------
    def random_assignment(self, rng: random.Random) -> List[int]:
        """A uniformly random assignment (indices into each domain)."""
        return [rng.randrange(len(self.domains[name])) for name in self.search_names]

    def zero_assignment(self) -> List[int]:
        """The all-zeros assignment (first candidate of every domain)."""
        return [0] * len(self.search_names)

    def mutate(self, assignment: Sequence[int], rng: random.Random, positions: int = 1) -> List[int]:
        """Return a copy of ``assignment`` with ``positions`` coordinates re-drawn."""
        if not self.search_names:
            return list(assignment)
        mutated = list(assignment)
        for _ in range(positions):
            index = rng.randrange(len(self.search_names))
            domain = self.domains[self.search_names[index]]
            mutated[index] = rng.randrange(len(domain))
        return mutated

    def enumerate_assignments(self) -> Iterable[List[int]]:
        """Yield every assignment in lexicographic order (use only for small spaces)."""
        sizes = self.domain_sizes()
        if not sizes:
            yield []
            return
        assignment = [0] * len(sizes)
        while True:
            yield list(assignment)
            position = len(sizes) - 1
            while position >= 0:
                assignment[position] += 1
                if assignment[position] < sizes[position]:
                    break
                assignment[position] = 0
                position -= 1
            if position < 0:
                return

    def to_machine_code(self, assignment: Sequence[int]) -> MachineCode:
        """Materialise an assignment as a complete machine-code program."""
        if len(assignment) != len(self.search_names):
            raise SynthesisError(
                f"assignment has {len(assignment)} entries, sketch has {len(self.search_names)} holes"
            )
        pairs = dict(self.frozen)
        for name, index in zip(self.search_names, assignment):
            domain = self.domains[name]
            pairs[name] = domain[index % len(domain)]
        return MachineCode(pairs)

    def to_values(self, assignment: Sequence[int]) -> Dict[str, int]:
        """Like :meth:`to_machine_code` but returning a plain dict (runtime ``values``).

        This sits on the CEGIS inner loop (one call per candidate), so it
        builds the dict directly: the frozen pairs and domain values were
        already validated when the sketch was constructed, making the
        :class:`MachineCode` re-validation redundant.
        """
        if len(assignment) != len(self.search_names):
            raise SynthesisError(
                f"assignment has {len(assignment)} entries, sketch has {len(self.search_names)} holes"
            )
        values = dict(self.frozen)
        for name, index in zip(self.search_names, assignment):
            domain = self.domains[name]
            values[name] = domain[index % len(domain)]
        return values
