"""Chipmunk-style compilation to the Druzhba instruction set (paper §5.2).

Two compiler back ends are provided:

* :class:`MachineCodeBuilder` — a rule-based *grid allocator* that places
  concrete atom configurations onto the pipeline (what the benchmark-program
  suite uses);
* :class:`ChipmunkCompiler` — a program-synthesis-based compiler (sketch +
  CEGIS search) modelled on the paper's case-study compiler.
"""

from .allocation import MachineCodeBuilder
from .compiler import ChipmunkCompiler, CompileResult, program_constant_pool
from .sketch import DEFAULT_CONSTANT_POOL, Sketch
from .synthesis import SynthesisConfig, SynthesisEngine, SynthesisResult

__all__ = [
    "MachineCodeBuilder",
    "ChipmunkCompiler",
    "CompileResult",
    "program_constant_pool",
    "Sketch",
    "DEFAULT_CONSTANT_POOL",
    "SynthesisConfig",
    "SynthesisEngine",
    "SynthesisResult",
]
