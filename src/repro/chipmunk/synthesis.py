"""Counterexample-guided synthesis of machine code.

The paper's case-study compiler, Chipmunk, uses SKETCH-style program
synthesis to find machine code implementing a Domino program.  Offline and
without an SMT solver, this reproduction uses counterexample-guided inductive
synthesis (CEGIS) with an explicit-search inner loop:

1. draw a small set of example PHVs;
2. search the sketch for an assignment whose pipeline behaviour matches the
   specification on every example (exhaustively when the space is small,
   otherwise by random restarts plus coordinate-wise hill climbing);
3. verify the candidate against the specification on a much larger random
   trace; a disagreeing PHV becomes a new example and the loop repeats.

The inner loop evaluates candidates with the *unoptimised* (level-0) pipeline
description, which accepts machine code as runtime values — precisely the
pre-optimisation dgen/dsim split the paper describes in §3.4 — so the
(comparatively expensive) code generation runs only once per sketch.

Because the inner loop scores thousands of candidates against the *same*
example set, three hot-path optimisations apply (none changes results):

* the specification trace is computed once per distinct input trace and
  cached (:meth:`SynthesisEngine._spec_outputs`) instead of being re-run for
  every candidate;
* one :class:`_CandidateEvaluator` pushes example PHVs through the stage
  functions sequentially — semantically identical to the tick model for a
  feedforward pipeline — instead of constructing a fresh simulator, pipeline
  and trace per candidate;
* mismatch counting early-exits as soon as a candidate is provably no better
  than the score it is compared against.

The §5.2 failure mode "the synthesis engine failed to find machine code to
satisfy 10-bit inputs in the allotted time thus only returning machine code
that only satisfied a limited range of values" is reproduced faithfully: when
the CEGIS loop exhausts its iteration budget, the engine returns the best
candidate found so far flagged as unverified.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import dgen
from ..dgen.emit import PipelineDescription
from ..dsim import TrafficGenerator
from ..engine.rmt import push_phv, stage_pairs
from ..errors import MissingMachineCodeError
from ..hardware import PipelineSpec
from ..machine_code.pairs import MachineCode
from ..testing.spec import Specification
from .sketch import Sketch


class _CandidateEvaluator:
    """Scores machine-code candidates against cached specification outputs.

    Built once per synthesis run from the level-0 pipeline description and
    reused for every candidate.  Execution is the engine layer's *generic
    sequential driver* (:mod:`repro.engine.rmt`): PHVs are pushed through
    the stage functions one at a time, in order — for a feedforward pipeline
    this produces exactly the tick model's outputs and state, without
    per-candidate simulator construction, PHV objects or trace records.
    Scoring keeps its own inner loop on top of the shared
    :func:`~repro.engine.rmt.stage_pairs` layout so mismatch counting can
    early-exit mid-trace.
    """

    def __init__(
        self,
        description: PipelineDescription,
        initial_state: Optional[List[List[List[int]]]],
        containers: Optional[Sequence[int]],
    ):
        self._description = description
        self._stage_functions = list(description.stage_functions)
        self._initial_state = initial_state
        self._containers = list(containers) if containers is not None else None

    def _fresh_state(self) -> List[List[List[int]]]:
        if self._initial_state is None:
            return self._description.initial_state()
        return [[list(alu) for alu in stage] for stage in self._initial_state]

    @staticmethod
    def prepare(inputs: Sequence[Sequence[int]]) -> List[List[int]]:
        """Coerce an input trace to container-int lists, once per example set.

        Stage functions read their PHV argument and return a fresh list, so
        prepared inputs can be handed to every candidate without copying.
        """
        return [[int(v) for v in phv] for phv in inputs]

    def mismatches(
        self,
        values: Dict[str, int],
        inputs: Sequence[Sequence[int]],
        expected_outputs: Sequence[Sequence[int]],
        limit: Optional[int] = None,
    ) -> int:
        """Count mismatching (PHV, container) pairs for one candidate.

        ``limit`` early-exits the count once it exceeds ``limit`` — any
        return value ``<= limit`` is exact, which is all the hill climber's
        ``candidate_score <= score`` acceptance test needs.  ``inputs`` must
        come from :meth:`prepare`.
        """
        pairs = stage_pairs(self._stage_functions, self._fresh_state())
        containers = self._containers
        count = 0
        try:
            for outputs, expected in zip(inputs, expected_outputs):
                for function, stage_state in pairs:
                    outputs = function(outputs, stage_state, values)
                if containers is None:
                    count += sum(
                        1 for actual, want in zip(outputs, expected) if actual != want
                    )
                else:
                    for container in containers:
                        if outputs[container] != expected[container]:
                            count += 1
                if limit is not None and count > limit:
                    return count
        except KeyError as error:
            raise MissingMachineCodeError(str(error.args[0])) from error
        return count

    def first_counterexample(
        self,
        values: Dict[str, int],
        inputs: Sequence[Sequence[int]],
        expected_outputs: Sequence[Sequence[int]],
    ) -> Optional[List[int]]:
        """The first input PHV on which the candidate diverges, or ``None``.

        ``inputs`` must come from :meth:`prepare`.
        """
        pairs = stage_pairs(self._stage_functions, self._fresh_state())
        containers = self._containers
        try:
            for phv, expected in zip(inputs, expected_outputs):
                outputs = push_phv(pairs, phv, values)
                if containers is None:
                    if list(outputs) != list(expected):
                        return list(phv)
                elif any(
                    outputs[container] != expected[container] for container in containers
                ):
                    return list(phv)
        except KeyError as error:
            raise MissingMachineCodeError(str(error.args[0])) from error
        return None


@dataclass
class SynthesisConfig:
    """Tuning knobs of the CEGIS loop."""

    #: Number of CEGIS iterations before giving up.
    max_iterations: int = 8
    #: Example PHVs used by the inner search loop.
    num_examples: int = 12
    #: Maximum container value used for the initial examples (synthesis input range).
    example_max_value: int = 100
    #: PHVs used by the verification step of each CEGIS iteration.
    verify_phvs: int = 400
    #: Maximum container value used for verification (10-bit by default, §5.2).
    verify_max_value: int = (1 << 10) - 1
    #: Exhaustive enumeration is used when the sketch has at most this many candidates.
    exhaustive_limit: int = 50_000
    #: Random restarts of the hill climber per CEGIS iteration.
    restarts: int = 30
    #: Hill-climbing steps per restart.
    climb_steps: int = 400
    #: PRNG seed.
    seed: int = 0


@dataclass
class SynthesisResult:
    """Outcome of a synthesis run."""

    machine_code: Optional[MachineCode]
    success: bool
    iterations: int
    candidates_evaluated: int
    message: str = ""
    examples_used: List[List[int]] = field(default_factory=list)

    @property
    def verified(self) -> bool:
        """Alias for :attr:`success` (the result passed the verification fuzz)."""
        return self.success


class SynthesisEngine:
    """CEGIS driver for one (pipeline, specification, sketch) triple."""

    def __init__(
        self,
        pipeline_spec: PipelineSpec,
        specification: Specification,
        sketch: Sketch,
        config: Optional[SynthesisConfig] = None,
        initial_state: Optional[List[List[List[int]]]] = None,
        traffic_generator: Optional[TrafficGenerator] = None,
    ):
        self.pipeline_spec = pipeline_spec
        self.specification = specification
        self.sketch = sketch
        self.config = config or SynthesisConfig()
        self._initial_state = initial_state
        self._traffic_generator = traffic_generator
        self._rng = random.Random(self.config.seed)
        self._candidates_evaluated = 0
        # Level-0 description: machine code is a runtime input, so one
        # generation serves every candidate.
        self._description = dgen.generate(
            pipeline_spec, machine_code=None, opt_level=dgen.OPT_UNOPTIMIZED
        )
        # One evaluator serves every candidate; specification outputs are
        # cached per example set (the inner search scores thousands of
        # candidates against the same examples).
        self._evaluator = _CandidateEvaluator(
            self._description,
            initial_state,
            specification.relevant_containers,
        )
        self._spec_cache: Dict[Tuple[Tuple[int, ...], ...], List[tuple]] = {}
        # Best (score, assignment) seen by the most recent failed stochastic
        # search; surfaces the §5.2 "limited range" fallback when no
        # iteration ever fully satisfied its example set.
        self._best_partial: Optional[Tuple[int, List[int]]] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def synthesize(self) -> SynthesisResult:
        """Run the CEGIS loop and return the best machine code found."""
        config = self.config
        examples = self._initial_examples()
        best_assignment: Optional[List[int]] = None

        for iteration in range(1, config.max_iterations + 1):
            assignment = self._search(examples)
            if assignment is None:
                return SynthesisResult(
                    machine_code=self._best_machine_code(self._fallback_assignment(best_assignment)),
                    success=False,
                    iterations=iteration,
                    candidates_evaluated=self._candidates_evaluated,
                    message="inner search could not satisfy the current example set",
                    examples_used=[list(e) for e in examples],
                )
            best_assignment = assignment
            counterexample = self._verify(assignment, seed=config.seed + iteration)
            if counterexample is None:
                return SynthesisResult(
                    machine_code=self.sketch.to_machine_code(assignment),
                    success=True,
                    iterations=iteration,
                    candidates_evaluated=self._candidates_evaluated,
                    message="verified against the specification",
                    examples_used=[list(e) for e in examples],
                )
            examples.append(counterexample)

        return SynthesisResult(
            machine_code=self._best_machine_code(self._fallback_assignment(best_assignment)),
            success=False,
            iterations=config.max_iterations,
            candidates_evaluated=self._candidates_evaluated,
            message=(
                "iteration budget exhausted; returning machine code that satisfies only a "
                "limited range of values (paper §5.2 failure class)"
            ),
            examples_used=[list(e) for e in examples],
        )

    # ------------------------------------------------------------------
    # CEGIS pieces
    # ------------------------------------------------------------------
    def _initial_examples(self) -> List[List[int]]:
        generator = self._make_traffic(self.config.example_max_value, self.config.seed)
        return generator.generate(self.config.num_examples)

    def _make_traffic(self, max_value: int, seed: int) -> TrafficGenerator:
        base = self._traffic_generator
        if base is not None:
            return TrafficGenerator(
                num_containers=base.num_containers,
                seed=seed,
                min_value=base.min_value,
                max_value=min(base.max_value, max_value),
                field_generators=base.field_generators,
            )
        return TrafficGenerator(
            num_containers=self.pipeline_spec.width,
            seed=seed,
            max_value=max_value,
        )

    def _spec_outputs(self, inputs: Sequence[Sequence[int]]) -> List[tuple]:
        """Expected output containers per input PHV, cached per example set.

        The inner search evaluates thousands of candidates against the same
        example set; the specification runs once per set and ``_search``
        threads the result through every candidate evaluation.  The cache
        additionally serves repeated ``synthesize()`` calls and direct
        ``_mismatches`` calls; verification traces are *not* cached (each
        CEGIS iteration draws a fresh one, so entries would never be reused
        and the 400-PHV expected outputs would only accumulate memory).
        """
        key = tuple(tuple(int(v) for v in phv) for phv in inputs)
        cached = self._spec_cache.get(key)
        if cached is None:
            cached = self.specification.run(inputs).outputs()
            self._spec_cache[key] = cached
        return cached

    def _mismatches(
        self,
        values: Dict[str, int],
        inputs: Sequence[Sequence[int]],
        expected: Optional[Sequence[tuple]] = None,
        limit: Optional[int] = None,
    ) -> int:
        """Number of mismatching (PHV, container) pairs for one candidate."""
        self._candidates_evaluated += 1
        if expected is None:
            expected = self._spec_outputs(inputs)
        return self._evaluator.mismatches(values, inputs, expected, limit=limit)

    def _search(self, examples: Sequence[Sequence[int]]) -> Optional[List[int]]:
        """Find an assignment with zero mismatches on ``examples`` (or ``None``)."""
        sketch = self.sketch
        expected = self._spec_outputs(examples)
        prepared = self._evaluator.prepare(examples)
        if not sketch.search_names:
            score = self._mismatches(sketch.to_values([]), prepared, expected, limit=0)
            return [] if score == 0 else None
        if sketch.space_size() <= self.config.exhaustive_limit:
            return self._search_exhaustive(prepared, expected)
        return self._search_stochastic(prepared, expected)

    def _search_exhaustive(
        self, examples: Sequence[Sequence[int]], expected: Sequence[tuple]
    ) -> Optional[List[int]]:
        for assignment in self.sketch.enumerate_assignments():
            if self._mismatches(self.sketch.to_values(assignment), examples, expected, limit=0) == 0:
                return assignment
        return None

    def _search_stochastic(
        self, examples: Sequence[Sequence[int]], expected: Sequence[tuple]
    ) -> Optional[List[int]]:
        config = self.config
        best: Optional[Tuple[int, List[int]]] = None
        for restart in range(config.restarts):
            assignment = (
                self.sketch.zero_assignment() if restart == 0 else self.sketch.random_assignment(self._rng)
            )
            score = self._mismatches(self.sketch.to_values(assignment), examples, expected)
            if score == 0:
                return assignment
            for _ in range(config.climb_steps):
                candidate = self.sketch.mutate(assignment, self._rng, positions=1 + self._rng.randrange(2))
                # Scores above the incumbent are rejected whatever their exact
                # value, so counting can stop as soon as it passes ``score``.
                candidate_score = self._mismatches(
                    self.sketch.to_values(candidate), examples, expected, limit=score
                )
                if candidate_score <= score:
                    assignment, score = candidate, candidate_score
                    if score == 0:
                        return assignment
            if best is None or score < best[0]:
                best = (score, list(assignment))
        # No restart satisfied every example: record the best-scoring
        # assignment so the §5.2 "limited range" fallback can surface it.
        self._best_partial = best
        return None

    def _verify(self, assignment: Sequence[int], seed: int) -> Optional[List[int]]:
        """Fuzz the candidate over the full value range; return a counterexample PHV or None."""
        config = self.config
        generator = self._make_traffic(config.verify_max_value, seed)
        inputs = generator.generate(config.verify_phvs)
        values = self.sketch.to_values(assignment)
        # Fresh trace every iteration (seed varies), so no point caching it.
        expected = self.specification.run(inputs).outputs()
        prepared = self._evaluator.prepare(inputs)
        return self._evaluator.first_counterexample(values, prepared, expected)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _fallback_assignment(
        self, best_assignment: Optional[Sequence[int]]
    ) -> Optional[Sequence[int]]:
        """The assignment a failed run should surface (paper §5.2).

        An assignment that satisfied a full example set in an earlier
        iteration wins; otherwise the best-scoring candidate from the failing
        stochastic search — previously discarded — is returned.
        """
        if best_assignment is not None:
            return best_assignment
        if self._best_partial is not None:
            return self._best_partial[1]
        return None

    def _best_machine_code(self, assignment: Optional[Sequence[int]]) -> Optional[MachineCode]:
        if assignment is None:
            return None
        return self.sketch.to_machine_code(assignment)
