"""Counterexample-guided synthesis of machine code.

The paper's case-study compiler, Chipmunk, uses SKETCH-style program
synthesis to find machine code implementing a Domino program.  Offline and
without an SMT solver, this reproduction uses counterexample-guided inductive
synthesis (CEGIS) with an explicit-search inner loop:

1. draw a small set of example PHVs;
2. search the sketch for an assignment whose pipeline behaviour matches the
   specification on every example (exhaustively when the space is small,
   otherwise by random restarts plus coordinate-wise hill climbing);
3. verify the candidate against the specification on a much larger random
   trace; a disagreeing PHV becomes a new example and the loop repeats.

The inner loop evaluates candidates with the *unoptimised* (level-0) pipeline
description, which accepts machine code as runtime values — precisely the
pre-optimisation dgen/dsim split the paper describes in §3.4 — so the
(comparatively expensive) code generation runs only once per sketch.

The §5.2 failure mode "the synthesis engine failed to find machine code to
satisfy 10-bit inputs in the allotted time thus only returning machine code
that only satisfied a limited range of values" is reproduced faithfully: when
the CEGIS loop exhausts its iteration budget, the engine returns the best
candidate found so far flagged as unverified.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import dgen
from ..dsim import RMTSimulator, TrafficGenerator
from ..errors import SynthesisError
from ..hardware import PipelineSpec
from ..machine_code.pairs import MachineCode
from ..testing.equivalence import compare_traces
from ..testing.spec import Specification
from .sketch import Sketch


@dataclass
class SynthesisConfig:
    """Tuning knobs of the CEGIS loop."""

    #: Number of CEGIS iterations before giving up.
    max_iterations: int = 8
    #: Example PHVs used by the inner search loop.
    num_examples: int = 12
    #: Maximum container value used for the initial examples (synthesis input range).
    example_max_value: int = 100
    #: PHVs used by the verification step of each CEGIS iteration.
    verify_phvs: int = 400
    #: Maximum container value used for verification (10-bit by default, §5.2).
    verify_max_value: int = (1 << 10) - 1
    #: Exhaustive enumeration is used when the sketch has at most this many candidates.
    exhaustive_limit: int = 50_000
    #: Random restarts of the hill climber per CEGIS iteration.
    restarts: int = 30
    #: Hill-climbing steps per restart.
    climb_steps: int = 400
    #: PRNG seed.
    seed: int = 0


@dataclass
class SynthesisResult:
    """Outcome of a synthesis run."""

    machine_code: Optional[MachineCode]
    success: bool
    iterations: int
    candidates_evaluated: int
    message: str = ""
    examples_used: List[List[int]] = field(default_factory=list)

    @property
    def verified(self) -> bool:
        """Alias for :attr:`success` (the result passed the verification fuzz)."""
        return self.success


class SynthesisEngine:
    """CEGIS driver for one (pipeline, specification, sketch) triple."""

    def __init__(
        self,
        pipeline_spec: PipelineSpec,
        specification: Specification,
        sketch: Sketch,
        config: Optional[SynthesisConfig] = None,
        initial_state: Optional[List[List[List[int]]]] = None,
        traffic_generator: Optional[TrafficGenerator] = None,
    ):
        self.pipeline_spec = pipeline_spec
        self.specification = specification
        self.sketch = sketch
        self.config = config or SynthesisConfig()
        self._initial_state = initial_state
        self._traffic_generator = traffic_generator
        self._rng = random.Random(self.config.seed)
        self._candidates_evaluated = 0
        # Level-0 description: machine code is a runtime input, so one
        # generation serves every candidate.
        self._description = dgen.generate(
            pipeline_spec, machine_code=None, opt_level=dgen.OPT_UNOPTIMIZED
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def synthesize(self) -> SynthesisResult:
        """Run the CEGIS loop and return the best machine code found."""
        config = self.config
        examples = self._initial_examples()
        best_assignment: Optional[List[int]] = None

        for iteration in range(1, config.max_iterations + 1):
            assignment = self._search(examples)
            if assignment is None:
                return SynthesisResult(
                    machine_code=self._best_machine_code(best_assignment),
                    success=False,
                    iterations=iteration,
                    candidates_evaluated=self._candidates_evaluated,
                    message="inner search could not satisfy the current example set",
                    examples_used=[list(e) for e in examples],
                )
            best_assignment = assignment
            counterexample = self._verify(assignment, seed=config.seed + iteration)
            if counterexample is None:
                return SynthesisResult(
                    machine_code=self.sketch.to_machine_code(assignment),
                    success=True,
                    iterations=iteration,
                    candidates_evaluated=self._candidates_evaluated,
                    message="verified against the specification",
                    examples_used=[list(e) for e in examples],
                )
            examples.append(counterexample)

        return SynthesisResult(
            machine_code=self._best_machine_code(best_assignment),
            success=False,
            iterations=config.max_iterations,
            candidates_evaluated=self._candidates_evaluated,
            message=(
                "iteration budget exhausted; returning machine code that satisfies only a "
                "limited range of values (paper §5.2 failure class)"
            ),
            examples_used=[list(e) for e in examples],
        )

    # ------------------------------------------------------------------
    # CEGIS pieces
    # ------------------------------------------------------------------
    def _initial_examples(self) -> List[List[int]]:
        generator = self._make_traffic(self.config.example_max_value, self.config.seed)
        return generator.generate(self.config.num_examples)

    def _make_traffic(self, max_value: int, seed: int) -> TrafficGenerator:
        base = self._traffic_generator
        if base is not None:
            return TrafficGenerator(
                num_containers=base.num_containers,
                seed=seed,
                min_value=base.min_value,
                max_value=min(base.max_value, max_value),
                field_generators=base.field_generators,
            )
        return TrafficGenerator(
            num_containers=self.pipeline_spec.width,
            seed=seed,
            max_value=max_value,
        )

    def _mismatches(self, values: Dict[str, int], inputs: Sequence[Sequence[int]]) -> int:
        """Number of mismatching (PHV, container) pairs for one candidate."""
        self._candidates_evaluated += 1
        simulator = RMTSimulator(
            self._description,
            runtime_values=values,
            initial_state=self._copy_initial_state(),
        )
        result = simulator.run(inputs)
        spec_trace = self.specification.run(inputs)
        report = compare_traces(
            result.output_trace, spec_trace, containers=self.specification.relevant_containers
        )
        return len(report.mismatches)

    def _search(self, examples: Sequence[Sequence[int]]) -> Optional[List[int]]:
        """Find an assignment with zero mismatches on ``examples`` (or ``None``)."""
        sketch = self.sketch
        if not sketch.search_names:
            return [] if self._mismatches(sketch.to_values([]), examples) == 0 else None
        if sketch.space_size() <= self.config.exhaustive_limit:
            return self._search_exhaustive(examples)
        return self._search_stochastic(examples)

    def _search_exhaustive(self, examples: Sequence[Sequence[int]]) -> Optional[List[int]]:
        for assignment in self.sketch.enumerate_assignments():
            if self._mismatches(self.sketch.to_values(assignment), examples) == 0:
                return assignment
        return None

    def _search_stochastic(self, examples: Sequence[Sequence[int]]) -> Optional[List[int]]:
        config = self.config
        best: Optional[Tuple[int, List[int]]] = None
        for restart in range(config.restarts):
            assignment = (
                self.sketch.zero_assignment() if restart == 0 else self.sketch.random_assignment(self._rng)
            )
            score = self._mismatches(self.sketch.to_values(assignment), examples)
            if score == 0:
                return assignment
            for _ in range(config.climb_steps):
                candidate = self.sketch.mutate(assignment, self._rng, positions=1 + self._rng.randrange(2))
                candidate_score = self._mismatches(self.sketch.to_values(candidate), examples)
                if candidate_score <= score:
                    assignment, score = candidate, candidate_score
                    if score == 0:
                        return assignment
            if best is None or score < best[0]:
                best = (score, assignment)
        return None

    def _verify(self, assignment: Sequence[int], seed: int) -> Optional[List[int]]:
        """Fuzz the candidate over the full value range; return a counterexample PHV or None."""
        config = self.config
        generator = self._make_traffic(config.verify_max_value, seed)
        inputs = generator.generate(config.verify_phvs)
        values = self.sketch.to_values(assignment)
        simulator = RMTSimulator(
            self._description, runtime_values=values, initial_state=self._copy_initial_state()
        )
        result = simulator.run(inputs)
        spec_trace = self.specification.run(inputs)
        report = compare_traces(
            result.output_trace, spec_trace, containers=self.specification.relevant_containers
        )
        if report.equivalent:
            return None
        first = report.first_mismatch
        assert first is not None
        return list(first.inputs)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _best_machine_code(self, assignment: Optional[Sequence[int]]) -> Optional[MachineCode]:
        if assignment is None:
            return None
        return self.sketch.to_machine_code(assignment)

    def _copy_initial_state(self) -> Optional[List[List[List[int]]]]:
        if self._initial_state is None:
            return None
        return [[list(alu) for alu in stage] for stage in self._initial_state]
