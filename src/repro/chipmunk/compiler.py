"""Chipmunk-style compiler facade.

Ties the pieces together into the shape the paper's case study uses: take a
Domino program, build a sketch over a pipeline configuration, synthesise
machine code, and (optionally) validate the result with the fuzzing workflow
before handing it back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Sequence, Set, Union

from ..domino import DominoProgram, DominoSpecification, PacketLayout, parse_and_analyze
from ..domino.ast_nodes import DNumber, walk_dexpr, walk_dstmts, DAssign, DIf
from ..errors import SynthesisError
from ..hardware import PipelineSpec
from ..machine_code.pairs import MachineCode
from ..testing.fuzzer import FuzzConfig, FuzzTester
from ..testing.report import FuzzOutcome
from ..testing.spec import Specification
from .sketch import DEFAULT_CONSTANT_POOL, Sketch
from .synthesis import SynthesisConfig, SynthesisEngine, SynthesisResult


def program_constant_pool(program: DominoProgram, extra: Sequence[int] = (0, 1)) -> List[int]:
    """Collect the integer literals of a Domino program (plus ``extra``).

    These are the natural candidates for the machine code's immediate holes:
    a correct compilation almost always reuses the program's own constants
    (possibly shifted by one for comparisons).
    """
    constants: Set[int] = {int(v) for v in extra}
    for stmt in walk_dstmts(program.body):
        exprs = []
        if isinstance(stmt, DAssign):
            exprs.append(stmt.value)
        elif isinstance(stmt, DIf):
            exprs.extend(cond for cond, _ in stmt.branches)
        for expr in exprs:
            for node in walk_dexpr(expr):
                if isinstance(node, DNumber):
                    constants.add(node.value)
                    constants.add(node.value + 1)
                    if node.value > 0:
                        constants.add(node.value - 1)
    for decl in program.state_decls:
        constants.add(decl.initial)
    return sorted(value for value in constants if value >= 0)


@dataclass
class CompileResult:
    """What the compiler hands back for one program."""

    machine_code: Optional[MachineCode]
    synthesis: SynthesisResult
    pipeline_spec: PipelineSpec
    fuzz_outcome: Optional[FuzzOutcome] = None

    @property
    def success(self) -> bool:
        """True when synthesis succeeded (and post-compile fuzzing, if requested, passed)."""
        if not self.synthesis.success or self.machine_code is None:
            return False
        if self.fuzz_outcome is not None:
            return self.fuzz_outcome.passed
        return True


class ChipmunkCompiler:
    """Program-synthesis-based compiler targeting the Druzhba instruction set."""

    def __init__(
        self,
        pipeline_spec: PipelineSpec,
        synthesis_config: Optional[SynthesisConfig] = None,
    ):
        self.pipeline_spec = pipeline_spec
        self.synthesis_config = synthesis_config or SynthesisConfig()

    # ------------------------------------------------------------------
    # Compilation entry points
    # ------------------------------------------------------------------
    def compile_specification(
        self,
        specification: Specification,
        constant_pool: Sequence[int] = DEFAULT_CONSTANT_POOL,
        freeze: Optional[Mapping[str, int]] = None,
        search_names: Optional[Iterable[str]] = None,
        initial_state: Optional[List[List[List[int]]]] = None,
        validate: bool = False,
    ) -> CompileResult:
        """Synthesise machine code that makes the pipeline match ``specification``.

        ``freeze`` and ``search_names`` let a front end pin routing decisions
        it has already made (keeping the synthesis search space small), and
        ``validate`` re-runs the full fuzzing workflow on the synthesised
        machine code at the optimised dgen level — the paper's end-to-end
        compiler-testing loop.
        """
        sketch = Sketch.from_pipeline(
            self.pipeline_spec,
            constant_pool=constant_pool,
            freeze=freeze,
            search_names=search_names,
        )
        engine = SynthesisEngine(
            pipeline_spec=self.pipeline_spec,
            specification=specification,
            sketch=sketch,
            config=self.synthesis_config,
            initial_state=initial_state,
        )
        synthesis = engine.synthesize()
        result = CompileResult(
            machine_code=synthesis.machine_code,
            synthesis=synthesis,
            pipeline_spec=self.pipeline_spec,
        )
        if validate and synthesis.machine_code is not None:
            tester = FuzzTester(
                self.pipeline_spec,
                specification,
                config=FuzzConfig(num_phvs=500, seed=self.synthesis_config.seed + 1000),
                initial_state=initial_state,
            )
            result.fuzz_outcome = tester.test(synthesis.machine_code)
        return result

    def compile_domino(
        self,
        program: Union[str, DominoProgram],
        layout: PacketLayout,
        constant_pool: Optional[Sequence[int]] = None,
        freeze: Optional[Mapping[str, int]] = None,
        search_names: Optional[Iterable[str]] = None,
        initial_state: Optional[List[List[List[int]]]] = None,
        validate: bool = False,
    ) -> CompileResult:
        """Compile a Domino program (source text or parsed) to machine code."""
        if isinstance(program, str):
            program = parse_and_analyze(program)
        specification = DominoSpecification(program, layout)
        if constant_pool is None:
            constant_pool = program_constant_pool(program)
        if layout.num_containers != self.pipeline_spec.width:
            raise SynthesisError(
                f"packet layout covers {layout.num_containers} containers but the pipeline "
                f"width is {self.pipeline_spec.width}"
            )
        return self.compile_specification(
            specification,
            constant_pool=constant_pool,
            freeze=freeze,
            search_names=search_names,
            initial_state=initial_state,
            validate=validate,
        )
