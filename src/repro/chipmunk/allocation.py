"""Grid allocation: building machine code by placing operations onto the pipeline.

This module is the reproduction's *rule-based* compiler backend.  It exposes a
:class:`MachineCodeBuilder` that starts from the all-pass-through baseline and
lets a caller (a compiler, the benchmark-program suite, or a test) place
concrete behaviour onto individual ALUs, wire input multiplexers to PHV
containers and route ALU outputs to containers.  Each ``configure_*`` helper
knows the hole layout of one catalogue atom (:mod:`repro.atoms`) and converts
programmer intent ("if state < pkt then state = state + 1") into the raw
machine-code integers the atom's holes expect — exactly the translation a
compiler backend targeting Druzhba performs.

Operand sources are written as small tuples:

* ``("pkt", i)`` — the ALU's i-th operand (whatever container its input mux
  selects);
* ``("const", v)`` — an immediate with value ``v``;
* for pair-atom state selectors, ``("state", i)`` — the i-th state variable.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..alu_dsl import semantics
from ..errors import AllocationError
from ..hardware import PipelineSpec
from ..machine_code import naming
from ..machine_code.pairs import MachineCode

Source = Tuple[str, int]


def _rel_opcode(symbol: str) -> int:
    try:
        return semantics.REL_OP_SYMBOLS.index(symbol)
    except ValueError:
        raise AllocationError(
            f"unknown relational operator {symbol!r}; choose from {semantics.REL_OP_SYMBOLS}"
        ) from None


def _arith_opcode(symbol: str) -> int:
    try:
        return semantics.ARITH_OP_SYMBOLS.index(symbol)
    except ValueError:
        raise AllocationError(
            f"unknown arithmetic operator {symbol!r}; choose from {semantics.ARITH_OP_SYMBOLS}"
        ) from None


def _bool_opcode(symbol: str) -> int:
    try:
        return semantics.BOOL_OP_SYMBOLS.index(symbol)
    except ValueError:
        raise AllocationError(
            f"unknown logical operator {symbol!r}; choose from {semantics.BOOL_OP_SYMBOLS}"
        ) from None


def _check_source(source: Source, allowed: Sequence[str]) -> Source:
    if (
        not isinstance(source, tuple)
        or len(source) != 2
        or source[0] not in allowed
        or not isinstance(source[1], int)
    ):
        raise AllocationError(
            f"operand source must be a (kind, value) tuple with kind in {list(allowed)}, got {source!r}"
        )
    return source


class MachineCodeBuilder:
    """Accumulates machine-code pairs for one pipeline configuration.

    The builder starts from :meth:`PipelineSpec.passthrough_machine_code`, so
    anything not explicitly configured behaves as a no-op and the resulting
    machine code is always complete (no missing pairs).
    """

    def __init__(self, spec: PipelineSpec):
        self.spec = spec
        self._pairs: Dict[str, int] = spec.passthrough_machine_code().as_dict()

    # ------------------------------------------------------------------
    # Raw primitives
    # ------------------------------------------------------------------
    def set_hole(self, stage: int, kind: str, slot: int, hole: str, value: int) -> "MachineCodeBuilder":
        """Set one ALU hole's machine-code value."""
        name = naming.alu_hole_name(stage, kind, slot, hole)
        if name not in self._pairs:
            raise AllocationError(f"pipeline has no machine-code pair named {name!r}")
        self._pairs[name] = int(value)
        return self

    def input_mux(
        self, stage: int, kind: str, slot: int, operand: int, container: int
    ) -> "MachineCodeBuilder":
        """Wire one ALU operand's input multiplexer to a PHV container."""
        if container < 0 or container >= self.spec.width:
            raise AllocationError(
                f"container {container} out of range for width {self.spec.width}"
            )
        name = naming.input_mux_name(stage, kind, slot, operand)
        if name not in self._pairs:
            raise AllocationError(f"pipeline has no machine-code pair named {name!r}")
        self._pairs[name] = container
        return self

    def route_output(
        self,
        stage: int,
        container: int,
        kind: Optional[str] = None,
        slot: Optional[int] = None,
    ) -> "MachineCodeBuilder":
        """Select what a PHV container receives at the end of a stage.

        With ``kind``/``slot`` given, the container receives that ALU's
        output; with both omitted the container passes through unchanged.
        """
        name = naming.output_mux_name(stage, container)
        if name not in self._pairs:
            raise AllocationError(f"pipeline has no machine-code pair named {name!r}")
        if kind is None:
            self._pairs[name] = self.spec.passthrough_value
        else:
            if slot is None:
                raise AllocationError("route_output needs a slot when kind is given")
            self._pairs[name] = self.spec.output_mux_value_for(kind, slot)
        return self

    def set_inputs(
        self, stage: int, kind: str, slot: int, containers: Sequence[int]
    ) -> "MachineCodeBuilder":
        """Wire all of an ALU's operands at once (operand i ← containers[i])."""
        for operand, container in enumerate(containers):
            self.input_mux(stage, kind, slot, operand, container)
        return self

    def build(self) -> MachineCode:
        """Return the accumulated machine code."""
        return MachineCode(self._pairs)

    # ------------------------------------------------------------------
    # Shared atom-building blocks
    # ------------------------------------------------------------------
    def _mux3_source(
        self, stage: int, kind: str, slot: int, mux_hole: str, const_hole: str, source: Source
    ) -> None:
        """Program a ``Mux3(pkt_0, pkt_1, C())`` site from a source tuple."""
        kind_name, value = _check_source(source, ("pkt", "const"))
        if kind_name == "pkt":
            if value not in (0, 1):
                raise AllocationError("('pkt', i) operands must use operand index 0 or 1")
            self.set_hole(stage, kind, slot, mux_hole, value)
        else:
            self.set_hole(stage, kind, slot, mux_hole, 2)
            self.set_hole(stage, kind, slot, const_hole, value)

    def _opt_state(self, stage: int, kind: str, slot: int, opt_hole: str, use_state: bool) -> None:
        """Program an ``Opt(state_0)`` site: keep the state value or force 0."""
        self.set_hole(stage, kind, slot, opt_hole, 0 if use_state else 1)

    # ------------------------------------------------------------------
    # Stateless atoms
    # ------------------------------------------------------------------
    def configure_stateless_full(
        self,
        stage: int,
        slot: int,
        mode: str,
        op: str,
        a: Source,
        b: Source,
        input_containers: Optional[Sequence[int]] = None,
    ) -> "MachineCodeBuilder":
        """Program a ``stateless_full`` ALU.

        ``mode`` selects the arithmetic path (``"arith"``) or the comparison
        path (``"rel"``); ``op`` is the operator symbol; ``a`` and ``b`` are
        the operand sources.  ``input_containers`` wires the ALU's two input
        multiplexers (defaults to containers 0 and 1 clipped to the width).
        """
        kind = naming.STATELESS
        if input_containers is None:
            input_containers = [0, min(1, self.spec.width - 1)]
        self.set_inputs(stage, kind, slot, input_containers)
        if mode == "arith":
            self._mux3_source(stage, kind, slot, "mux3_0", "const_0", a)
            self._mux3_source(stage, kind, slot, "mux3_1", "const_1", b)
            self.set_hole(stage, kind, slot, "arith_op_0", _arith_opcode(op))
            self.set_hole(stage, kind, slot, "mux2_0", 0)
        elif mode == "rel":
            self._mux3_source(stage, kind, slot, "mux3_2", "const_2", a)
            self._mux3_source(stage, kind, slot, "mux3_3", "const_3", b)
            self.set_hole(stage, kind, slot, "rel_op_0", _rel_opcode(op))
            self.set_hole(stage, kind, slot, "mux2_0", 1)
        else:
            raise AllocationError(f"stateless_full mode must be 'arith' or 'rel', got {mode!r}")
        return self

    # ------------------------------------------------------------------
    # Stateful atoms
    # ------------------------------------------------------------------
    def configure_raw(
        self,
        stage: int,
        slot: int,
        use_state: bool,
        rhs: Source,
        input_containers: Optional[Sequence[int]] = None,
    ) -> "MachineCodeBuilder":
        """Program a ``raw`` atom: ``state_0 = (state_0 | 0) + rhs``."""
        kind = naming.STATEFUL
        self._default_inputs(stage, slot, input_containers)
        self._opt_state(stage, kind, slot, "opt_0", use_state)
        self._mux3_source(stage, kind, slot, "mux3_0", "const_0", rhs)
        return self

    def configure_if_else_raw(
        self,
        stage: int,
        slot: int,
        cond: Tuple[str, bool, Source],
        then: Tuple[bool, Source],
        els: Tuple[bool, Source],
        input_containers: Optional[Sequence[int]] = None,
    ) -> "MachineCodeBuilder":
        """Program an ``if_else_raw`` atom (paper Figure 4).

        ``cond`` is ``(rel_symbol, use_state, rhs)`` meaning
        ``(state_0 if use_state else 0) rel rhs``; ``then``/``els`` are
        ``(use_state, rhs)`` meaning ``state_0 = (state_0 if use_state else 0) + rhs``.
        """
        kind = naming.STATEFUL
        self._default_inputs(stage, slot, input_containers)
        rel_symbol, cond_use_state, cond_rhs = cond
        self._opt_state(stage, kind, slot, "opt_0", cond_use_state)
        self._mux3_source(stage, kind, slot, "mux3_0", "const_0", cond_rhs)
        self.set_hole(stage, kind, slot, "rel_op_0", _rel_opcode(rel_symbol))
        then_use_state, then_rhs = then
        self._opt_state(stage, kind, slot, "opt_1", then_use_state)
        self._mux3_source(stage, kind, slot, "mux3_1", "const_1", then_rhs)
        else_use_state, else_rhs = els
        self._opt_state(stage, kind, slot, "opt_2", else_use_state)
        self._mux3_source(stage, kind, slot, "mux3_2", "const_2", else_rhs)
        return self

    def configure_pred_raw(
        self,
        stage: int,
        slot: int,
        cond: Tuple[str, bool, Source],
        update: Tuple[str, bool, Source],
        input_containers: Optional[Sequence[int]] = None,
    ) -> "MachineCodeBuilder":
        """Program a ``pred_raw`` atom: ``if (cond) state_0 = (state_0|0) op rhs``.

        ``cond`` is ``(rel_symbol, use_state, rhs)`` and ``update`` is
        ``(arith_symbol, use_state, rhs)``.
        """
        kind = naming.STATEFUL
        self._default_inputs(stage, slot, input_containers)
        rel_symbol, cond_use_state, cond_rhs = cond
        self._opt_state(stage, kind, slot, "opt_0", cond_use_state)
        self._mux3_source(stage, kind, slot, "mux3_0", "const_0", cond_rhs)
        self.set_hole(stage, kind, slot, "rel_op_0", _rel_opcode(rel_symbol))
        op_symbol, update_use_state, update_rhs = update
        self._opt_state(stage, kind, slot, "opt_1", update_use_state)
        self._mux3_source(stage, kind, slot, "mux3_1", "const_1", update_rhs)
        self.set_hole(stage, kind, slot, "arith_op_0", _arith_opcode(op_symbol))
        return self

    def configure_sub(
        self,
        stage: int,
        slot: int,
        cond: Tuple[str, bool, Source],
        then: Tuple[str, bool, Source],
        els: Tuple[str, bool, Source],
        input_containers: Optional[Sequence[int]] = None,
    ) -> "MachineCodeBuilder":
        """Program a ``sub`` atom: like ``if_else_raw`` but each branch picks its operator.

        ``then``/``els`` are ``(arith_symbol, use_state, rhs)``.
        """
        kind = naming.STATEFUL
        self._default_inputs(stage, slot, input_containers)
        rel_symbol, cond_use_state, cond_rhs = cond
        self._opt_state(stage, kind, slot, "opt_0", cond_use_state)
        self._mux3_source(stage, kind, slot, "mux3_0", "const_0", cond_rhs)
        self.set_hole(stage, kind, slot, "rel_op_0", _rel_opcode(rel_symbol))
        then_op, then_use_state, then_rhs = then
        self._opt_state(stage, kind, slot, "opt_1", then_use_state)
        self._mux3_source(stage, kind, slot, "mux3_1", "const_1", then_rhs)
        self.set_hole(stage, kind, slot, "arith_op_0", _arith_opcode(then_op))
        else_op, else_use_state, else_rhs = els
        self._opt_state(stage, kind, slot, "opt_2", else_use_state)
        self._mux3_source(stage, kind, slot, "mux3_2", "const_2", else_rhs)
        self.set_hole(stage, kind, slot, "arith_op_1", _arith_opcode(else_op))
        return self

    def configure_pair(
        self,
        stage: int,
        slot: int,
        cond0: Optional[Tuple[int, str, Source]],
        cond1: Optional[Tuple[int, str, Source]],
        combine: str,
        then_updates: Tuple[Tuple[Source, str, Source], Tuple[Source, str, Source]],
        else_updates: Tuple[Tuple[Source, str, Source], Tuple[Source, str, Source]],
        input_containers: Optional[Sequence[int]] = None,
    ) -> "MachineCodeBuilder":
        """Program a ``pair`` atom (two state variables).

        ``cond0``/``cond1`` are ``(state_index, rel_symbol, rhs)`` or ``None``
        for "always true"; ``combine`` is ``"&&"`` or ``"||"``.  The updates
        are pairs of ``(lhs_source, arith_symbol, rhs_source)`` — one entry
        for ``state_0`` and one for ``state_1`` — where ``lhs_source`` is
        ``("state", 0)``, ``("state", 1)`` or ``("const", v)`` and
        ``rhs_source`` is ``("pkt", i)`` or ``("const", v)``.
        """
        kind = naming.STATEFUL
        self._default_inputs(stage, slot, input_containers)

        condition_holes = (
            ("mux2_0", "const_0", "mux3_0", "rel_op_0", "const_1", "mux2_1"),
            ("mux2_2", "const_2", "mux3_1", "rel_op_1", "const_3", "mux2_3"),
        )
        for index, cond in enumerate((cond0, cond1)):
            state_mux, rhs_const, rhs_mux, rel_hole, outer_const, outer_mux = condition_holes[index]
            if cond is None:
                # Outer Mux2 selects its C() input, which we set to 1 (always true).
                self.set_hole(stage, kind, slot, outer_mux, 1)
                self.set_hole(stage, kind, slot, outer_const, 1)
                continue
            state_index, rel_symbol, rhs = cond
            if state_index not in (0, 1):
                raise AllocationError("pair condition state index must be 0 or 1")
            self.set_hole(stage, kind, slot, outer_mux, 0)
            self.set_hole(stage, kind, slot, state_mux, state_index)
            self._mux3_source(stage, kind, slot, rhs_mux, rhs_const, rhs)
            self.set_hole(stage, kind, slot, rel_hole, _rel_opcode(rel_symbol))

        self.set_hole(stage, kind, slot, "bool_op_0", _bool_opcode(combine))

        update_holes = (
            # (lhs const, lhs mux, rhs const, rhs mux, arith op)
            ("const_4", "mux3_2", "const_5", "mux3_3", "arith_op_0"),
            ("const_6", "mux3_4", "const_7", "mux3_5", "arith_op_1"),
            ("const_8", "mux3_6", "const_9", "mux3_7", "arith_op_2"),
            ("const_10", "mux3_8", "const_11", "mux3_9", "arith_op_3"),
        )
        updates = list(then_updates) + list(else_updates)
        if len(updates) != 4:
            raise AllocationError("pair updates must provide (state_0, state_1) for both branches")
        for holes, (lhs, op_symbol, rhs) in zip(update_holes, updates):
            lhs_const, lhs_mux, rhs_const, rhs_mux, arith_hole = holes
            lhs_kind, lhs_value = _check_source(lhs, ("state", "const"))
            if lhs_kind == "state":
                if lhs_value not in (0, 1):
                    raise AllocationError("pair update state index must be 0 or 1")
                self.set_hole(stage, kind, slot, lhs_mux, lhs_value)
            else:
                self.set_hole(stage, kind, slot, lhs_mux, 2)
                self.set_hole(stage, kind, slot, lhs_const, lhs_value)
            self._mux3_source(stage, kind, slot, rhs_mux, rhs_const, rhs)
            self.set_hole(stage, kind, slot, arith_hole, _arith_opcode(op_symbol))
        return self

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _default_inputs(
        self, stage: int, slot: int, input_containers: Optional[Sequence[int]]
    ) -> None:
        if input_containers is None:
            input_containers = [0, min(1, self.spec.width - 1)]
        self.set_inputs(stage, naming.STATEFUL, slot, input_containers)
