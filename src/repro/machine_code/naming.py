"""Machine-code naming conventions.

The paper (§3.1) describes machine code as a list of string/integer pairs
whose strings "are each given unique names that succinctly denote the
primitive that the pair corresponds to and the primitive's location within
the pipeline".  This module defines that naming scheme for the reproduction
and provides both construction and parsing helpers so that the rest of the
library never hand-formats names.

Naming scheme
-------------

=======================  ==============================================================
Primitive                 Machine-code pair name
=======================  ==============================================================
ALU hole                  ``pipeline_stage_{stage}_{kind}_alu_{slot}_{hole}``
ALU input multiplexer     ``pipeline_stage_{stage}_{kind}_alu_{slot}_input_mux_{operand}``
PHV output multiplexer    ``pipeline_stage_{stage}_output_mux_phv_{container}``
=======================  ==============================================================

``kind`` is ``stateful`` or ``stateless``; ``stage``, ``slot``, ``operand``
and ``container`` are zero-based indices.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from ..errors import MachineCodeError

STATEFUL = "stateful"
STATELESS = "stateless"
_KINDS = (STATEFUL, STATELESS)

_INPUT_MUX_RE = re.compile(
    r"^pipeline_stage_(?P<stage>\d+)_(?P<kind>stateful|stateless)_alu_(?P<slot>\d+)"
    r"_input_mux_(?P<operand>\d+)$"
)
_OUTPUT_MUX_RE = re.compile(
    r"^pipeline_stage_(?P<stage>\d+)_output_mux_phv_(?P<container>\d+)$"
)
_ALU_HOLE_RE = re.compile(
    r"^pipeline_stage_(?P<stage>\d+)_(?P<kind>stateful|stateless)_alu_(?P<slot>\d+)"
    r"_(?P<hole>[A-Za-z_][A-Za-z0-9_]*)$"
)


@dataclass(frozen=True)
class PrimitiveName:
    """Structured form of a machine-code pair name.

    ``category`` is one of ``"alu_hole"``, ``"input_mux"`` or ``"output_mux"``.
    Fields that do not apply to a category are ``None`` (for example an
    output multiplexer has no ``kind``, ``slot`` or ``hole``).
    """

    category: str
    stage: int
    kind: Optional[str] = None
    slot: Optional[int] = None
    operand: Optional[int] = None
    container: Optional[int] = None
    hole: Optional[str] = None

    def render(self) -> str:
        """Format this structured name back into its canonical string form."""
        if self.category == "output_mux":
            return output_mux_name(self.stage, self.container)
        if self.category == "input_mux":
            return input_mux_name(self.stage, self.kind, self.slot, self.operand)
        if self.category == "alu_hole":
            return alu_hole_name(self.stage, self.kind, self.slot, self.hole)
        raise MachineCodeError(f"unknown primitive category {self.category!r}")


def _check_kind(kind: str) -> str:
    if kind not in _KINDS:
        raise MachineCodeError(f"ALU kind must be one of {_KINDS}, got {kind!r}")
    return kind


def alu_hole_name(stage: int, kind: str, slot: int, hole: str) -> str:
    """Name of an ALU hole (opcode, immediate, mux internal to the ALU, ...)."""
    _check_kind(kind)
    return f"pipeline_stage_{stage}_{kind}_alu_{slot}_{hole}"


def input_mux_name(stage: int, kind: str, slot: int, operand: int) -> str:
    """Name of the input multiplexer feeding operand ``operand`` of an ALU."""
    _check_kind(kind)
    return f"pipeline_stage_{stage}_{kind}_alu_{slot}_input_mux_{operand}"


def output_mux_name(stage: int, container: int) -> str:
    """Name of the output multiplexer writing PHV container ``container``."""
    return f"pipeline_stage_{stage}_output_mux_phv_{container}"


def parse_name(name: str) -> PrimitiveName:
    """Parse a machine-code pair name into its structured form.

    Raises :class:`MachineCodeError` when the string does not follow the
    naming convention.  Input-mux names are matched before generic ALU-hole
    names because an input mux name is also a syntactically valid hole name.
    """
    match = _OUTPUT_MUX_RE.match(name)
    if match:
        return PrimitiveName(
            category="output_mux",
            stage=int(match.group("stage")),
            container=int(match.group("container")),
        )
    match = _INPUT_MUX_RE.match(name)
    if match:
        return PrimitiveName(
            category="input_mux",
            stage=int(match.group("stage")),
            kind=match.group("kind"),
            slot=int(match.group("slot")),
            operand=int(match.group("operand")),
        )
    match = _ALU_HOLE_RE.match(name)
    if match:
        return PrimitiveName(
            category="alu_hole",
            stage=int(match.group("stage")),
            kind=match.group("kind"),
            slot=int(match.group("slot")),
            hole=match.group("hole"),
        )
    raise MachineCodeError(f"machine code name {name!r} does not follow the naming convention")


def is_valid_name(name: str) -> bool:
    """True when ``name`` follows the machine-code naming convention."""
    try:
        parse_name(name)
    except MachineCodeError:
        return False
    return True
