"""Machine code: the instruction-set-level configuration of a Druzhba pipeline.

A machine-code *program* is a set of ``(name, unsigned integer)`` pairs.  The
names identify hardware primitives (ALU holes, input multiplexers, output
multiplexers) and their position in the pipeline; the integers program their
behaviour (paper §3.1).
"""

from .naming import (
    PrimitiveName,
    STATEFUL,
    STATELESS,
    alu_hole_name,
    input_mux_name,
    is_valid_name,
    output_mux_name,
    parse_name,
)
from .pairs import MachineCode, expected_names

__all__ = [
    "MachineCode",
    "PrimitiveName",
    "expected_names",
    "alu_hole_name",
    "input_mux_name",
    "output_mux_name",
    "parse_name",
    "is_valid_name",
    "STATEFUL",
    "STATELESS",
]
