"""The :class:`MachineCode` container.

Machine code in Druzhba is "a list of string and integer pairs that specify
ALUs' control flow and computational behavior" (paper §3.1).  This module
provides a small mapping-like container with file I/O, merging, validation
against a pipeline's expected pair names and diff helpers used by the fuzzing
reports.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple, Union

from ..errors import MachineCodeError, MachineCodeValueError
from . import naming

PathLike = Union[str, Path]


class MachineCode(Mapping[str, int]):
    """An immutable-by-convention mapping from primitive names to integer values.

    The container behaves like a read-only ``Mapping[str, int]``; use
    :meth:`with_pairs`, :meth:`without`, or :meth:`merged` to derive modified
    copies (the fuzzing / failure-injection code relies on these).
    """

    def __init__(self, pairs: Union[Mapping[str, int], Iterable[Tuple[str, int]], None] = None):
        self._pairs: Dict[str, int] = {}
        if pairs is None:
            items: Iterable[Tuple[str, int]] = ()
        elif isinstance(pairs, Mapping):
            items = pairs.items()
        else:
            items = pairs
        for name, value in items:
            self._set(name, value)

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> int:
        return self._pairs[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MachineCode({len(self._pairs)} pairs)"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MachineCode):
            return self._pairs == other._pairs
        if isinstance(other, Mapping):
            return self._pairs == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._pairs.items())))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _set(self, name: str, value: int) -> None:
        if not isinstance(name, str) or not name:
            raise MachineCodeError(f"machine code names must be non-empty strings, got {name!r}")
        if isinstance(value, bool) or not isinstance(value, int):
            raise MachineCodeValueError(
                f"machine code values must be integers, got {value!r} for {name!r}"
            )
        if value < 0:
            raise MachineCodeValueError(
                f"machine code values are unsigned integers, got {value} for {name!r}"
            )
        self._pairs[name] = int(value)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[str, int]]) -> "MachineCode":
        """Build from an iterable of ``(name, value)`` tuples."""
        return cls(pairs)

    @classmethod
    def from_file(cls, path: PathLike) -> "MachineCode":
        """Load machine code from a text or JSON file.

        Two formats are accepted:

        * JSON: an object mapping names to integer values (files ending in
          ``.json``);
        * text: one ``name value`` pair per line, ``#`` comments and blank
          lines ignored (matching the paper's "list of string and integer
          pairs" presentation).
        """
        path = Path(path)
        text = path.read_text()
        if path.suffix == ".json":
            data = json.loads(text)
            if not isinstance(data, dict):
                raise MachineCodeError(f"{path}: JSON machine code must be an object")
            return cls(data)
        pairs: List[Tuple[str, int]] = []
        for line_number, raw_line in enumerate(text.splitlines(), start=1):
            line = raw_line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.replace(",", " ").split()
            if len(parts) != 2:
                raise MachineCodeError(
                    f"{path}:{line_number}: expected 'name value', got {raw_line!r}"
                )
            name, value_text = parts
            try:
                value = int(value_text)
            except ValueError:
                raise MachineCodeError(
                    f"{path}:{line_number}: value {value_text!r} is not an integer"
                ) from None
            pairs.append((name, value))
        return cls(pairs)

    def to_file(self, path: PathLike) -> None:
        """Write the pairs to ``path`` (JSON if the suffix is ``.json``, text otherwise)."""
        path = Path(path)
        if path.suffix == ".json":
            path.write_text(json.dumps(dict(sorted(self._pairs.items())), indent=2) + "\n")
        else:
            lines = [f"{name} {value}" for name, value in sorted(self._pairs.items())]
            path.write_text("\n".join(lines) + "\n")

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------
    def with_pairs(self, extra: Mapping[str, int]) -> "MachineCode":
        """Return a copy with ``extra`` pairs added/overridden."""
        merged = dict(self._pairs)
        merged.update(extra)
        return MachineCode(merged)

    def without(self, names: Iterable[str]) -> "MachineCode":
        """Return a copy with the given names removed (used for failure injection)."""
        removed = set(names)
        return MachineCode({k: v for k, v in self._pairs.items() if k not in removed})

    def merged(self, other: "MachineCode") -> "MachineCode":
        """Return the union of two machine-code maps; ``other`` wins on conflicts."""
        return self.with_pairs(dict(other))

    def as_dict(self) -> Dict[str, int]:
        """Return a plain ``dict`` copy of the pairs."""
        return dict(self._pairs)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def missing(self, expected: Iterable[str]) -> List[str]:
        """Names in ``expected`` that have no pair here (sorted)."""
        return sorted(set(expected) - set(self._pairs))

    def unknown(self, expected: Iterable[str]) -> List[str]:
        """Names present here that the pipeline does not expect (sorted)."""
        return sorted(set(self._pairs) - set(expected))

    def validate_names(self) -> None:
        """Check every pair name follows the naming convention of :mod:`naming`."""
        bad = [name for name in self._pairs if not naming.is_valid_name(name)]
        if bad:
            raise MachineCodeError(
                "machine code contains names that do not follow the naming convention: "
                + ", ".join(sorted(bad)[:5])
                + ("..." if len(bad) > 5 else "")
            )

    def restricted_to_stage(self, stage: int) -> "MachineCode":
        """Return only the pairs that configure primitives in ``stage``."""
        kept = {}
        for name, value in self._pairs.items():
            try:
                parsed = naming.parse_name(name)
            except MachineCodeError:
                continue
            if parsed.stage == stage:
                kept[name] = value
        return MachineCode(kept)


def expected_names(
    depth: int,
    width: int,
    stateful_holes: Sequence[str],
    stateless_holes: Sequence[str],
    stateful_operands: int,
    stateless_operands: int,
) -> List[str]:
    """Enumerate every machine-code pair name a pipeline configuration needs.

    This is the "contract" between a compiler targeting Druzhba and the
    simulator: dgen uses it to validate supplied machine code and the fuzzing
    reports use it to explain missing-pair failures.
    """
    names: List[str] = []
    for stage in range(depth):
        for slot in range(width):
            for operand in range(stateless_operands):
                names.append(naming.input_mux_name(stage, naming.STATELESS, slot, operand))
            for hole in stateless_holes:
                names.append(naming.alu_hole_name(stage, naming.STATELESS, slot, hole))
            for operand in range(stateful_operands):
                names.append(naming.input_mux_name(stage, naming.STATEFUL, slot, operand))
            for hole in stateful_holes:
                names.append(naming.alu_hole_name(stage, naming.STATEFUL, slot, hole))
        for container in range(width):
            names.append(naming.output_mux_name(stage, container))
    return names
