"""Static read-set analysis of RMT machine code.

The sharded meta-driver (:mod:`repro.engine.sharded`) merges per-shard final
state under a write-based conflict check, which by construction cannot see
*reads*: a packet that copies another flow's state into its outputs leaves no
trace in the final state vectors.  On this machine model there is exactly one
way a packet can read pipeline state into its outputs — a stage's output
multiplexer selecting a *stateful* ALU's output, which by the atom catalogue's
read-modify-write convention is the value of that ALU's ``state_0`` before
the update (:mod:`repro.atoms.sources`).

This module computes that read set statically from the machine code: for each
stage, which stateful ALU slots have their state value routed into a PHV
container.  Because output-mux routing is unconditional (the mux choice is a
machine-code constant, not data-dependent), an exposed slot is read by *every*
packet traversing the pipeline — so the merge rule for an exposed cell is
"no shard may write it at all", while unexposed cells keep the one-writer
flow rule.  PR 3 applied the strict rule to the whole state space as soon as
any stateful output was routed; tracking the read set per cell lifts that:
programs that expose only read-only cells (configuration thresholds, learned
constants) now shard legally.

The executed output mux reduces its machine-code value modulo the choice
count (see ``pipeline_builder._output_mux_code``); the analysis mirrors that
reduction so an out-of-domain opcode cannot smuggle a stateful route past it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Tuple

from . import naming

#: A state cell address at slot granularity: ``(stage, slot)``.
StateSlot = Tuple[int, int]


def exposed_state_slots(spec, values: Mapping[str, int]) -> FrozenSet[StateSlot]:
    """The stateful ALU slots whose state is routed into a PHV container.

    ``spec`` is the :class:`~repro.hardware.PipelineSpec` and ``values`` the
    machine-code values that actually execute (baked-in pairs at opt levels
    1+, the runtime dict at level 0).  A slot ``(stage, slot)`` is in the
    result exactly when some container's output mux at ``stage`` selects the
    stateful ALU ``slot`` — every packet then reads that cell's pre-update
    state value into its outputs.
    """
    width = spec.width
    choices = spec.output_mux_choices
    exposed = set()
    for stage in range(spec.depth):
        for container in range(width):
            value = values.get(naming.output_mux_name(stage, container))
            if value is None:
                continue
            code = value % choices
            if width <= code < 2 * width:
                exposed.add((stage, code - width))
    return frozenset(exposed)


def stage_read_sets(spec, values: Mapping[str, int]) -> Dict[int, FrozenSet[int]]:
    """Per-stage view of :func:`exposed_state_slots`.

    Maps each stage index to the frozenset of stateful slots whose state
    value that stage's output muxes can read.  Stages that read no state are
    omitted.
    """
    per_stage: Dict[int, set] = {}
    for stage, slot in exposed_state_slots(spec, values):
        per_stage.setdefault(stage, set()).add(slot)
    return {stage: frozenset(slots) for stage, slots in per_stage.items()}


def routes_stateful_output(spec, values: Mapping[str, int]) -> bool:
    """True when any output multiplexer selects a stateful ALU's output.

    The coarse PR-3 predicate, retained for callers that only need the
    boolean; prefer :func:`exposed_state_slots` for the per-cell merge rule.
    """
    return bool(exposed_state_slots(spec, values))
