"""Reference interpreter for analysed ALU specifications.

The interpreter executes an :class:`~repro.alu_dsl.ast_nodes.ALUSpec`
directly on concrete operand values, state values and machine-code hole
values.  It defines the *semantics* of an ALU; the code that dgen generates
must agree with it (and the property-based tests assert that it does).

The interpreter intentionally mirrors how the generated code behaves:

* operands are read-only,
* state-variable assignments update the persistent state vector,
* ``return`` terminates the body and yields the ALU output,
* a stateful ALU with no executed ``return`` outputs the value its first
  state variable held *before* the body ran (read-modify-write register
  convention),
* hole values are reduced modulo their domain where a domain exists, so any
  integer machine code is accepted (the paper's machine code values are raw
  unsigned integers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from ..errors import ALUDSLSemanticError, MissingMachineCodeError
from .ast_nodes import (
    ALUSpec,
    ArithOpExpr,
    Assign,
    BinaryOp,
    BoolOpExpr,
    ConstExpr,
    Expr,
    If,
    MuxExpr,
    Number,
    OptExpr,
    RelOpExpr,
    Return,
    Stmt,
    UnaryOp,
    Var,
)
from . import semantics


class _ReturnSignal(Exception):
    """Internal control-flow signal used to implement ``return``."""

    def __init__(self, value: int):
        super().__init__(value)
        self.value = value


@dataclass
class ALUResult:
    """Outcome of executing an ALU once.

    Attributes
    ----------
    output:
        The value forwarded to the stage's output multiplexers.
    state:
        The (possibly updated) state vector, in ``spec.state_vars`` order.
    """

    output: int
    state: List[int]


class ALUInterpreter:
    """Executes one analysed ALU specification.

    Parameters
    ----------
    spec:
        An *analysed* ALU specification (hole names assigned).  Passing an
        un-analysed spec raises :class:`ALUDSLSemanticError`.
    """

    def __init__(self, spec: ALUSpec):
        if not spec.holes and _spec_has_primitives(spec):
            raise ALUDSLSemanticError(
                f"ALU {spec.name!r} has not been analysed; call analysis.analyze() first"
            )
        self.spec = spec

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(
        self,
        operands: Sequence[int],
        state: Sequence[int],
        holes: Mapping[str, int],
    ) -> ALUResult:
        """Run the ALU once.

        Parameters
        ----------
        operands:
            PHV container values, one per declared packet field.
        state:
            Current state-variable values, one per declared state variable
            (ignored / must be empty for stateless ALUs).
        holes:
            Machine-code hole values keyed by the per-ALU hole names from
            ``spec.holes``.  Missing holes raise
            :class:`MissingMachineCodeError` — this is the §5.2 failure class
            "missing machine code pairs".
        """
        spec = self.spec
        if len(operands) != len(spec.packet_fields):
            raise ALUDSLSemanticError(
                f"ALU {spec.name!r} expects {len(spec.packet_fields)} operand(s), "
                f"got {len(operands)}"
            )
        if len(state) != len(spec.state_vars):
            raise ALUDSLSemanticError(
                f"ALU {spec.name!r} expects {len(spec.state_vars)} state value(s), "
                f"got {len(state)}"
            )

        env: Dict[str, int] = {}
        for field_name, value in zip(spec.packet_fields, operands):
            env[field_name] = int(value)
        new_state = [int(value) for value in state]
        state_index = {name: i for i, name in enumerate(spec.state_vars)}
        for name, index in state_index.items():
            env[name] = new_state[index]
        for hole_var in spec.hole_vars:
            env[hole_var] = self._hole(holes, hole_var)

        default_output = new_state[0] if spec.is_stateful and new_state else 0

        try:
            self._exec_stmts(spec.body, env, new_state, state_index, holes)
            output = default_output
        except _ReturnSignal as signal:
            output = signal.value

        return ALUResult(output=output, state=new_state)

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def _exec_stmts(
        self,
        stmts: Sequence[Stmt],
        env: Dict[str, int],
        state: List[int],
        state_index: Mapping[str, int],
        holes: Mapping[str, int],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, Assign):
                value = self._eval(stmt.value, env, holes)
                env[stmt.target] = value
                if stmt.target in state_index:
                    state[state_index[stmt.target]] = value
            elif isinstance(stmt, Return):
                raise _ReturnSignal(self._eval(stmt.value, env, holes))
            elif isinstance(stmt, If):
                taken = False
                for condition, body in stmt.branches:
                    if self._eval(condition, env, holes):
                        self._exec_stmts(body, env, state, state_index, holes)
                        taken = True
                        break
                if not taken:
                    self._exec_stmts(stmt.orelse, env, state, state_index, holes)
            else:  # pragma: no cover - parser cannot produce other nodes
                raise ALUDSLSemanticError(f"unknown statement {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def _eval(self, expr: Expr, env: Mapping[str, int], holes: Mapping[str, int]) -> int:
        if isinstance(expr, Number):
            return expr.value
        if isinstance(expr, Var):
            try:
                return env[expr.name]
            except KeyError:
                raise ALUDSLSemanticError(
                    f"ALU {self.spec.name!r}: identifier {expr.name!r} used before assignment"
                ) from None
        if isinstance(expr, UnaryOp):
            return semantics.apply_unary(expr.op, self._eval(expr.operand, env, holes))
        if isinstance(expr, BinaryOp):
            left = self._eval(expr.left, env, holes)
            right = self._eval(expr.right, env, holes)
            return semantics.apply_binary(expr.op, left, right)
        if isinstance(expr, MuxExpr):
            opcode = self._hole(holes, expr.hole_name)
            inputs = tuple(self._eval(sub, env, holes) for sub in expr.inputs)
            return semantics.mux_select(opcode, inputs)
        if isinstance(expr, OptExpr):
            opcode = self._hole(holes, expr.hole_name)
            return semantics.opt_select(opcode, self._eval(expr.operand, env, holes))
        if isinstance(expr, ConstExpr):
            return self._hole(holes, expr.hole_name)
        if isinstance(expr, RelOpExpr):
            opcode = self._hole(holes, expr.hole_name)
            left = self._eval(expr.left, env, holes)
            right = self._eval(expr.right, env, holes)
            return semantics.apply_rel_op(opcode, left, right)
        if isinstance(expr, ArithOpExpr):
            opcode = self._hole(holes, expr.hole_name)
            left = self._eval(expr.left, env, holes)
            right = self._eval(expr.right, env, holes)
            return semantics.apply_arith_op(opcode, left, right)
        if isinstance(expr, BoolOpExpr):
            opcode = self._hole(holes, expr.hole_name)
            left = self._eval(expr.left, env, holes)
            right = self._eval(expr.right, env, holes)
            return semantics.apply_bool_op(opcode, left, right)
        raise ALUDSLSemanticError(f"unknown expression {type(expr).__name__}")

    def _hole(self, holes: Mapping[str, int], name: str | None) -> int:
        if name is None:
            raise ALUDSLSemanticError(
                f"ALU {self.spec.name!r} contains an unnamed hole; run analysis first"
            )
        try:
            return int(holes[name])
        except KeyError:
            raise MissingMachineCodeError(name) from None


def _spec_has_primitives(spec: ALUSpec) -> bool:
    """True when the body contains any hole-controlled primitive call."""
    from .ast_nodes import walk_expr, walk_stmts

    for stmt in walk_stmts(spec.body):
        exprs: List[Expr] = []
        if isinstance(stmt, Assign):
            exprs.append(stmt.value)
        elif isinstance(stmt, Return):
            exprs.append(stmt.value)
        elif isinstance(stmt, If):
            exprs.extend(cond for cond, _body in stmt.branches)
        for expr in exprs:
            for sub in walk_expr(expr):
                if isinstance(sub, (MuxExpr, OptExpr, ConstExpr, RelOpExpr, ArithOpExpr, BoolOpExpr)):
                    return True
    return False
