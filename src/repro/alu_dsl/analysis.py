"""Semantic analysis for parsed ALU specifications.

Analysis performs three jobs:

1. **Hole naming.**  Every machine-code-controlled primitive call site
   (``Mux2``, ``Mux3``, ``Mux4``, ``Opt``, ``C``, ``rel_op``, ``arith_op``,
   ``bool_op``) is given a deterministic, unique name such as ``mux3_0`` or
   ``arith_op_1``.  Declared *hole variables* keep their declared names.  The
   resulting ordered hole list is what dgen later prefixes with the pipeline
   stage and ALU position to obtain the full machine-code pair names
   (paper §3.1: "strings ... indicate the pipeline stage and the position
   within that stage").
2. **Domain computation.**  Each hole is assigned the number of values it can
   legally take (``0`` means unbounded, e.g. an immediate).
3. **Validation.**  Stateless ALUs must not declare or assign state
   variables, every referenced identifier must be declared or locally
   assigned, stateful ALUs must declare at least one state variable, and
   stateless ALUs must end in a ``return``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..errors import ALUDSLSemanticError
from .ast_nodes import (
    ALUSpec,
    ArithOpExpr,
    Assign,
    BinaryOp,
    BoolOpExpr,
    ConstExpr,
    Expr,
    If,
    MuxExpr,
    Number,
    OptExpr,
    RelOpExpr,
    Return,
    Stmt,
    UnaryOp,
    Var,
)

#: Number of relational operators selectable by a ``rel_op`` hole.
REL_OP_DOMAIN = 6
#: Number of arithmetic operators selectable by an ``arith_op`` hole.
ARITH_OP_DOMAIN = 4
#: Number of logical operators selectable by a ``bool_op`` hole.
BOOL_OP_DOMAIN = 2
#: Number of choices for an ``Opt`` hole (argument or zero).
OPT_DOMAIN = 2
#: Domain marker for unbounded holes (immediates and declared hole variables).
UNBOUNDED = 0


class _HoleNamer:
    """Assigns sequential names to primitive call sites during a tree walk."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self.holes: List[str] = []
        self.domains: Dict[str, int] = {}

    def fresh(self, prefix: str, domain: int) -> str:
        index = self._counters.get(prefix, 0)
        self._counters[prefix] = index + 1
        name = f"{prefix}_{index}"
        self.holes.append(name)
        self.domains[name] = domain
        return name


def _rewrite_expr(expr: Expr, namer: _HoleNamer) -> Expr:
    """Return a copy of ``expr`` with hole names assigned to primitive sites."""
    if isinstance(expr, (Number, Var)):
        return expr
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _rewrite_expr(expr.operand, namer))
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, _rewrite_expr(expr.left, namer), _rewrite_expr(expr.right, namer))
    if isinstance(expr, MuxExpr):
        inputs = tuple(_rewrite_expr(sub, namer) for sub in expr.inputs)
        name = namer.fresh(f"mux{len(inputs)}", len(inputs))
        return MuxExpr(inputs, hole_name=name)
    if isinstance(expr, OptExpr):
        operand = _rewrite_expr(expr.operand, namer)
        name = namer.fresh("opt", OPT_DOMAIN)
        return OptExpr(operand, hole_name=name)
    if isinstance(expr, ConstExpr):
        name = namer.fresh("const", UNBOUNDED)
        return ConstExpr(hole_name=name)
    if isinstance(expr, RelOpExpr):
        left = _rewrite_expr(expr.left, namer)
        right = _rewrite_expr(expr.right, namer)
        name = namer.fresh("rel_op", REL_OP_DOMAIN)
        return RelOpExpr(left, right, hole_name=name)
    if isinstance(expr, ArithOpExpr):
        left = _rewrite_expr(expr.left, namer)
        right = _rewrite_expr(expr.right, namer)
        name = namer.fresh("arith_op", ARITH_OP_DOMAIN)
        return ArithOpExpr(left, right, hole_name=name)
    if isinstance(expr, BoolOpExpr):
        left = _rewrite_expr(expr.left, namer)
        right = _rewrite_expr(expr.right, namer)
        name = namer.fresh("bool_op", BOOL_OP_DOMAIN)
        return BoolOpExpr(left, right, hole_name=name)
    raise ALUDSLSemanticError(f"unknown expression node {type(expr).__name__}")


def _rewrite_stmts(stmts: Sequence[Stmt], namer: _HoleNamer) -> List[Stmt]:
    rewritten: List[Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, Assign):
            rewritten.append(Assign(stmt.target, _rewrite_expr(stmt.value, namer)))
        elif isinstance(stmt, Return):
            rewritten.append(Return(_rewrite_expr(stmt.value, namer)))
        elif isinstance(stmt, If):
            branches: List[Tuple[Expr, Tuple[Stmt, ...]]] = []
            for condition, body in stmt.branches:
                branches.append(
                    (_rewrite_expr(condition, namer), tuple(_rewrite_stmts(body, namer)))
                )
            orelse = tuple(_rewrite_stmts(stmt.orelse, namer))
            rewritten.append(If(tuple(branches), orelse))
        else:
            raise ALUDSLSemanticError(f"unknown statement node {type(stmt).__name__}")
    return rewritten


def _collect_expr_vars(expr: Expr, used: Set[str]) -> None:
    if isinstance(expr, Var):
        used.add(expr.name)
    elif isinstance(expr, UnaryOp):
        _collect_expr_vars(expr.operand, used)
    elif isinstance(expr, BinaryOp):
        _collect_expr_vars(expr.left, used)
        _collect_expr_vars(expr.right, used)
    elif isinstance(expr, MuxExpr):
        for sub in expr.inputs:
            _collect_expr_vars(sub, used)
    elif isinstance(expr, OptExpr):
        _collect_expr_vars(expr.operand, used)
    elif isinstance(expr, (RelOpExpr, ArithOpExpr, BoolOpExpr)):
        _collect_expr_vars(expr.left, used)
        _collect_expr_vars(expr.right, used)


def _validate(spec: ALUSpec) -> None:
    declared = set(spec.packet_fields) | set(spec.state_vars) | set(spec.hole_vars)
    if len(declared) < len(spec.packet_fields) + len(spec.state_vars) + len(spec.hole_vars):
        raise ALUDSLSemanticError(
            f"ALU {spec.name!r}: packet fields, state variables and hole variables must not overlap"
        )

    if spec.kind == "stateless" and spec.state_vars:
        raise ALUDSLSemanticError(
            f"stateless ALU {spec.name!r} must not declare state variables"
        )
    if spec.kind == "stateful" and not spec.state_vars:
        raise ALUDSLSemanticError(
            f"stateful ALU {spec.name!r} must declare at least one state variable"
        )
    if not spec.packet_fields:
        raise ALUDSLSemanticError(
            f"ALU {spec.name!r} must declare at least one packet field operand"
        )

    has_return = False
    locals_defined: Set[str] = set()

    def check_stmts(stmts: Sequence[Stmt], locally: Set[str]) -> None:
        nonlocal has_return
        for stmt in stmts:
            if isinstance(stmt, Assign):
                used: Set[str] = set()
                _collect_expr_vars(stmt.value, used)
                unknown = used - declared - locally
                if unknown:
                    raise ALUDSLSemanticError(
                        f"ALU {spec.name!r}: undeclared identifier(s) {sorted(unknown)}"
                    )
                if spec.kind == "stateless" and stmt.target in spec.state_vars:
                    raise ALUDSLSemanticError(
                        f"stateless ALU {spec.name!r} assigns to state variable {stmt.target!r}"
                    )
                if stmt.target in spec.packet_fields:
                    raise ALUDSLSemanticError(
                        f"ALU {spec.name!r} assigns to packet-field operand {stmt.target!r}; "
                        "operands are read-only, write through the output instead"
                    )
                if stmt.target in spec.hole_vars:
                    raise ALUDSLSemanticError(
                        f"ALU {spec.name!r} assigns to hole variable {stmt.target!r}; "
                        "hole values are supplied by machine code"
                    )
                if stmt.target not in spec.state_vars:
                    locally.add(stmt.target)
            elif isinstance(stmt, Return):
                used = set()
                _collect_expr_vars(stmt.value, used)
                unknown = used - declared - locally
                if unknown:
                    raise ALUDSLSemanticError(
                        f"ALU {spec.name!r}: undeclared identifier(s) {sorted(unknown)}"
                    )
                has_return = True
            elif isinstance(stmt, If):
                for condition, body in stmt.branches:
                    used = set()
                    _collect_expr_vars(condition, used)
                    unknown = used - declared - locally
                    if unknown:
                        raise ALUDSLSemanticError(
                            f"ALU {spec.name!r}: undeclared identifier(s) {sorted(unknown)}"
                        )
                    check_stmts(body, set(locally))
                check_stmts(stmt.orelse, set(locally))

    check_stmts(spec.body, locals_defined)

    if spec.kind == "stateless" and not has_return:
        raise ALUDSLSemanticError(
            f"stateless ALU {spec.name!r} must contain a 'return' statement"
        )


def analyze(spec: ALUSpec) -> ALUSpec:
    """Validate ``spec`` and return a copy with hole names and domains filled in.

    The input spec is not modified.  The returned spec's ``holes`` list is the
    canonical per-ALU hole ordering used everywhere else in the library:
    primitive call sites in body order followed by the declared hole
    variables.
    """
    namer = _HoleNamer()
    body = _rewrite_stmts(spec.body, namer)

    holes = list(namer.holes)
    domains = dict(namer.domains)
    for hole_var in spec.hole_vars:
        if hole_var in domains:
            raise ALUDSLSemanticError(
                f"ALU {spec.name!r}: hole variable {hole_var!r} collides with a generated hole name"
            )
        holes.append(hole_var)
        domains[hole_var] = UNBOUNDED

    analyzed = ALUSpec(
        name=spec.name,
        kind=spec.kind,
        state_vars=list(spec.state_vars),
        hole_vars=list(spec.hole_vars),
        packet_fields=list(spec.packet_fields),
        body=body,
        holes=holes,
        hole_domains=domains,
        source=spec.source,
    )
    _validate(analyzed)
    return analyzed


def parse_and_analyze(source: str, name: str = "alu") -> ALUSpec:
    """Parse ``source`` and run semantic analysis in one step."""
    from .parser import parse

    return analyze(parse(source, name=name))
