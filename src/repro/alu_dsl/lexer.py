"""Lexer for the ALU DSL.

Turns ALU specification text (paper Figure 4 shows an example) into a stream
of :class:`~repro.alu_dsl.tokens.Token` objects.  Comments start with ``#``
or ``//`` and run to the end of the line.
"""

from __future__ import annotations

from typing import Iterator, List

from ..errors import ALUDSLSyntaxError
from .tokens import KEYWORDS, ONE_CHAR_OPERATORS, TWO_CHAR_OPERATORS, Token, TokenType


class Lexer:
    """Converts ALU DSL source text into tokens.

    The lexer is deliberately simple: the DSL has no strings, no floating
    point numbers and no nested comments.  Identifiers match
    ``[A-Za-z_][A-Za-z0-9_]*`` and numbers are unsigned decimal integers
    (machine-code immediates are unsigned integer constants, §2.3).
    """

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> List[Token]:
        """Return the full token list, terminated by an EOF token."""
        tokens = list(self._iter_tokens())
        tokens.append(Token(TokenType.EOF, "", self._line, self._column))
        return tokens

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _iter_tokens(self) -> Iterator[Token]:
        while self._pos < len(self._source):
            char = self._source[self._pos]

            if char in " \t\r":
                self._advance(1)
                continue
            if char == "\n":
                self._advance_newline()
                continue
            if char == "#" or self._source.startswith("//", self._pos):
                self._skip_line_comment()
                continue

            if char.isdigit():
                yield self._lex_number()
                continue
            if char.isalpha() or char == "_":
                yield self._lex_identifier()
                continue

            two = self._source[self._pos : self._pos + 2]
            if two in TWO_CHAR_OPERATORS:
                yield Token(TWO_CHAR_OPERATORS[two], two, self._line, self._column)
                self._advance(2)
                continue
            if char in ONE_CHAR_OPERATORS:
                yield Token(ONE_CHAR_OPERATORS[char], char, self._line, self._column)
                self._advance(1)
                continue

            raise ALUDSLSyntaxError(
                f"unexpected character {char!r}", line=self._line, column=self._column
            )

    def _advance(self, count: int) -> None:
        self._pos += count
        self._column += count

    def _advance_newline(self) -> None:
        self._pos += 1
        self._line += 1
        self._column = 1

    def _skip_line_comment(self) -> None:
        while self._pos < len(self._source) and self._source[self._pos] != "\n":
            self._advance(1)

    def _lex_number(self) -> Token:
        start = self._pos
        line, column = self._line, self._column
        while self._pos < len(self._source) and self._source[self._pos].isdigit():
            self._advance(1)
        text = self._source[start : self._pos]
        return Token(TokenType.NUMBER, text, line, column)

    def _lex_identifier(self) -> Token:
        start = self._pos
        line, column = self._line, self._column
        while self._pos < len(self._source) and (
            self._source[self._pos].isalnum() or self._source[self._pos] == "_"
        ):
            self._advance(1)
        text = self._source[start : self._pos]
        token_type = KEYWORDS.get(text, TokenType.IDENT)
        return Token(token_type, text, line, column)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: tokenize ``source`` and return the token list."""
    return Lexer(source).tokenize()
