"""Abstract syntax tree nodes for the ALU DSL.

The tree mirrors the grammar of Figure 3: an ALU specification is a header
(type, state variables, hole variables, packet fields) followed by a body of
statements.  Expressions include the machine-code-controlled primitives
(``Mux2``, ``Mux3``, ``Opt``, ``C``, ``rel_op``, ``arith_op``, ``bool_op``)
each of which corresponds to a *hole*: an integer supplied by machine code
that selects the primitive's behaviour at configuration time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class of all ALU DSL expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Number(Expr):
    """An unsigned integer literal."""

    value: int


@dataclass(frozen=True)
class Var(Expr):
    """A reference to a packet field, state variable or hole variable."""

    name: str


@dataclass(frozen=True)
class UnaryOp(Expr):
    """A unary operation: negation (``-``) or logical not (``!``)."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class BinaryOp(Expr):
    """A binary arithmetic, relational or logical operation."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class MuxExpr(Expr):
    """An N-to-1 multiplexer controlled by a machine-code hole.

    ``Mux2(a, b)`` selects ``a`` when its hole value is 0 and ``b`` when 1;
    ``Mux3(a, b, c)`` extends this to three inputs.  ``hole_name`` is the
    unique per-ALU name of the controlling hole (assigned by semantic
    analysis; ``None`` until then).
    """

    inputs: Tuple[Expr, ...]
    hole_name: Optional[str] = None

    @property
    def width(self) -> int:
        """Number of selectable inputs."""
        return len(self.inputs)


@dataclass(frozen=True)
class OptExpr(Expr):
    """``Opt(x)``: a 2-to-1 multiplexer that returns ``x`` or 0 (Figure 4).

    Hole value 0 selects the argument, hole value 1 selects the constant 0.
    """

    operand: Expr
    hole_name: Optional[str] = None


@dataclass(frozen=True)
class ConstExpr(Expr):
    """``C()``: an immediate operand whose value comes from machine code."""

    hole_name: Optional[str] = None


@dataclass(frozen=True)
class RelOpExpr(Expr):
    """``rel_op(a, b)``: a machine-code-selected relational operator.

    The hole value selects among ``==``, ``<``, ``>``, ``!=``, ``<=``, ``>=``
    (in that order); the result is 1 when the relation holds and 0 otherwise.
    """

    left: Expr
    right: Expr
    hole_name: Optional[str] = None


@dataclass(frozen=True)
class ArithOpExpr(Expr):
    """``arith_op(a, b)``: a machine-code-selected arithmetic operator.

    Hole value 0 adds the operands, 1 subtracts them (paper §3.1 example);
    values 2 and 3 select multiplication and saturating (floor-at-zero)
    subtraction so the catalogue atoms can express richer behaviour.
    """

    left: Expr
    right: Expr
    hole_name: Optional[str] = None


@dataclass(frozen=True)
class BoolOpExpr(Expr):
    """``bool_op(a, b)``: a machine-code-selected logical operator.

    Hole value 0 is logical AND, 1 is logical OR.
    """

    left: Expr
    right: Expr
    hole_name: Optional[str] = None


#: Names of the hole-controlled primitive call forms, mapped to arity.
PRIMITIVE_CALLS = {
    "Mux2": 2,
    "Mux3": 3,
    "Mux4": 4,
    "Opt": 1,
    "C": 0,
    "rel_op": 2,
    "arith_op": 2,
    "bool_op": 2,
}


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
class Stmt:
    """Base class of all ALU DSL statements."""

    __slots__ = ()


@dataclass(frozen=True)
class Assign(Stmt):
    """An assignment to a state variable or to a local/output variable."""

    target: str
    value: Expr


@dataclass(frozen=True)
class Return(Stmt):
    """``return expr;`` — the value the ALU forwards to the output muxes."""

    value: Expr


@dataclass(frozen=True)
class If(Stmt):
    """An ``if``/``elif``/``else`` chain.

    ``branches`` holds (condition, body) pairs in source order; ``orelse``
    holds the statements of the final ``else`` block (possibly empty).
    """

    branches: Tuple[Tuple[Expr, Tuple[Stmt, ...]], ...]
    orelse: Tuple[Stmt, ...] = ()


# ----------------------------------------------------------------------
# Top-level specification
# ----------------------------------------------------------------------
@dataclass
class ALUSpec:
    """A parsed ALU specification.

    Attributes
    ----------
    name:
        Identifier for the ALU (taken from the file name or supplied by the
        caller); used in generated function names.
    kind:
        ``"stateful"`` or ``"stateless"``.
    state_vars:
        Names of the ALU-local state variables (empty for stateless ALUs).
    hole_vars:
        Names of additional machine-code-supplied values beyond the ones
        implied by primitive call sites (paper Figure 4: "hole variables").
    packet_fields:
        Names of the PHV container value operands.
    body:
        Statements of the ALU body.
    holes:
        Ordered names of every hole (primitive call sites plus declared hole
        variables).  Populated by :func:`repro.alu_dsl.analysis.analyze`.
    hole_domains:
        Mapping from hole name to the number of admissible values (e.g. a
        ``Mux3`` hole has domain 3).  Immediates (``C()``) and declared hole
        variables get a domain of 0, meaning "any unsigned integer".
    source:
        The original DSL text, kept for diagnostics and regeneration.
    """

    name: str
    kind: str
    state_vars: List[str]
    hole_vars: List[str]
    packet_fields: List[str]
    body: List[Stmt]
    holes: List[str] = field(default_factory=list)
    hole_domains: dict = field(default_factory=dict)
    source: str = ""

    @property
    def is_stateful(self) -> bool:
        """True when the ALU reads and writes persistent switch state."""
        return self.kind == "stateful"

    @property
    def num_operands(self) -> int:
        """Number of PHV container value operands (input muxes needed)."""
        return len(self.packet_fields)

    @property
    def num_state_vars(self) -> int:
        """Number of persistent state variables stored in the ALU."""
        return len(self.state_vars)


def walk_expr(expr: Expr) -> Sequence[Expr]:
    """Yield ``expr`` and every sub-expression in pre-order."""
    out: List[Expr] = [expr]
    if isinstance(expr, UnaryOp):
        out.extend(walk_expr(expr.operand))
    elif isinstance(expr, BinaryOp):
        out.extend(walk_expr(expr.left))
        out.extend(walk_expr(expr.right))
    elif isinstance(expr, MuxExpr):
        for sub in expr.inputs:
            out.extend(walk_expr(sub))
    elif isinstance(expr, OptExpr):
        out.extend(walk_expr(expr.operand))
    elif isinstance(expr, (RelOpExpr, ArithOpExpr, BoolOpExpr)):
        out.extend(walk_expr(expr.left))
        out.extend(walk_expr(expr.right))
    return out


def walk_stmts(stmts: Sequence[Stmt]) -> Sequence[Stmt]:
    """Yield every statement in ``stmts`` recursively, in pre-order."""
    out: List[Stmt] = []
    for stmt in stmts:
        out.append(stmt)
        if isinstance(stmt, If):
            for _cond, body in stmt.branches:
                out.extend(walk_stmts(body))
            out.extend(walk_stmts(stmt.orelse))
    return out
