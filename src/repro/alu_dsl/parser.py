"""Recursive-descent parser for the ALU DSL.

The accepted grammar (paper Figure 3, reproduced in
:mod:`repro.alu_dsl.grammar`) is::

    alu            := header body
    header         := type_decl state_decl hole_decl packet_decl
    type_decl      := "type" ":" ("stateful" | "stateless")
    state_decl     := "state" "variables" ":" "{" ident_list? "}"
    hole_decl      := "hole" "variables" ":" "{" ident_list? "}"
    packet_decl    := "packet" "fields" ":" "{" ident_list? "}"
    body           := stmt*
    stmt           := if_stmt | return_stmt | assign_stmt
    if_stmt        := "if" "(" expr ")" block ("elif" "(" expr ")" block)*
                      ("else" block)?
    block          := "{" stmt* "}"
    return_stmt    := "return" expr ";"
    assign_stmt    := ident "=" expr ";"
    expr           := or_expr
    or_expr        := and_expr ("||" and_expr)*
    and_expr       := rel_expr ("&&" rel_expr)*
    rel_expr       := add_expr (("=="|"!="|"<="|">="|"<"|">") add_expr)?
    add_expr       := mul_expr (("+"|"-") mul_expr)*
    mul_expr       := unary_expr (("*"|"/"|"%") unary_expr)*
    unary_expr     := ("-"|"!") unary_expr | primary
    primary        := NUMBER | call | ident | "(" expr ")"
    call           := ("Mux2"|"Mux3"|"Mux4"|"Opt"|"C"|"rel_op"|"arith_op"|"bool_op")
                      "(" arg_list? ")"

The header declarations may appear in any order but each must appear exactly
once.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ALUDSLSyntaxError
from .ast_nodes import (
    ALUSpec,
    ArithOpExpr,
    Assign,
    BinaryOp,
    BoolOpExpr,
    ConstExpr,
    Expr,
    If,
    MuxExpr,
    Number,
    OptExpr,
    PRIMITIVE_CALLS,
    RelOpExpr,
    Return,
    Stmt,
    UnaryOp,
    Var,
)
from .lexer import tokenize
from .tokens import Token, TokenType


class Parser:
    """Recursive-descent parser over the token stream produced by the lexer."""

    def __init__(self, tokens: List[Token], name: str = "alu", source: str = ""):
        self._tokens = tokens
        self._pos = 0
        self._name = name
        self._source = source

    # ------------------------------------------------------------------
    # Token-stream plumbing
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, token_type: TokenType) -> bool:
        return self._peek().type is token_type

    def _match(self, *token_types: TokenType) -> Optional[Token]:
        if self._peek().type in token_types:
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, what: str) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise ALUDSLSyntaxError(
                f"expected {what}, found {token.value!r}",
                line=token.line,
                column=token.column,
            )
        return self._advance()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def parse(self) -> ALUSpec:
        """Parse the full specification and return an un-analysed ALUSpec."""
        kind: Optional[str] = None
        state_vars: Optional[List[str]] = None
        hole_vars: Optional[List[str]] = None
        packet_fields: Optional[List[str]] = None

        # Header declarations, any order, each at most once.
        while self._peek().type in (TokenType.TYPE, TokenType.STATE, TokenType.HOLE, TokenType.PACKET):
            token = self._advance()
            if token.type is TokenType.TYPE:
                if kind is not None:
                    raise ALUDSLSyntaxError("duplicate 'type' declaration", token.line, token.column)
                self._expect(TokenType.COLON, "':' after 'type'")
                kind_token = self._advance()
                if kind_token.type not in (TokenType.STATEFUL, TokenType.STATELESS):
                    raise ALUDSLSyntaxError(
                        "ALU type must be 'stateful' or 'stateless'",
                        kind_token.line,
                        kind_token.column,
                    )
                kind = kind_token.value
            elif token.type is TokenType.STATE:
                if state_vars is not None:
                    raise ALUDSLSyntaxError("duplicate 'state variables' declaration", token.line, token.column)
                self._expect(TokenType.VARIABLES, "'variables' after 'state'")
                state_vars = self._parse_name_set()
            elif token.type is TokenType.HOLE:
                if hole_vars is not None:
                    raise ALUDSLSyntaxError("duplicate 'hole variables' declaration", token.line, token.column)
                self._expect(TokenType.VARIABLES, "'variables' after 'hole'")
                hole_vars = self._parse_name_set()
            else:  # TokenType.PACKET
                if packet_fields is not None:
                    raise ALUDSLSyntaxError("duplicate 'packet fields' declaration", token.line, token.column)
                self._expect(TokenType.FIELDS, "'fields' after 'packet'")
                packet_fields = self._parse_name_set()

        if kind is None:
            raise ALUDSLSyntaxError("missing 'type:' declaration")
        if packet_fields is None:
            raise ALUDSLSyntaxError("missing 'packet fields:' declaration")

        body = self._parse_statements(stop_types=(TokenType.EOF,))
        self._expect(TokenType.EOF, "end of input")

        return ALUSpec(
            name=self._name,
            kind=kind,
            state_vars=state_vars or [],
            hole_vars=hole_vars or [],
            packet_fields=packet_fields,
            body=body,
            source=self._source,
        )

    # ------------------------------------------------------------------
    # Header helpers
    # ------------------------------------------------------------------
    def _parse_name_set(self) -> List[str]:
        self._expect(TokenType.COLON, "':' in declaration")
        self._expect(TokenType.LBRACE, "'{' opening a name set")
        names: List[str] = []
        if not self._check(TokenType.RBRACE):
            names.append(self._expect(TokenType.IDENT, "identifier").value)
            while self._match(TokenType.COMMA):
                names.append(self._expect(TokenType.IDENT, "identifier").value)
        self._expect(TokenType.RBRACE, "'}' closing a name set")
        return names

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _parse_statements(self, stop_types: Tuple[TokenType, ...]) -> List[Stmt]:
        statements: List[Stmt] = []
        while self._peek().type not in stop_types:
            statements.append(self._parse_statement())
        return statements

    def _parse_statement(self) -> Stmt:
        if self._check(TokenType.IF):
            return self._parse_if()
        if self._check(TokenType.RETURN):
            self._advance()
            value = self._parse_expr()
            self._expect(TokenType.SEMICOLON, "';' after return value")
            return Return(value)
        target = self._expect(TokenType.IDENT, "assignment target")
        self._expect(TokenType.ASSIGN, "'=' in assignment")
        value = self._parse_expr()
        self._expect(TokenType.SEMICOLON, "';' after assignment")
        return Assign(target.value, value)

    def _parse_if(self) -> If:
        self._expect(TokenType.IF, "'if'")
        branches: List[Tuple[Expr, Tuple[Stmt, ...]]] = []
        condition = self._parse_parenthesised_expr()
        branches.append((condition, tuple(self._parse_block())))
        orelse: Tuple[Stmt, ...] = ()
        while True:
            if self._check(TokenType.ELIF):
                self._advance()
                condition = self._parse_parenthesised_expr()
                branches.append((condition, tuple(self._parse_block())))
                continue
            if self._check(TokenType.ELSE):
                self._advance()
                # Allow `else if (...)` as an alias of `elif (...)`.
                if self._check(TokenType.IF):
                    self._advance()
                    condition = self._parse_parenthesised_expr()
                    branches.append((condition, tuple(self._parse_block())))
                    continue
                orelse = tuple(self._parse_block())
            break
        return If(tuple(branches), orelse)

    def _parse_parenthesised_expr(self) -> Expr:
        self._expect(TokenType.LPAREN, "'(' before condition")
        expr = self._parse_expr()
        self._expect(TokenType.RPAREN, "')' after condition")
        return expr

    def _parse_block(self) -> List[Stmt]:
        self._expect(TokenType.LBRACE, "'{' opening a block")
        statements = self._parse_statements(stop_types=(TokenType.RBRACE, TokenType.EOF))
        self._expect(TokenType.RBRACE, "'}' closing a block")
        return statements

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        expr = self._parse_and()
        while self._check(TokenType.OR):
            self._advance()
            expr = BinaryOp("||", expr, self._parse_and())
        return expr

    def _parse_and(self) -> Expr:
        expr = self._parse_relational()
        while self._check(TokenType.AND):
            self._advance()
            expr = BinaryOp("&&", expr, self._parse_relational())
        return expr

    _REL_TOKENS = {
        TokenType.EQ: "==",
        TokenType.NEQ: "!=",
        TokenType.LE: "<=",
        TokenType.GE: ">=",
        TokenType.LT: "<",
        TokenType.GT: ">",
    }

    def _parse_relational(self) -> Expr:
        expr = self._parse_additive()
        if self._peek().type in self._REL_TOKENS:
            op_token = self._advance()
            expr = BinaryOp(self._REL_TOKENS[op_token.type], expr, self._parse_additive())
        return expr

    def _parse_additive(self) -> Expr:
        expr = self._parse_multiplicative()
        while self._peek().type in (TokenType.PLUS, TokenType.MINUS):
            op_token = self._advance()
            expr = BinaryOp(op_token.value, expr, self._parse_multiplicative())
        return expr

    def _parse_multiplicative(self) -> Expr:
        expr = self._parse_unary()
        while self._peek().type in (TokenType.STAR, TokenType.SLASH, TokenType.PERCENT):
            op_token = self._advance()
            expr = BinaryOp(op_token.value, expr, self._parse_unary())
        return expr

    def _parse_unary(self) -> Expr:
        if self._peek().type in (TokenType.MINUS, TokenType.NOT):
            op_token = self._advance()
            return UnaryOp(op_token.value, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return Number(int(token.value))
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenType.RPAREN, "')'")
            return expr
        if token.type is TokenType.IDENT:
            if token.value in PRIMITIVE_CALLS and self._peek(1).type is TokenType.LPAREN:
                return self._parse_primitive_call()
            self._advance()
            return Var(token.value)
        raise ALUDSLSyntaxError(
            f"unexpected token {token.value!r} in expression",
            line=token.line,
            column=token.column,
        )

    def _parse_primitive_call(self) -> Expr:
        name_token = self._advance()
        name = name_token.value
        arity = PRIMITIVE_CALLS[name]
        self._expect(TokenType.LPAREN, f"'(' after {name}")
        args: List[Expr] = []
        if not self._check(TokenType.RPAREN):
            args.append(self._parse_expr())
            while self._match(TokenType.COMMA):
                args.append(self._parse_expr())
        self._expect(TokenType.RPAREN, f"')' closing {name} call")
        if len(args) != arity:
            raise ALUDSLSyntaxError(
                f"{name} expects {arity} argument(s), got {len(args)}",
                line=name_token.line,
                column=name_token.column,
            )
        if name in ("Mux2", "Mux3", "Mux4"):
            return MuxExpr(tuple(args))
        if name == "Opt":
            return OptExpr(args[0])
        if name == "C":
            return ConstExpr()
        if name == "rel_op":
            return RelOpExpr(args[0], args[1])
        if name == "arith_op":
            return ArithOpExpr(args[0], args[1])
        if name == "bool_op":
            return BoolOpExpr(args[0], args[1])
        raise ALUDSLSyntaxError(f"unknown primitive {name}", name_token.line, name_token.column)


def parse(source: str, name: str = "alu") -> ALUSpec:
    """Parse ALU DSL ``source`` into an (un-analysed) :class:`ALUSpec`."""
    return Parser(tokenize(source), name=name, source=source).parse()
