"""ALU domain-specific language (paper §3.1, Figures 3 and 4).

The ALU DSL expresses the capabilities of a single switch ALU: its PHV
operands, its state variables, any extra hole variables, and a body of
statements over machine-code-controlled primitives (``Mux2``, ``Mux3``,
``Opt``, ``C``, ``rel_op``, ``arith_op``, ``bool_op``).

Typical use::

    from repro.alu_dsl import parse_and_analyze, ALUInterpreter

    spec = parse_and_analyze(source_text, name="if_else_raw")
    result = ALUInterpreter(spec).execute(operands=[3, 7], state=[0],
                                          holes={"rel_op_0": 0, ...})
"""

from .analysis import analyze, parse_and_analyze
from .ast_nodes import (
    ALUSpec,
    ArithOpExpr,
    Assign,
    BinaryOp,
    BoolOpExpr,
    ConstExpr,
    Expr,
    If,
    MuxExpr,
    Number,
    OptExpr,
    RelOpExpr,
    Return,
    Stmt,
    UnaryOp,
    Var,
)
from .grammar import EBNF, describe
from .interpreter import ALUInterpreter, ALUResult
from .lexer import Lexer, tokenize
from .parser import Parser, parse
from .printer import format_expr, format_spec, format_stmts

__all__ = [
    "ALUSpec",
    "ALUInterpreter",
    "ALUResult",
    "Lexer",
    "Parser",
    "parse",
    "tokenize",
    "analyze",
    "parse_and_analyze",
    "EBNF",
    "describe",
    "format_expr",
    "format_stmts",
    "format_spec",
    "Expr",
    "Stmt",
    "Number",
    "Var",
    "UnaryOp",
    "BinaryOp",
    "MuxExpr",
    "OptExpr",
    "ConstExpr",
    "RelOpExpr",
    "ArithOpExpr",
    "BoolOpExpr",
    "Assign",
    "Return",
    "If",
]
