"""Pretty-printer: turn ALU specifications back into ALU DSL source text.

Used by the verification and debugging extensions to show users what an ALU
computes *after* machine code has been substituted (the specialised spec from
the SCC-propagation pass), and by round-trip tests that check
``parse(print(spec))`` behaves exactly like ``spec``.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ALUDSLSemanticError
from .ast_nodes import (
    ALUSpec,
    ArithOpExpr,
    Assign,
    BinaryOp,
    BoolOpExpr,
    ConstExpr,
    Expr,
    If,
    MuxExpr,
    Number,
    OptExpr,
    RelOpExpr,
    Return,
    Stmt,
    UnaryOp,
    Var,
)

_INDENT = "    "

#: Binding strength of binary operators, loosest first (mirrors the parser).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3, "!=": 3, "<=": 3, ">=": 3, "<": 3, ">": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5, "%": 5,
}


def format_expr(expr: Expr, parent_precedence: int = 0) -> str:
    """Render one expression as DSL source."""
    if isinstance(expr, Number):
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, UnaryOp):
        return f"{expr.op}{format_expr(expr.operand, parent_precedence=6)}"
    if isinstance(expr, BinaryOp):
        precedence = _PRECEDENCE.get(expr.op, 3)
        left = format_expr(expr.left, precedence)
        right = format_expr(expr.right, precedence + 1)
        text = f"{left} {expr.op} {right}"
        if precedence < parent_precedence:
            return f"({text})"
        return text
    if isinstance(expr, MuxExpr):
        name = f"Mux{expr.width}"
        return f"{name}({', '.join(format_expr(sub) for sub in expr.inputs)})"
    if isinstance(expr, OptExpr):
        return f"Opt({format_expr(expr.operand)})"
    if isinstance(expr, ConstExpr):
        return "C()"
    if isinstance(expr, RelOpExpr):
        return f"rel_op({format_expr(expr.left)}, {format_expr(expr.right)})"
    if isinstance(expr, ArithOpExpr):
        return f"arith_op({format_expr(expr.left)}, {format_expr(expr.right)})"
    if isinstance(expr, BoolOpExpr):
        return f"bool_op({format_expr(expr.left)}, {format_expr(expr.right)})"
    raise ALUDSLSemanticError(f"cannot print expression node {type(expr).__name__}")


def format_stmts(stmts: Sequence[Stmt], indent: int = 0) -> List[str]:
    """Render a statement list as DSL source lines."""
    pad = _INDENT * indent
    lines: List[str] = []
    for stmt in stmts:
        if isinstance(stmt, Assign):
            lines.append(f"{pad}{stmt.target} = {format_expr(stmt.value)};")
        elif isinstance(stmt, Return):
            lines.append(f"{pad}return {format_expr(stmt.value)};")
        elif isinstance(stmt, If):
            for index, (condition, body) in enumerate(stmt.branches):
                keyword = "if" if index == 0 else "elif"
                lines.append(f"{pad}{keyword} ({format_expr(condition)}) {{")
                lines.extend(format_stmts(body, indent + 1))
                lines.append(f"{pad}}}")
            if stmt.orelse:
                lines.append(f"{pad}else {{")
                lines.extend(format_stmts(stmt.orelse, indent + 1))
                lines.append(f"{pad}}}")
        else:  # pragma: no cover - defensive
            raise ALUDSLSemanticError(f"cannot print statement node {type(stmt).__name__}")
    return lines


def format_spec(spec: ALUSpec) -> str:
    """Render a whole ALU specification (header + body) as DSL source text."""
    lines = [
        f"type: {spec.kind}",
        "state variables : {" + ", ".join(spec.state_vars) + "}",
        "hole variables : {" + ", ".join(spec.hole_vars) + "}",
        "packet fields : {" + ", ".join(spec.packet_fields) + "}",
        "",
    ]
    lines.extend(format_stmts(spec.body))
    return "\n".join(lines) + "\n"
