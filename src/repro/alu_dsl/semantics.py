"""Shared operational semantics of ALU DSL primitives.

Both the reference interpreter (:mod:`repro.alu_dsl.interpreter`) and the
code generator (:mod:`repro.dgen.codegen`) derive their behaviour from the
tables in this module, which keeps the two execution paths in agreement by
construction.  The property-based tests in ``tests/test_equivalence.py``
additionally check the agreement empirically.

All arithmetic is ordinary Python integer arithmetic.  Division by zero and
modulo by zero are defined to return 0 (a switch ALU never traps), and
relational/logical results are the integers 0 and 1.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

# ----------------------------------------------------------------------
# Opcode tables.  Each entry is (python_expression_template, function).
# The template uses {a} and {b} placeholders and is what dgen emits; the
# function is what the interpreter calls.  Keeping them adjacent makes a
# mismatch easy to spot and easy to test.
# ----------------------------------------------------------------------

REL_OPS: List[Tuple[str, Callable[[int, int], int]]] = [
    ("int(({a}) == ({b}))", lambda a, b: int(a == b)),
    ("int(({a}) < ({b}))", lambda a, b: int(a < b)),
    ("int(({a}) > ({b}))", lambda a, b: int(a > b)),
    ("int(({a}) != ({b}))", lambda a, b: int(a != b)),
    ("int(({a}) <= ({b}))", lambda a, b: int(a <= b)),
    ("int(({a}) >= ({b}))", lambda a, b: int(a >= b)),
]

ARITH_OPS: List[Tuple[str, Callable[[int, int], int]]] = [
    ("(({a}) + ({b}))", lambda a, b: a + b),
    ("(({a}) - ({b}))", lambda a, b: a - b),
    ("(({a}) * ({b}))", lambda a, b: a * b),
    ("(({a}) // ({b}) if ({b}) != 0 else 0)", lambda a, b: a // b if b != 0 else 0),
]

#: DSL operator symbol selected by each ``rel_op`` / ``arith_op`` / ``bool_op``
#: opcode.  Used by the SCC-propagation pass to rewrite a hole-controlled
#: primitive into the literal operator it resolves to.
REL_OP_SYMBOLS: List[str] = ["==", "<", ">", "!=", "<=", ">="]
ARITH_OP_SYMBOLS: List[str] = ["+", "-", "*", "/"]
BOOL_OP_SYMBOLS: List[str] = ["&&", "||"]

BOOL_OPS: List[Tuple[str, Callable[[int, int], int]]] = [
    ("int(bool({a}) and bool({b}))", lambda a, b: int(bool(a) and bool(b))),
    ("int(bool({a}) or bool({b}))", lambda a, b: int(bool(a) or bool(b))),
]

#: Binary operators appearing literally in DSL source (not hole-controlled).
BINARY_OPS: Dict[str, Tuple[str, Callable[[int, int], int]]] = {
    "+": ("(({a}) + ({b}))", lambda a, b: a + b),
    "-": ("(({a}) - ({b}))", lambda a, b: a - b),
    "*": ("(({a}) * ({b}))", lambda a, b: a * b),
    "/": ("(({a}) // ({b}) if ({b}) != 0 else 0)", lambda a, b: a // b if b != 0 else 0),
    "%": ("(({a}) % ({b}) if ({b}) != 0 else 0)", lambda a, b: a % b if b != 0 else 0),
    "==": ("int(({a}) == ({b}))", lambda a, b: int(a == b)),
    "!=": ("int(({a}) != ({b}))", lambda a, b: int(a != b)),
    "<=": ("int(({a}) <= ({b}))", lambda a, b: int(a <= b)),
    ">=": ("int(({a}) >= ({b}))", lambda a, b: int(a >= b)),
    "<": ("int(({a}) < ({b}))", lambda a, b: int(a < b)),
    ">": ("int(({a}) > ({b}))", lambda a, b: int(a > b)),
    "&&": ("int(bool({a}) and bool({b}))", lambda a, b: int(bool(a) and bool(b))),
    "||": ("int(bool({a}) or bool({b}))", lambda a, b: int(bool(a) or bool(b))),
}

#: Unary operators appearing literally in DSL source.
UNARY_OPS: Dict[str, Tuple[str, Callable[[int], int]]] = {
    "-": ("(-({a}))", lambda a: -a),
    "!": ("int(not ({a}))", lambda a: int(not a)),
}


def apply_rel_op(opcode: int, a: int, b: int) -> int:
    """Apply the relational operator selected by ``opcode`` (modulo the table size)."""
    return REL_OPS[opcode % len(REL_OPS)][1](a, b)


def apply_arith_op(opcode: int, a: int, b: int) -> int:
    """Apply the arithmetic operator selected by ``opcode`` (modulo the table size)."""
    return ARITH_OPS[opcode % len(ARITH_OPS)][1](a, b)


def apply_bool_op(opcode: int, a: int, b: int) -> int:
    """Apply the logical operator selected by ``opcode`` (modulo the table size)."""
    return BOOL_OPS[opcode % len(BOOL_OPS)][1](a, b)


def apply_binary(op: str, a: int, b: int) -> int:
    """Apply a literal DSL binary operator ``op`` to integer operands."""
    return BINARY_OPS[op][1](a, b)


def apply_unary(op: str, a: int) -> int:
    """Apply a literal DSL unary operator ``op`` to an integer operand."""
    return UNARY_OPS[op][1](a)


def mux_select(opcode: int, inputs: Tuple[int, ...]) -> int:
    """N-to-1 multiplexer: ``opcode`` (modulo N) selects one of ``inputs``."""
    return inputs[opcode % len(inputs)]


def opt_select(opcode: int, value: int) -> int:
    """``Opt`` primitive: return ``value`` when ``opcode`` is even, else 0."""
    return value if opcode % 2 == 0 else 0
