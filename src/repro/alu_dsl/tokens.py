"""Token definitions for the ALU DSL lexer.

The ALU DSL (paper §3.1, Figure 3) is a small imperative language used to
describe the capabilities of a single ALU: its operands (PHV container
values), its state variables, additional *hole* variables whose values come
from machine code, and a body made of assignments and ``if``/``elif``/``else``
statements over arithmetic, relational and logical expressions.  The grammar
also provides machine-code-controlled primitives: ``Mux2``, ``Mux3``,
``Opt``, ``C``, ``rel_op``, ``arith_op`` and ``bool_op``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Every terminal recognised by the ALU DSL lexer."""

    # Literals and identifiers.
    NUMBER = "NUMBER"
    IDENT = "IDENT"

    # Header keywords.
    TYPE = "type"
    STATEFUL = "stateful"
    STATELESS = "stateless"
    STATE = "state"
    HOLE = "hole"
    PACKET = "packet"
    VARIABLES = "variables"
    FIELDS = "fields"

    # Statement keywords.
    IF = "if"
    ELIF = "elif"
    ELSE = "else"
    RETURN = "return"

    # Punctuation.
    COLON = ":"
    COMMA = ","
    SEMICOLON = ";"
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"

    # Operators.
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NEQ = "!="
    LE = "<="
    GE = ">="
    LT = "<"
    GT = ">"
    AND = "&&"
    OR = "||"
    NOT = "!"

    # End of input sentinel.
    EOF = "EOF"


#: Keywords that the lexer promotes from IDENT to a dedicated token type.
KEYWORDS = {
    "type": TokenType.TYPE,
    "stateful": TokenType.STATEFUL,
    "stateless": TokenType.STATELESS,
    "state": TokenType.STATE,
    "hole": TokenType.HOLE,
    "packet": TokenType.PACKET,
    "variables": TokenType.VARIABLES,
    "fields": TokenType.FIELDS,
    "if": TokenType.IF,
    "elif": TokenType.ELIF,
    "else": TokenType.ELSE,
    "return": TokenType.RETURN,
}

#: Multi-character operators, tried before single-character ones.
TWO_CHAR_OPERATORS = {
    "==": TokenType.EQ,
    "!=": TokenType.NEQ,
    "<=": TokenType.LE,
    ">=": TokenType.GE,
    "&&": TokenType.AND,
    "||": TokenType.OR,
}

#: Single-character operators and punctuation.
ONE_CHAR_OPERATORS = {
    ":": TokenType.COLON,
    ",": TokenType.COMMA,
    ";": TokenType.SEMICOLON,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "=": TokenType.ASSIGN,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "<": TokenType.LT,
    ">": TokenType.GT,
    "!": TokenType.NOT,
}


@dataclass(frozen=True)
class Token:
    """A single lexeme with its source location (1-based line and column)."""

    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"
