"""Machine-readable description of the ALU DSL grammar (paper Figure 3).

This module exposes the grammar as an EBNF string plus small helper queries
used by documentation, the CLI (``druzhba-dgen --grammar``) and tests that
check the parser actually accepts everything the grammar promises.
"""

from __future__ import annotations

from .ast_nodes import PRIMITIVE_CALLS
from .semantics import ARITH_OPS, BOOL_OPS, REL_OPS

#: EBNF of the ALU DSL accepted by :mod:`repro.alu_dsl.parser`.
EBNF = """
alu            := header body
header         := declaration+
declaration    := "type" ":" ("stateful" | "stateless")
                | "state" "variables" ":" "{" ident_list? "}"
                | "hole" "variables" ":" "{" ident_list? "}"
                | "packet" "fields" ":" "{" ident_list? "}"
ident_list     := IDENT ("," IDENT)*
body           := stmt*
stmt           := if_stmt | return_stmt | assign_stmt
if_stmt        := "if" "(" expr ")" block ("elif" "(" expr ")" block)* ("else" block)?
block          := "{" stmt* "}"
return_stmt    := "return" expr ";"
assign_stmt    := IDENT "=" expr ";"
expr           := or_expr
or_expr        := and_expr ("||" and_expr)*
and_expr       := rel_expr ("&&" rel_expr)*
rel_expr       := add_expr (("==" | "!=" | "<=" | ">=" | "<" | ">") add_expr)?
add_expr       := mul_expr (("+" | "-") mul_expr)*
mul_expr       := unary_expr (("*" | "/" | "%") unary_expr)*
unary_expr     := ("-" | "!") unary_expr | primary
primary        := NUMBER | primitive_call | IDENT | "(" expr ")"
primitive_call := "Mux2" "(" expr "," expr ")"
                | "Mux3" "(" expr "," expr "," expr ")"
                | "Mux4" "(" expr "," expr "," expr "," expr ")"
                | "Opt" "(" expr ")"
                | "C" "(" ")"
                | "rel_op" "(" expr "," expr ")"
                | "arith_op" "(" expr "," expr ")"
                | "bool_op" "(" expr "," expr ")"
"""

#: Human-readable summary of each hole-controlled primitive and its domain.
PRIMITIVE_SUMMARY = {
    "Mux2": "2-to-1 multiplexer; machine code selects which input is forwarded",
    "Mux3": "3-to-1 multiplexer; machine code selects which input is forwarded",
    "Mux4": "4-to-1 multiplexer; machine code selects which input is forwarded",
    "Opt": "2-to-1 multiplexer returning its argument or the constant 0",
    "C": "immediate operand supplied by machine code",
    "rel_op": "machine-code-selected relational operator "
    f"({len(REL_OPS)} choices: ==, <, >, !=, <=, >=)",
    "arith_op": "machine-code-selected arithmetic operator "
    f"({len(ARITH_OPS)} choices: +, -, *, saturating -)",
    "bool_op": f"machine-code-selected logical operator ({len(BOOL_OPS)} choices: &&, ||)",
}


def primitive_names() -> list[str]:
    """Names of every hole-controlled primitive call form."""
    return sorted(PRIMITIVE_CALLS)


def describe() -> str:
    """Return a formatted grammar + primitive reference used by the CLI."""
    lines = ["ALU DSL grammar (EBNF)", "=" * 22, EBNF.strip(), "", "Primitives", "-" * 10]
    for name in primitive_names():
        lines.append(f"{name:10s} {PRIMITIVE_SUMMARY.get(name, '')}")
    return "\n".join(lines)
