"""The time-travel debugger (paper §7 future work).

A :class:`TimeTravelDebugger` wraps an :class:`ExecutionRecording` with a
movable cursor: testers can step forward, rewind, jump to an arbitrary tick,
and set breakpoints on PHV container values or switch-state values.  Because
every tick was recorded, "bi-directional traveling" costs nothing: running to
a breakpoint backwards is just a reverse scan over the snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import SimulationError
from .recorder import ExecutionRecording, TickSnapshot

#: A breakpoint predicate: inspects one tick snapshot and returns True to stop.
Predicate = Callable[[TickSnapshot], bool]


@dataclass
class Breakpoint:
    """A named breakpoint over tick snapshots."""

    name: str
    predicate: Predicate

    def matches(self, snapshot: TickSnapshot) -> bool:
        """True when the debugger should stop at ``snapshot``."""
        return bool(self.predicate(snapshot))


def state_breakpoint(
    stage: int, slot: int, state_var: int, condition: Callable[[int], bool], name: str = ""
) -> Breakpoint:
    """Break when a stateful ALU's state variable satisfies ``condition``."""
    label = name or f"state[{stage}][{slot}][{state_var}]"
    return Breakpoint(
        name=label,
        predicate=lambda snapshot: condition(snapshot.state[stage][slot][state_var]),
    )


def container_breakpoint(
    stage: int, container: int, condition: Callable[[int], bool], name: str = ""
) -> Breakpoint:
    """Break when the write half of the PHV in ``stage`` satisfies ``condition``.

    The write half is inspected because it holds the values the stage just
    produced — the natural place to catch an erroneous computation as it
    happens.
    """
    label = name or f"stage {stage} container {container}"

    def predicate(snapshot: TickSnapshot) -> bool:
        occupancy = snapshot.stages[stage]
        if occupancy.phv_id is None or occupancy.write is None:
            return False
        return condition(occupancy.write[container])

    return Breakpoint(name=label, predicate=predicate)


def phv_exit_breakpoint(phv_id: int) -> Breakpoint:
    """Break on the tick at which a specific PHV leaves the pipeline."""
    return Breakpoint(
        name=f"PHV {phv_id} exits", predicate=lambda snapshot: snapshot.exited == phv_id
    )


class TimeTravelDebugger:
    """A cursor over a recorded execution, with breakpoints in both directions."""

    def __init__(self, recording: ExecutionRecording):
        if recording.num_ticks == 0:
            raise SimulationError("cannot debug an empty recording")
        self.recording = recording
        self._cursor = 0
        self.breakpoints: List[Breakpoint] = []

    # ------------------------------------------------------------------
    # Cursor movement
    # ------------------------------------------------------------------
    @property
    def current_tick(self) -> int:
        """Tick the cursor currently points at."""
        return self._cursor

    @property
    def current(self) -> TickSnapshot:
        """Snapshot under the cursor."""
        return self.recording.snapshot(self._cursor)

    @property
    def at_start(self) -> bool:
        """True when the cursor is at the first recorded tick."""
        return self._cursor == 0

    @property
    def at_end(self) -> bool:
        """True when the cursor is at the last recorded tick."""
        return self._cursor == self.recording.num_ticks - 1

    def goto(self, tick: int) -> TickSnapshot:
        """Jump to an absolute tick."""
        snapshot = self.recording.snapshot(tick)  # validates the range
        self._cursor = tick
        return snapshot

    def step(self, ticks: int = 1) -> TickSnapshot:
        """Advance the cursor by ``ticks`` (clamped to the end of the recording)."""
        self._cursor = min(self._cursor + ticks, self.recording.num_ticks - 1)
        return self.current

    def rewind(self, ticks: int = 1) -> TickSnapshot:
        """Move the cursor backwards by ``ticks`` (clamped to the first tick)."""
        self._cursor = max(self._cursor - ticks, 0)
        return self.current

    # ------------------------------------------------------------------
    # Breakpoints
    # ------------------------------------------------------------------
    def add_breakpoint(self, breakpoint: Breakpoint) -> Breakpoint:
        """Register a breakpoint and return it (for later removal)."""
        self.breakpoints.append(breakpoint)
        return breakpoint

    def clear_breakpoints(self) -> None:
        """Remove every registered breakpoint."""
        self.breakpoints.clear()

    def run_forward(self) -> Optional[TickSnapshot]:
        """Advance until a breakpoint matches; return its snapshot or ``None`` at the end."""
        return self._run(direction=1)

    def run_backward(self) -> Optional[TickSnapshot]:
        """Rewind until a breakpoint matches; return its snapshot or ``None`` at the start."""
        return self._run(direction=-1)

    def _run(self, direction: int) -> Optional[TickSnapshot]:
        if not self.breakpoints:
            raise SimulationError("no breakpoints registered; use step()/rewind() instead")
        tick = self._cursor + direction
        while 0 <= tick < self.recording.num_ticks:
            snapshot = self.recording.snapshot(tick)
            if any(breakpoint.matches(snapshot) for breakpoint in self.breakpoints):
                self._cursor = tick
                return snapshot
            tick += direction
        return None

    # ------------------------------------------------------------------
    # Inspection helpers
    # ------------------------------------------------------------------
    def state_at_cursor(self, stage: int, slot: int) -> List[int]:
        """State vector of one stateful ALU at the cursor."""
        return self.current.state_of(stage, slot)

    def describe(self) -> str:
        """Render the snapshot under the cursor."""
        return self.recording.describe_tick(self._cursor)

    def trace_origin(self, phv_id: int) -> List[str]:
        """Render a PHV's per-stage transformation history (oldest first).

        This is the "trace origins of erroneous behavior" use case of §7: for
        a mismatching PHV found by the fuzzer, the journey shows what every
        stage read and wrote for that PHV.
        """
        journey = self.recording.phv_journey(phv_id)
        lines = []
        for occupancy in journey:
            lines.append(
                f"stage {occupancy.stage}: read {list(occupancy.read)} -> wrote {list(occupancy.write)}"
            )
        exit_tick = self.recording.exit_tick(phv_id)
        if exit_tick is not None:
            lines.append(f"exited at tick {exit_tick} with {self.recording.phv_output(phv_id)}")
        return lines
