"""Time-travel debugging for Druzhba pipeline simulations (paper §7 future work).

Record a simulation tick by tick, then move a cursor forwards and backwards
through it, set breakpoints on container or state values, and trace the
per-stage journey of any PHV.
"""

from .recorder import (
    ExecutionRecording,
    FusedRecording,
    FusedStageSnapshot,
    StageOccupancy,
    TickSnapshot,
    record_execution,
    record_fused_execution,
)
from .session import (
    Breakpoint,
    TimeTravelDebugger,
    container_breakpoint,
    phv_exit_breakpoint,
    state_breakpoint,
)

__all__ = [
    "record_execution",
    "record_fused_execution",
    "ExecutionRecording",
    "FusedRecording",
    "FusedStageSnapshot",
    "TickSnapshot",
    "StageOccupancy",
    "TimeTravelDebugger",
    "Breakpoint",
    "state_breakpoint",
    "container_breakpoint",
    "phv_exit_breakpoint",
]
