"""Execution recording for the time-travel debugger.

The paper's future-work section (§7) proposes "a domain specific time travel
debugger for Druzhba ... setting breakpoints to observe PHV container and
state values at different points of simulation [and] rewind pipeline
simulation ticks to past pipeline states to trace origins of erroneous
behavior".  Recording is the substrate that makes this possible: every
simulation tick's complete pipeline state — which PHV occupies which stage,
both of its halves, and every stateful ALU's state vector — is captured so
the debugger can move the cursor freely in either direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..dgen.emit import PipelineDescription
from ..dsim.phv import PHV
from ..dsim.pipeline import Pipeline
from ..errors import SimulationError


@dataclass(frozen=True)
class StageOccupancy:
    """What one pipeline stage held at the end of one tick."""

    stage: int
    phv_id: Optional[int]
    read: Optional[tuple]
    write: Optional[tuple]


@dataclass(frozen=True)
class TickSnapshot:
    """Complete pipeline state at the end of one simulation tick.

    ``state`` is indexed ``[stage][slot][state_var]`` and reflects the values
    *after* the tick's computations; ``stages`` records the PHV (if any) in
    every stage together with its read and write halves; ``entered`` and
    ``exited`` are the ids of the PHV that entered stage 0 and the PHV that
    left the pipeline on this tick.
    """

    tick: int
    stages: tuple
    state: tuple
    entered: Optional[int]
    exited: Optional[int]

    def stage(self, index: int) -> StageOccupancy:
        """Occupancy of one stage."""
        return self.stages[index]

    def state_of(self, stage: int, slot: int) -> List[int]:
        """State vector of one stateful ALU at the end of this tick."""
        return list(self.state[stage][slot])


@dataclass
class ExecutionRecording:
    """A fully recorded simulation run."""

    description: PipelineDescription
    inputs: List[List[int]]
    snapshots: List[TickSnapshot] = field(default_factory=list)
    outputs: Dict[int, List[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_ticks(self) -> int:
        """Number of recorded ticks."""
        return len(self.snapshots)

    @property
    def depth(self) -> int:
        """Pipeline depth of the recorded run."""
        return self.description.spec.depth

    def snapshot(self, tick: int) -> TickSnapshot:
        """The snapshot taken at the end of ``tick``."""
        if tick < 0 or tick >= len(self.snapshots):
            raise SimulationError(
                f"tick {tick} outside the recorded range 0..{len(self.snapshots) - 1}"
            )
        return self.snapshots[tick]

    def state_series(self, stage: int, slot: int, state_var: int = 0) -> List[int]:
        """One state variable's value at the end of every tick."""
        return [snapshot.state[stage][slot][state_var] for snapshot in self.snapshots]

    # ------------------------------------------------------------------
    # PHV-centric queries
    # ------------------------------------------------------------------
    def phv_journey(self, phv_id: int) -> List[StageOccupancy]:
        """Every (tick, stage) position of one PHV, in tick order.

        The returned occupancies carry the PHV's read and write halves at the
        end of each tick, so the effect of every stage on the PHV can be read
        off directly.
        """
        journey: List[StageOccupancy] = []
        for snapshot in self.snapshots:
            for occupancy in snapshot.stages:
                if occupancy.phv_id == phv_id:
                    journey.append(occupancy)
        return journey

    def phv_output(self, phv_id: int) -> List[int]:
        """The final container values of one PHV (after it exited)."""
        if phv_id not in self.outputs:
            raise SimulationError(f"PHV {phv_id} never exited the recorded pipeline")
        return list(self.outputs[phv_id])

    def exit_tick(self, phv_id: int) -> Optional[int]:
        """The tick at which one PHV exited, or ``None`` if it never did."""
        for snapshot in self.snapshots:
            if snapshot.exited == phv_id:
                return snapshot.tick
        return None

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def describe_tick(self, tick: int) -> str:
        """Human-readable rendering of one tick's snapshot."""
        snapshot = self.snapshot(tick)
        lines = [f"tick {snapshot.tick}:"]
        if snapshot.entered is not None:
            lines.append(f"  entered:  PHV {snapshot.entered}")
        if snapshot.exited is not None:
            lines.append(f"  exited:   PHV {snapshot.exited} -> {self.outputs.get(snapshot.exited)}")
        for occupancy in snapshot.stages:
            if occupancy.phv_id is None:
                lines.append(f"  stage {occupancy.stage}: (empty)")
            else:
                lines.append(
                    f"  stage {occupancy.stage}: PHV {occupancy.phv_id} "
                    f"read={list(occupancy.read)} write={list(occupancy.write)}"
                )
        for stage, stage_state in enumerate(snapshot.state):
            rendered = ", ".join(str(list(alu_state)) for alu_state in stage_state)
            lines.append(f"  state[{stage}]: {rendered}")
        return "\n".join(lines)


@dataclass(frozen=True)
class FusedStageSnapshot:
    """One PHV leaving one stage of the fused loop.

    ``phv`` holds the stage's output containers (the write half of the tick
    model) and ``state`` the stage's state vectors immediately after the
    (PHV, stage) execution — i.e. exactly what the tick model shows at the
    end of tick ``phv_id + stage``.
    """

    phv_id: int
    stage: int
    phv: tuple
    state: tuple


@dataclass
class FusedRecording:
    """A recording of the fused (opt level 3) fast path.

    Where :class:`ExecutionRecording` snapshots the whole pipeline per tick,
    the fused loop has no ticks: the recording is one
    :class:`FusedStageSnapshot` per (PHV, stage) execution, in execution
    order — which is what production runs actually compute (ROADMAP:
    "debugger coverage for opt level 3").
    """

    description: PipelineDescription
    inputs: List[List[int]]
    snapshots: List[FusedStageSnapshot] = field(default_factory=list)
    outputs: Dict[int, List[int]] = field(default_factory=dict)
    final_state: Optional[List[List[List[int]]]] = None

    @property
    def depth(self) -> int:
        """Pipeline depth of the recorded run."""
        return self.description.spec.depth

    def phv_journey(self, phv_id: int) -> List[FusedStageSnapshot]:
        """Every per-stage snapshot of one PHV, in stage order."""
        return [snapshot for snapshot in self.snapshots if snapshot.phv_id == phv_id]

    def state_series(self, stage: int, slot: int, state_var: int = 0) -> List[int]:
        """One state variable's value after every PHV passed ``stage``."""
        return [
            snapshot.state[slot][state_var]
            for snapshot in self.snapshots
            if snapshot.stage == stage
        ]

    def phv_output(self, phv_id: int) -> List[int]:
        """The final container values of one PHV."""
        if phv_id not in self.outputs:
            raise SimulationError(f"PHV {phv_id} was not part of the recorded run")
        return list(self.outputs[phv_id])


def record_fused_execution(
    description: PipelineDescription,
    inputs: Sequence[Sequence[int]],
    initial_state: Optional[List[List[List[int]]]] = None,
    runtime_values: Optional[Dict[str, int]] = None,
) -> FusedRecording:
    """Run the fused fast path while recording every (PHV, stage) execution.

    Requires a description generated at opt level 3 (whose module carries
    the ``run_trace_observed`` entry point); raises
    :class:`SimulationError` otherwise.  For a feedforward pipeline the
    snapshots agree with the tick recorder: the snapshot of (PHV ``p``,
    stage ``s``) equals the tick model's stage-``s`` write half and state at
    the end of tick ``p + s``.
    """
    if description.observed_function is None:
        raise SimulationError(
            "description carries no observed fused entry point "
            f"(opt level {description.opt_level}); generate at opt level 3"
        )
    from ..engine.rmt import run_fused

    if initial_state is not None:
        # The fused loop mutates the state it is given; keep the caller's
        # vectors pristine (and the recording's final_state unaliased).
        initial_state = [[list(alu) for alu in stage] for stage in initial_state]
    recording = FusedRecording(
        description=description, inputs=[list(values) for values in inputs]
    )

    def observer(phv_index: int, stage: int, phv: List[int], stage_state) -> None:
        recording.snapshots.append(
            FusedStageSnapshot(
                phv_id=phv_index,
                stage=stage,
                phv=tuple(phv),
                state=tuple(tuple(alu_state) for alu_state in stage_state),
            )
        )

    result = run_fused(
        description, inputs, runtime_values, initial_state, observer=observer
    )
    recording.outputs = {
        record.phv_id: list(record.outputs) for record in result.output_trace
    }
    recording.final_state = result.final_state
    return recording


def record_execution(
    description: PipelineDescription,
    inputs: Sequence[Sequence[int]],
    initial_state: Optional[List[List[List[int]]]] = None,
    runtime_values: Optional[Dict[str, int]] = None,
) -> ExecutionRecording:
    """Simulate ``inputs`` through ``description`` while recording every tick."""
    pipeline = Pipeline(description, runtime_values=runtime_values, initial_state=initial_state)
    recording = ExecutionRecording(description=description, inputs=[list(v) for v in inputs])

    def capture(entered: Optional[int], exited_phv: Optional[PHV]) -> None:
        stages = tuple(
            StageOccupancy(
                stage=index,
                phv_id=phv.phv_id if phv is not None else None,
                read=tuple(phv.read) if phv is not None else None,
                write=tuple(phv.write) if phv is not None else None,
            )
            for index, phv in enumerate(pipeline._slots)  # noqa: SLF001 - recorder is a dsim companion
        )
        state = tuple(
            tuple(tuple(alu_state) for alu_state in stage_state) for stage_state in pipeline.state
        )
        recording.snapshots.append(
            TickSnapshot(
                tick=pipeline.current_tick - 1,
                stages=stages,
                state=state,
                entered=entered,
                exited=exited_phv.phv_id if exited_phv is not None else None,
            )
        )
        if exited_phv is not None:
            recording.outputs[exited_phv.phv_id] = exited_phv.snapshot()

    for index, values in enumerate(inputs):
        exited = pipeline.tick(PHV.from_values(index, values))
        capture(entered=index, exited_phv=exited)
    while pipeline.in_flight:
        exited = pipeline.tick(None)
        capture(entered=None, exited_phv=exited)
    return recording
