"""Command-line entry points.

Four console scripts mirror the paper's tooling:

* ``druzhba-dgen`` — generate a pipeline description from a hardware spec and
  machine code and write the Python source to a file (or stdout);
* ``druzhba-dsim`` — simulate a pipeline on randomly generated PHVs and print
  the output trace;
* ``druzhba-fuzz`` — run the full compiler-testing workflow (Figure 5) for a
  benchmark program, comparing the pipeline trace against its specification;
* ``druzhba-drmt`` — run dRMT dgen + dsim on a P4-14-like program.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import atoms, dgen
from .alu_dsl import grammar, parse_and_analyze
from .dsim import RMTSimulator, TrafficGenerator
from .drmt import DRMTSimulator, DrmtHardwareParams, generate_bundle
from .engine.base import ENGINE_CHOICES
from .engine.transport import TRANSPORT_CHOICES
from .errors import DruzhbaError, SimulationError
from .hardware import PipelineSpec, describe_pipeline
from .machine_code import MachineCode
from .programs import all_programs, get_program, program_names
from .testing import FuzzConfig, FuzzTester


def _load_alu(name_or_path: str, kind: str):
    """Resolve an ALU argument: a catalogue atom name or a path to a DSL file."""
    if name_or_path in atoms.atom_names():
        return atoms.get_atom(name_or_path)
    with open(name_or_path) as handle:
        return parse_and_analyze(handle.read(), name=name_or_path)


def _build_pipeline_spec(args: argparse.Namespace) -> PipelineSpec:
    return PipelineSpec(
        depth=args.depth,
        width=args.width,
        stateful_alu=_load_alu(args.stateful_alu, "stateful"),
        stateless_alu=_load_alu(args.stateless_alu, "stateless"),
        name=args.name,
    )


# ----------------------------------------------------------------------
# druzhba-dgen
# ----------------------------------------------------------------------
def dgen_main(argv: Optional[List[str]] = None) -> int:
    """Generate a pipeline description."""
    parser = argparse.ArgumentParser(
        prog="druzhba-dgen", description="Generate a Druzhba pipeline description (dgen)."
    )
    parser.add_argument("--depth", type=int, default=2, help="number of pipeline stages")
    parser.add_argument("--width", type=int, default=2, help="ALUs and PHV containers per stage")
    parser.add_argument(
        "--stateful-alu", default="if_else_raw", help="catalogue atom name or ALU DSL file"
    )
    parser.add_argument(
        "--stateless-alu", default="stateless_full", help="catalogue atom name or ALU DSL file"
    )
    parser.add_argument("--machine-code", help="machine code file ('name value' lines or JSON)")
    parser.add_argument(
        "--opt-level", type=int, default=2, choices=(0, 1, 2, 3),
        help="dgen optimisation level (3 = fused trace loop, fastest simulation)",
    )
    parser.add_argument("--name", default="pipeline")
    parser.add_argument("--output", help="write the generated source here (default: stdout)")
    parser.add_argument("--grammar", action="store_true", help="print the ALU DSL grammar and exit")
    args = parser.parse_args(argv)

    if args.grammar:
        print(grammar.describe())
        return 0

    try:
        spec = _build_pipeline_spec(args)
        machine_code = None
        if args.machine_code:
            machine_code = MachineCode.from_file(args.machine_code)
        elif args.opt_level != dgen.OPT_UNOPTIMIZED:
            machine_code = spec.passthrough_machine_code()
        description = dgen.generate(spec, machine_code, opt_level=args.opt_level)
    except DruzhbaError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    print(describe_pipeline(spec), file=sys.stderr)
    if args.output:
        description.save_source(args.output)
        print(f"pipeline description written to {args.output}", file=sys.stderr)
    else:
        print(description.source)
    return 0


# ----------------------------------------------------------------------
# druzhba-dsim
# ----------------------------------------------------------------------
def dsim_main(argv: Optional[List[str]] = None) -> int:
    """Simulate a pipeline on random PHVs."""
    parser = argparse.ArgumentParser(
        prog="druzhba-dsim", description="Simulate a Druzhba pipeline on random PHVs (dsim)."
    )
    parser.add_argument("--depth", type=int, default=2)
    parser.add_argument("--width", type=int, default=2)
    parser.add_argument("--stateful-alu", default="if_else_raw")
    parser.add_argument("--stateless-alu", default="stateless_full")
    parser.add_argument("--machine-code", help="machine code file; defaults to all-pass-through")
    parser.add_argument(
        "--opt-level", type=int, default=2, choices=(0, 1, 2, 3),
        help="dgen optimisation level (3 = fused trace loop, fastest simulation)",
    )
    parser.add_argument("--phvs", type=int, default=20, help="number of PHVs to simulate")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-value", type=int, default=1023)
    parser.add_argument("--name", default="pipeline")
    parser.add_argument(
        "--engine", default="auto", choices=ENGINE_CHOICES,
        help="execution driver (auto = fused when available, else the generic "
             "sequential driver; tick = the paper's per-tick model; sharded = "
             "partition the trace per flow and run the shards in parallel — "
             "see --shards/--workers/--shard-key)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="shard count for the sharded engine (default 4); with --engine auto, "
             "setting this enables sharding for large traces",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the sharded engine (default: min(shards, cores))",
    )
    parser.add_argument(
        "--shard-key",
        help="comma-separated PHV container indices identifying a flow (the "
             "state-indexing fields); omit for contiguous blocks, which the "
             "state-conflict check only admits for state-free workloads",
    )
    parser.add_argument(
        "--transport", default=None, choices=TRANSPORT_CHOICES,
        help="how shard data crosses the worker-pool boundary (pickle = the "
             "default pool serialization; shm = flat shared-memory buffers, "
             "falling back to pickle when the trace is not flat-packable)",
    )
    args = parser.parse_args(argv)

    try:
        spec = _build_pipeline_spec(args)
        if args.machine_code:
            machine_code = MachineCode.from_file(args.machine_code)
        else:
            machine_code = spec.passthrough_machine_code()
        description = dgen.generate(spec, machine_code, opt_level=args.opt_level)
        traffic = TrafficGenerator(
            num_containers=spec.width, seed=args.seed, max_value=args.max_value
        )
        shard_key = None
        if args.shard_key:
            try:
                shard_key = [int(container) for container in args.shard_key.split(",")]
            except ValueError:
                raise SimulationError(
                    "--shard-key takes comma-separated PHV container indices, "
                    f"got {args.shard_key!r}"
                ) from None
        simulator = RMTSimulator(
            description,
            engine=args.engine,
            shards=args.shards,
            workers=args.workers,
            shard_key=shard_key,
            transport=args.transport,
        )
        result = simulator.run_traffic(traffic, args.phvs)
    except DruzhbaError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    print(f"engine: {result.engine}", file=sys.stderr)
    print(result.output_trace.format(limit=args.phvs))
    return 0


# ----------------------------------------------------------------------
# druzhba-fuzz
# ----------------------------------------------------------------------
def fuzz_main(argv: Optional[List[str]] = None) -> int:
    """Fuzz-test a benchmark program's machine code against its specification."""
    parser = argparse.ArgumentParser(
        prog="druzhba-fuzz",
        description="Run the compiler-testing workflow (Figure 5) for a benchmark program.",
    )
    parser.add_argument(
        "--program",
        default="sampling",
        choices=program_names() + ["all"],
        help="benchmark program name, or 'all'",
    )
    parser.add_argument("--phvs", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--opt-level", type=int, default=2, choices=(0, 1, 2, 3),
        help="dgen optimisation level (3 = fused trace loop, fastest simulation)",
    )
    parser.add_argument(
        "--drop-pairs", type=int, default=0,
        help="drop this many output-mux machine-code pairs before testing (failure injection)",
    )
    parser.add_argument(
        "--engine", default="auto", choices=ENGINE_CHOICES,
        help="execution driver for the simulation leg of the workflow",
    )
    args = parser.parse_args(argv)

    programs = all_programs() if args.program == "all" else [get_program(args.program)]
    exit_code = 0
    for program in programs:
        spec = program.pipeline_spec()
        machine_code = program.machine_code()
        if args.drop_pairs:
            output_pairs = [
                name for name in machine_code if "output_mux" in name
            ][: args.drop_pairs]
            machine_code = machine_code.without(output_pairs)
        tester = FuzzTester(
            spec,
            program.specification(),
            config=FuzzConfig(
                num_phvs=args.phvs,
                seed=args.seed,
                opt_level=args.opt_level,
                engine=args.engine,
            ),
            traffic_generator=program.traffic_generator(seed=args.seed),
            initial_state=program.initial_pipeline_state(),
        )
        outcome = tester.test(machine_code)
        print(f"{program.display_name:22s} {outcome.describe()}")
        if not outcome.passed:
            exit_code = 1
    return exit_code


# ----------------------------------------------------------------------
# druzhba-drmt
# ----------------------------------------------------------------------
def drmt_main(argv: Optional[List[str]] = None) -> int:
    """Run dRMT dgen and dsim on a P4-14-like program."""
    parser = argparse.ArgumentParser(
        prog="druzhba-drmt", description="dRMT dgen + dsim on a P4-14-like program."
    )
    parser.add_argument("--p4", help="P4-14-like source file (defaults to the bundled simple router)")
    parser.add_argument("--entries", help="table-entries configuration file")
    parser.add_argument("--processors", type=int, default=2)
    parser.add_argument("--packets", type=int, default=50)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ticks-per-match", type=int, default=2)
    parser.add_argument("--ticks-per-action", type=int, default=1)
    parser.add_argument("--milp", action="store_true", help="use the MILP scheduler when available")
    parser.add_argument(
        "--engine", default="auto", choices=ENGINE_CHOICES,
        help="execution driver (auto = the generated fused run_trace when it builds, "
             "tick = the paper's per-tick processor loop; sharded = partition the "
             "packet trace per flow and run the shards in parallel)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="shard count for the sharded engine (default 4)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the sharded engine (default: min(shards, cores))",
    )
    parser.add_argument(
        "--shard-key",
        help="comma-separated packet field names identifying a flow; defaults to "
             "the fields the program's register accesses index by",
    )
    parser.add_argument(
        "--transport", default=None, choices=TRANSPORT_CHOICES,
        help="how shard data crosses the worker-pool boundary (pickle = the "
             "default pool serialization; shm = flat shared-memory buffers, "
             "falling back to pickle when the trace is not flat-packable)",
    )
    parser.add_argument(
        "--dump-fused", action="store_true",
        help="print the generated fused dRMT program source and exit",
    )
    args = parser.parse_args(argv)

    from .p4 import samples

    try:
        if args.p4:
            with open(args.p4) as handle:
                source = handle.read()
            entries = None
            if args.entries:
                with open(args.entries) as handle:
                    entries = handle.read()
        else:
            source = samples.SIMPLE_ROUTER
            entries = args.entries or samples.SIMPLE_ROUTER_ENTRIES
        hardware = DrmtHardwareParams(
            num_processors=args.processors,
            ticks_per_match=args.ticks_per_match,
            ticks_per_action=args.ticks_per_action,
        )
        bundle = generate_bundle(source, hardware, use_milp=args.milp)
        if args.dump_fused:
            print(bundle.fused_program().source)
            return 0
        print(bundle.describe())
        print(bundle.schedule.describe())
        shard_key = args.shard_key.split(",") if args.shard_key else None
        simulator = DRMTSimulator(
            bundle,
            table_entries=entries,
            engine=args.engine,
            shards=args.shards,
            workers=args.workers,
            shard_key=shard_key,
            transport=args.transport,
        )
        result = simulator.run_traffic(args.packets, seed=args.seed)
    except DruzhbaError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    print(result.describe())
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(dgen_main())
