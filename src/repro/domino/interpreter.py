"""Reference interpreter for Domino programs.

Executing a Domino program per packet is how the reproduction obtains an
executable high-level specification from the same artefact a compiler
consumes — the "program spec" box of Figure 5.  The interpreter operates on a
packet dictionary (field name → value) and a persistent state dictionary and
mirrors Domino's atomic per-packet transaction semantics.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, MutableMapping, Sequence

from ..errors import DominoSemanticError
from .ast_nodes import (
    DAssign,
    DBinaryOp,
    DExpr,
    DFieldRef,
    DIf,
    DNumber,
    DominoProgram,
    DStateRef,
    DStmt,
    DTernary,
    DUnaryOp,
)


def _apply_binary(op: str, a: int, b: int) -> int:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        return a // b if b != 0 else 0
    if op == "%":
        return a % b if b != 0 else 0
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "<=":
        return int(a <= b)
    if op == ">=":
        return int(a >= b)
    if op == "<":
        return int(a < b)
    if op == ">":
        return int(a > b)
    if op == "&&":
        return int(bool(a) and bool(b))
    if op == "||":
        return int(bool(a) or bool(b))
    raise DominoSemanticError(f"unknown binary operator {op!r}")


class DominoInterpreter:
    """Executes a Domino program one packet at a time."""

    def __init__(self, program: DominoProgram):
        self.program = program

    def initial_state(self) -> Dict[str, int]:
        """Fresh state dictionary from the program's ``state`` declarations."""
        return self.program.initial_state()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, packet: Mapping[str, int], state: MutableMapping[str, int]) -> Dict[str, int]:
        """Run the transaction on one packet.

        ``packet`` supplies the input field values; ``state`` is mutated in
        place.  The returned dictionary holds the packet's field values after
        the transaction (input fields unchanged unless assigned).
        """
        fields: Dict[str, int] = {name: int(value) for name, value in packet.items()}
        locals_env: Dict[str, int] = {}
        self._exec_stmts(self.program.body, fields, state, locals_env)
        return fields

    def run_trace(
        self, packets: Sequence[Mapping[str, int]], state: MutableMapping[str, int] | None = None
    ) -> List[Dict[str, int]]:
        """Execute a whole packet trace, returning the per-packet output fields."""
        if state is None:
            state = self.initial_state()
        return [self.execute(packet, state) for packet in packets]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _exec_stmts(
        self,
        stmts: Sequence[DStmt],
        fields: Dict[str, int],
        state: MutableMapping[str, int],
        locals_env: Dict[str, int],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, DAssign):
                value = self._eval(stmt.value, fields, state, locals_env)
                if stmt.is_field:
                    fields[stmt.target] = value
                elif stmt.target in state:
                    state[stmt.target] = value
                else:
                    locals_env[stmt.target] = value
            elif isinstance(stmt, DIf):
                taken = False
                for condition, body in stmt.branches:
                    if self._eval(condition, fields, state, locals_env):
                        self._exec_stmts(body, fields, state, locals_env)
                        taken = True
                        break
                if not taken:
                    self._exec_stmts(stmt.orelse, fields, state, locals_env)
            else:  # pragma: no cover - defensive
                raise DominoSemanticError(f"unknown statement {type(stmt).__name__}")

    def _eval(
        self,
        expr: DExpr,
        fields: Mapping[str, int],
        state: Mapping[str, int],
        locals_env: Mapping[str, int],
    ) -> int:
        if isinstance(expr, DNumber):
            return expr.value
        if isinstance(expr, DFieldRef):
            return int(fields.get(expr.name, 0))
        if isinstance(expr, DStateRef):
            if expr.name in state:
                return int(state[expr.name])
            if expr.name in locals_env:
                return int(locals_env[expr.name])
            raise DominoSemanticError(
                f"identifier {expr.name!r} read before assignment in program {self.program.name!r}"
            )
        if isinstance(expr, DUnaryOp):
            value = self._eval(expr.operand, fields, state, locals_env)
            return -value if expr.op == "-" else int(not value)
        if isinstance(expr, DBinaryOp):
            left = self._eval(expr.left, fields, state, locals_env)
            right = self._eval(expr.right, fields, state, locals_env)
            return _apply_binary(expr.op, left, right)
        if isinstance(expr, DTernary):
            if self._eval(expr.condition, fields, state, locals_env):
                return self._eval(expr.if_true, fields, state, locals_env)
            return self._eval(expr.if_false, fields, state, locals_env)
        raise DominoSemanticError(f"unknown expression {type(expr).__name__}")
