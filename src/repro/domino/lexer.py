"""Lexer for the Domino-like packet-transaction language."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from ..errors import DominoSyntaxError


class DTokenType(enum.Enum):
    """Terminals of the Domino dialect."""

    NUMBER = "NUMBER"
    IDENT = "IDENT"
    PKT = "pkt"
    STATE = "state"
    TRANSACTION = "transaction"
    IF = "if"
    ELSE = "else"
    DOT = "."
    COMMA = ","
    SEMICOLON = ";"
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    QUESTION = "?"
    COLON = ":"
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NEQ = "!="
    LE = "<="
    GE = ">="
    LT = "<"
    GT = ">"
    AND = "&&"
    OR = "||"
    NOT = "!"
    EOF = "EOF"


_KEYWORDS = {
    "pkt": DTokenType.PKT,
    "state": DTokenType.STATE,
    "transaction": DTokenType.TRANSACTION,
    "if": DTokenType.IF,
    "else": DTokenType.ELSE,
}

_TWO_CHAR = {
    "==": DTokenType.EQ,
    "!=": DTokenType.NEQ,
    "<=": DTokenType.LE,
    ">=": DTokenType.GE,
    "&&": DTokenType.AND,
    "||": DTokenType.OR,
}

_ONE_CHAR = {
    ".": DTokenType.DOT,
    ",": DTokenType.COMMA,
    ";": DTokenType.SEMICOLON,
    "{": DTokenType.LBRACE,
    "}": DTokenType.RBRACE,
    "(": DTokenType.LPAREN,
    ")": DTokenType.RPAREN,
    "?": DTokenType.QUESTION,
    ":": DTokenType.COLON,
    "=": DTokenType.ASSIGN,
    "+": DTokenType.PLUS,
    "-": DTokenType.MINUS,
    "*": DTokenType.STAR,
    "/": DTokenType.SLASH,
    "%": DTokenType.PERCENT,
    "<": DTokenType.LT,
    ">": DTokenType.GT,
    "!": DTokenType.NOT,
}


@dataclass(frozen=True)
class DToken:
    """A Domino lexeme with its 1-based source location."""

    type: DTokenType
    value: str
    line: int
    column: int


class DominoLexer:
    """Tokenises Domino source; ``//`` and ``#`` comments run to end of line."""

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> List[DToken]:
        """Return all tokens followed by an EOF token."""
        tokens = list(self._iter())
        tokens.append(DToken(DTokenType.EOF, "", self._line, self._column))
        return tokens

    def _iter(self) -> Iterator[DToken]:
        source = self._source
        while self._pos < len(source):
            char = source[self._pos]
            if char in " \t\r":
                self._advance(1)
                continue
            if char == "\n":
                self._pos += 1
                self._line += 1
                self._column = 1
                continue
            if char == "#" or source.startswith("//", self._pos):
                while self._pos < len(source) and source[self._pos] != "\n":
                    self._advance(1)
                continue
            if char.isdigit():
                yield self._number()
                continue
            if char.isalpha() or char == "_":
                yield self._identifier()
                continue
            two = source[self._pos : self._pos + 2]
            if two in _TWO_CHAR:
                yield DToken(_TWO_CHAR[two], two, self._line, self._column)
                self._advance(2)
                continue
            if char in _ONE_CHAR:
                yield DToken(_ONE_CHAR[char], char, self._line, self._column)
                self._advance(1)
                continue
            raise DominoSyntaxError(
                f"unexpected character {char!r}", line=self._line, column=self._column
            )

    def _advance(self, count: int) -> None:
        self._pos += count
        self._column += count

    def _number(self) -> DToken:
        start, line, column = self._pos, self._line, self._column
        while self._pos < len(self._source) and self._source[self._pos].isdigit():
            self._advance(1)
        return DToken(DTokenType.NUMBER, self._source[start : self._pos], line, column)

    def _identifier(self) -> DToken:
        start, line, column = self._pos, self._line, self._column
        while self._pos < len(self._source) and (
            self._source[self._pos].isalnum() or self._source[self._pos] == "_"
        ):
            self._advance(1)
        text = self._source[start : self._pos]
        return DToken(_KEYWORDS.get(text, DTokenType.IDENT), text, line, column)


def tokenize(source: str) -> List[DToken]:
    """Tokenise Domino ``source``."""
    return DominoLexer(source).tokenize()
