"""Domino-like packet-transaction frontend (the high-level language of Figure 1).

Parse packet-transaction programs, execute them per packet with the reference
interpreter, and adapt them into pipeline-testing specifications.
"""

from .analysis import analyze, parse_and_analyze
from .ast_nodes import (
    DAssign,
    DBinaryOp,
    DExpr,
    DFieldRef,
    DIf,
    DNumber,
    DominoProgram,
    DStateRef,
    DStmt,
    DTernary,
    DUnaryOp,
    StateDecl,
)
from .interpreter import DominoInterpreter
from .lexer import DominoLexer, tokenize
from .parser import DominoParser, parse
from .spec_adapter import DominoSpecification, PacketLayout

__all__ = [
    "DominoProgram",
    "DominoInterpreter",
    "DominoSpecification",
    "PacketLayout",
    "DominoLexer",
    "DominoParser",
    "parse",
    "tokenize",
    "analyze",
    "parse_and_analyze",
    "StateDecl",
    "DExpr",
    "DStmt",
    "DNumber",
    "DFieldRef",
    "DStateRef",
    "DUnaryOp",
    "DBinaryOp",
    "DTernary",
    "DAssign",
    "DIf",
]
