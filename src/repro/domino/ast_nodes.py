"""AST for the Domino-like packet-transaction language.

Domino [Sivaraman et al., SIGCOMM 2016] expresses packet processing as
*packet transactions*: blocks of imperative code that execute atomically per
packet over packet fields (``pkt.x``) and persistent switch state.  Figure 1
of the Druzhba paper shows such a program (a sampling transaction) being
compiled down to the Druzhba machine model.

The reproduction's dialect supports:

* ``state <name> = <integer>;`` declarations of persistent state,
* a single ``transaction <name> { ... }`` block (or a bare statement list),
* assignments to packet fields (``pkt.field = expr;``), state variables and
  transaction-local temporaries,
* ``if`` / ``else if`` / ``else`` statements,
* integer expressions with arithmetic (``+ - * / %``), relational
  (``== != < > <= >=``) and logical (``&& || !``) operators, and a ternary
  conditional ``cond ? a : b``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


class DExpr:
    """Base class of Domino expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class DNumber(DExpr):
    """Integer literal."""

    value: int


@dataclass(frozen=True)
class DFieldRef(DExpr):
    """A packet-field read: ``pkt.<name>``."""

    name: str


@dataclass(frozen=True)
class DStateRef(DExpr):
    """A read of a declared state variable or transaction-local temporary."""

    name: str


@dataclass(frozen=True)
class DUnaryOp(DExpr):
    """Unary negation or logical not."""

    op: str
    operand: DExpr


@dataclass(frozen=True)
class DBinaryOp(DExpr):
    """Binary arithmetic, relational or logical operation."""

    op: str
    left: DExpr
    right: DExpr


@dataclass(frozen=True)
class DTernary(DExpr):
    """``condition ? if_true : if_false``."""

    condition: DExpr
    if_true: DExpr
    if_false: DExpr


class DStmt:
    """Base class of Domino statements."""

    __slots__ = ()


@dataclass(frozen=True)
class DAssign(DStmt):
    """Assignment to a packet field (``is_field=True``) or state/local variable."""

    target: str
    value: DExpr
    is_field: bool


@dataclass(frozen=True)
class DIf(DStmt):
    """``if`` / ``else if`` / ``else`` chain."""

    branches: Tuple[Tuple[DExpr, Tuple[DStmt, ...]], ...]
    orelse: Tuple[DStmt, ...] = ()


@dataclass
class StateDecl:
    """A ``state name = value;`` declaration."""

    name: str
    initial: int


@dataclass
class DominoProgram:
    """A parsed Domino program.

    Attributes
    ----------
    name:
        Transaction name (defaults to ``"transaction"`` for bare programs).
    state_decls:
        Persistent state declarations in source order.
    body:
        Transaction body statements.
    packet_fields_read / packet_fields_written:
        Field usage sets, filled in by :mod:`repro.domino.analysis`.
    source:
        Original source text.
    """

    name: str
    state_decls: List[StateDecl]
    body: List[DStmt]
    packet_fields_read: List[str] = field(default_factory=list)
    packet_fields_written: List[str] = field(default_factory=list)
    source: str = ""

    @property
    def state_names(self) -> List[str]:
        """Names of the declared state variables, in declaration order."""
        return [decl.name for decl in self.state_decls]

    def initial_state(self) -> dict:
        """Initial value of every state variable."""
        return {decl.name: decl.initial for decl in self.state_decls}

    @property
    def packet_fields(self) -> List[str]:
        """All packet fields touched by the program (reads first, then write-only fields)."""
        fields = list(self.packet_fields_read)
        for name in self.packet_fields_written:
            if name not in fields:
                fields.append(name)
        return fields


def walk_dexpr(expr: DExpr) -> List[DExpr]:
    """Pre-order traversal of a Domino expression."""
    out: List[DExpr] = [expr]
    if isinstance(expr, DUnaryOp):
        out.extend(walk_dexpr(expr.operand))
    elif isinstance(expr, DBinaryOp):
        out.extend(walk_dexpr(expr.left))
        out.extend(walk_dexpr(expr.right))
    elif isinstance(expr, DTernary):
        out.extend(walk_dexpr(expr.condition))
        out.extend(walk_dexpr(expr.if_true))
        out.extend(walk_dexpr(expr.if_false))
    return out


def walk_dstmts(stmts) -> List[DStmt]:
    """Pre-order traversal of a Domino statement list."""
    out: List[DStmt] = []
    for stmt in stmts:
        out.append(stmt)
        if isinstance(stmt, DIf):
            for _cond, body in stmt.branches:
                out.extend(walk_dstmts(body))
            out.extend(walk_dstmts(stmt.orelse))
    return out
