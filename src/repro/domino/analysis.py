"""Semantic analysis for Domino programs.

Fills in the packet-field usage sets, checks that every referenced name is a
declared state variable, a packet field or a previously assigned
transaction-local temporary, and rejects programs that read a temporary
before writing it.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from ..errors import DominoSemanticError
from .ast_nodes import (
    DAssign,
    DBinaryOp,
    DExpr,
    DFieldRef,
    DIf,
    DominoProgram,
    DStateRef,
    DStmt,
    DTernary,
    DUnaryOp,
)


def _expr_field_reads(expr: DExpr, fields: List[str]) -> None:
    if isinstance(expr, DFieldRef):
        if expr.name not in fields:
            fields.append(expr.name)
    elif isinstance(expr, DUnaryOp):
        _expr_field_reads(expr.operand, fields)
    elif isinstance(expr, DBinaryOp):
        _expr_field_reads(expr.left, fields)
        _expr_field_reads(expr.right, fields)
    elif isinstance(expr, DTernary):
        _expr_field_reads(expr.condition, fields)
        _expr_field_reads(expr.if_true, fields)
        _expr_field_reads(expr.if_false, fields)


def _expr_name_reads(expr: DExpr, names: Set[str]) -> None:
    if isinstance(expr, DStateRef):
        names.add(expr.name)
    elif isinstance(expr, DUnaryOp):
        _expr_name_reads(expr.operand, names)
    elif isinstance(expr, DBinaryOp):
        _expr_name_reads(expr.left, names)
        _expr_name_reads(expr.right, names)
    elif isinstance(expr, DTernary):
        _expr_name_reads(expr.condition, names)
        _expr_name_reads(expr.if_true, names)
        _expr_name_reads(expr.if_false, names)


def analyze(program: DominoProgram) -> DominoProgram:
    """Validate ``program`` in place and return it with field usage populated."""
    state_names = set(program.state_names)
    if len(state_names) != len(program.state_decls):
        raise DominoSemanticError(f"program {program.name!r}: duplicate state declarations")

    fields_read: List[str] = []
    fields_written: List[str] = []
    locals_defined: Set[str] = set()

    def check(stmts: Sequence[DStmt], local: Set[str]) -> None:
        for stmt in stmts:
            if isinstance(stmt, DAssign):
                _collect_stmt_reads(stmt.value, local)
                if stmt.is_field:
                    if stmt.target not in fields_written:
                        fields_written.append(stmt.target)
                else:
                    if stmt.target not in state_names:
                        local.add(stmt.target)
                        locals_defined.add(stmt.target)
            elif isinstance(stmt, DIf):
                for condition, body in stmt.branches:
                    _collect_stmt_reads(condition, local)
                    check(body, set(local))
                check(stmt.orelse, set(local))
            else:  # pragma: no cover - defensive
                raise DominoSemanticError(f"unknown statement {type(stmt).__name__}")

    def _collect_stmt_reads(expr: DExpr, local: Set[str]) -> None:
        _expr_field_reads(expr, fields_read)
        names: Set[str] = set()
        _expr_name_reads(expr, names)
        unknown = names - state_names - local
        if unknown:
            raise DominoSemanticError(
                f"program {program.name!r}: undeclared identifier(s) {sorted(unknown)} "
                "(state variables must be declared with 'state', packet fields accessed as 'pkt.<name>')"
            )

    check(program.body, set())

    program.packet_fields_read = fields_read
    program.packet_fields_written = fields_written
    return program


def parse_and_analyze(source: str) -> DominoProgram:
    """Parse and validate Domino ``source`` in one step."""
    from .parser import parse

    return analyze(parse(source))
