"""Adapter: use a Domino program as a pipeline-testing specification.

The compiler-testing workflow (Figure 5) needs a specification that maps an
input PHV trace to an expected output PHV trace.  A Domino program talks
about named packet fields, whereas the pipeline talks about numbered PHV
containers; the :class:`PacketLayout` records which container carries which
field, and :class:`DominoSpecification` uses it to translate in both
directions around the Domino interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import SpecificationError
from ..testing.spec import Specification
from .ast_nodes import DominoProgram
from .analysis import parse_and_analyze
from .interpreter import DominoInterpreter


@dataclass
class PacketLayout:
    """Mapping between PHV containers and Domino packet fields.

    ``container_fields[i]`` is the packet field carried by container ``i`` on
    *input* (``None`` for containers the program does not read), and
    ``output_fields[i]`` the field whose post-transaction value the container
    is expected to hold on *output* (``None`` means the container is
    ignored — scratch space the compiler may use freely).
    """

    container_fields: List[Optional[str]]
    output_fields: List[Optional[str]]

    def __post_init__(self) -> None:
        if len(self.container_fields) != len(self.output_fields):
            raise SpecificationError(
                "PacketLayout input and output field lists must have the same length"
            )

    @property
    def num_containers(self) -> int:
        """Number of PHV containers covered by the layout."""
        return len(self.container_fields)

    @property
    def relevant_containers(self) -> List[int]:
        """Containers whose output the specification defines."""
        return [i for i, name in enumerate(self.output_fields) if name is not None]

    def phv_to_packet(self, phv: Sequence[int]) -> Dict[str, int]:
        """Build the Domino packet dictionary from PHV container values."""
        packet: Dict[str, int] = {}
        for index, name in enumerate(self.container_fields):
            if name is not None:
                packet[name] = int(phv[index])
        return packet

    def packet_to_phv(self, packet: Mapping[str, int], phv_in: Sequence[int]) -> List[int]:
        """Build the expected output PHV from post-transaction packet fields."""
        outputs = [int(v) for v in phv_in]
        for index, name in enumerate(self.output_fields):
            if name is not None:
                outputs[index] = int(packet.get(name, 0))
        return outputs


class DominoSpecification(Specification):
    """A :class:`Specification` backed by the Domino interpreter."""

    def __init__(self, program: DominoProgram, layout: PacketLayout):
        self.program = program
        self.layout = layout
        self.interpreter = DominoInterpreter(program)
        self.num_containers = layout.num_containers
        self.relevant_containers = layout.relevant_containers

    @classmethod
    def from_source(cls, source: str, layout: PacketLayout) -> "DominoSpecification":
        """Parse, analyse and wrap Domino ``source``."""
        return cls(parse_and_analyze(source), layout)

    def initial_state(self) -> Dict[str, int]:
        return self.interpreter.initial_state()

    def process(self, phv: Sequence[int], state: Dict[str, int]) -> List[int]:
        packet = self.layout.phv_to_packet(phv)
        result = self.interpreter.execute(packet, state)
        return self.layout.packet_to_phv(result, phv)
