"""Recursive-descent parser for the Domino-like packet-transaction language."""

from __future__ import annotations

from typing import List, Tuple

from ..errors import DominoSyntaxError
from .ast_nodes import (
    DAssign,
    DBinaryOp,
    DExpr,
    DFieldRef,
    DIf,
    DNumber,
    DominoProgram,
    DStateRef,
    DStmt,
    DTernary,
    DUnaryOp,
    StateDecl,
)
from .lexer import DToken, DTokenType, tokenize


class DominoParser:
    """Parses a token stream into a :class:`DominoProgram`."""

    def __init__(self, tokens: List[DToken], source: str = ""):
        self._tokens = tokens
        self._pos = 0
        self._source = source

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> DToken:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> DToken:
        token = self._tokens[self._pos]
        if token.type is not DTokenType.EOF:
            self._pos += 1
        return token

    def _check(self, token_type: DTokenType) -> bool:
        return self._peek().type is token_type

    def _expect(self, token_type: DTokenType, what: str) -> DToken:
        token = self._peek()
        if token.type is not token_type:
            raise DominoSyntaxError(
                f"expected {what}, found {token.value!r}", line=token.line, column=token.column
            )
        return self._advance()

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse(self) -> DominoProgram:
        """Parse state declarations followed by a transaction block or bare statements."""
        state_decls: List[StateDecl] = []
        while self._check(DTokenType.STATE):
            state_decls.append(self._parse_state_decl())

        name = "transaction"
        if self._check(DTokenType.TRANSACTION):
            self._advance()
            name = self._expect(DTokenType.IDENT, "transaction name").value
            self._expect(DTokenType.LBRACE, "'{' opening the transaction")
            body = self._parse_statements((DTokenType.RBRACE, DTokenType.EOF))
            self._expect(DTokenType.RBRACE, "'}' closing the transaction")
        else:
            body = self._parse_statements((DTokenType.EOF,))
        self._expect(DTokenType.EOF, "end of program")

        return DominoProgram(name=name, state_decls=state_decls, body=body, source=self._source)

    def _parse_state_decl(self) -> StateDecl:
        self._expect(DTokenType.STATE, "'state'")
        name = self._expect(DTokenType.IDENT, "state variable name").value
        initial = 0
        if self._check(DTokenType.ASSIGN):
            self._advance()
            negative = False
            if self._check(DTokenType.MINUS):
                self._advance()
                negative = True
            value_token = self._expect(DTokenType.NUMBER, "initial state value")
            initial = -int(value_token.value) if negative else int(value_token.value)
        self._expect(DTokenType.SEMICOLON, "';' after state declaration")
        return StateDecl(name=name, initial=initial)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _parse_statements(self, stop: Tuple[DTokenType, ...]) -> List[DStmt]:
        statements: List[DStmt] = []
        while self._peek().type not in stop:
            statements.append(self._parse_statement())
        return statements

    def _parse_statement(self) -> DStmt:
        if self._check(DTokenType.IF):
            return self._parse_if()
        if self._check(DTokenType.PKT):
            self._advance()
            self._expect(DTokenType.DOT, "'.' after 'pkt'")
            field_name = self._expect(DTokenType.IDENT, "packet field name").value
            self._expect(DTokenType.ASSIGN, "'=' in packet-field assignment")
            value = self._parse_expr()
            self._expect(DTokenType.SEMICOLON, "';' after assignment")
            return DAssign(field_name, value, is_field=True)
        target = self._expect(DTokenType.IDENT, "assignment target").value
        self._expect(DTokenType.ASSIGN, "'=' in assignment")
        value = self._parse_expr()
        self._expect(DTokenType.SEMICOLON, "';' after assignment")
        return DAssign(target, value, is_field=False)

    def _parse_if(self) -> DIf:
        self._expect(DTokenType.IF, "'if'")
        branches: List[Tuple[DExpr, Tuple[DStmt, ...]]] = []
        branches.append((self._parse_parenthesised(), tuple(self._parse_block())))
        orelse: Tuple[DStmt, ...] = ()
        while self._check(DTokenType.ELSE):
            self._advance()
            if self._check(DTokenType.IF):
                self._advance()
                branches.append((self._parse_parenthesised(), tuple(self._parse_block())))
                continue
            orelse = tuple(self._parse_block())
            break
        return DIf(tuple(branches), orelse)

    def _parse_parenthesised(self) -> DExpr:
        self._expect(DTokenType.LPAREN, "'(' before condition")
        expr = self._parse_expr()
        self._expect(DTokenType.RPAREN, "')' after condition")
        return expr

    def _parse_block(self) -> List[DStmt]:
        self._expect(DTokenType.LBRACE, "'{' opening a block")
        statements = self._parse_statements((DTokenType.RBRACE, DTokenType.EOF))
        self._expect(DTokenType.RBRACE, "'}' closing a block")
        return statements

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _parse_expr(self) -> DExpr:
        return self._parse_ternary()

    def _parse_ternary(self) -> DExpr:
        condition = self._parse_or()
        if self._check(DTokenType.QUESTION):
            self._advance()
            if_true = self._parse_expr()
            self._expect(DTokenType.COLON, "':' in ternary expression")
            if_false = self._parse_expr()
            return DTernary(condition, if_true, if_false)
        return condition

    def _parse_or(self) -> DExpr:
        expr = self._parse_and()
        while self._check(DTokenType.OR):
            self._advance()
            expr = DBinaryOp("||", expr, self._parse_and())
        return expr

    def _parse_and(self) -> DExpr:
        expr = self._parse_relational()
        while self._check(DTokenType.AND):
            self._advance()
            expr = DBinaryOp("&&", expr, self._parse_relational())
        return expr

    _REL = {
        DTokenType.EQ: "==",
        DTokenType.NEQ: "!=",
        DTokenType.LE: "<=",
        DTokenType.GE: ">=",
        DTokenType.LT: "<",
        DTokenType.GT: ">",
    }

    def _parse_relational(self) -> DExpr:
        expr = self._parse_additive()
        if self._peek().type in self._REL:
            op = self._advance()
            expr = DBinaryOp(self._REL[op.type], expr, self._parse_additive())
        return expr

    def _parse_additive(self) -> DExpr:
        expr = self._parse_multiplicative()
        while self._peek().type in (DTokenType.PLUS, DTokenType.MINUS):
            op = self._advance()
            expr = DBinaryOp(op.value, expr, self._parse_multiplicative())
        return expr

    def _parse_multiplicative(self) -> DExpr:
        expr = self._parse_unary()
        while self._peek().type in (DTokenType.STAR, DTokenType.SLASH, DTokenType.PERCENT):
            op = self._advance()
            expr = DBinaryOp(op.value, expr, self._parse_unary())
        return expr

    def _parse_unary(self) -> DExpr:
        if self._peek().type in (DTokenType.MINUS, DTokenType.NOT):
            op = self._advance()
            return DUnaryOp(op.value, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> DExpr:
        token = self._peek()
        if token.type is DTokenType.NUMBER:
            self._advance()
            return DNumber(int(token.value))
        if token.type is DTokenType.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(DTokenType.RPAREN, "')'")
            return expr
        if token.type is DTokenType.PKT:
            self._advance()
            self._expect(DTokenType.DOT, "'.' after 'pkt'")
            field_name = self._expect(DTokenType.IDENT, "packet field name").value
            return DFieldRef(field_name)
        if token.type is DTokenType.IDENT:
            self._advance()
            return DStateRef(token.value)
        raise DominoSyntaxError(
            f"unexpected token {token.value!r} in expression", line=token.line, column=token.column
        )


def parse(source: str) -> DominoProgram:
    """Parse Domino ``source`` into an (un-analysed) program."""
    return DominoParser(tokenize(source), source=source).parse()
