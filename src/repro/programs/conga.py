"""CONGA (Table 1: pipeline 1x5, ``pair``).

CONGA's leaf switches track, per destination, the uplink path with the lowest
congestion metric.  The data-plane kernel is a conditional pairwise update:
when a packet advertises a path whose utilisation is lower than the best seen
so far, both the best-utilisation value and the best-path identifier are
replaced.  The two values live in the two state variables of a ``pair`` atom.

PHV layout (width 5):

====  ====================  =====================================
container  input             output
====  ====================  =====================================
0      path identifier       unchanged
1      path utilisation      unchanged
2      (unused)              best utilisation *before* this packet
3, 4   (unused)              unchanged
====  ====================  =====================================
"""

from __future__ import annotations

from typing import Dict, List

from ..chipmunk.allocation import MachineCodeBuilder
from ..dsim.traffic import choice_field
from ..machine_code import naming
from .base import BenchmarkProgram

#: Initial best utilisation: worse than any advertised value (10-bit inputs).
INITIAL_BEST_UTIL = (1 << 10) - 1

DOMINO_SOURCE = """
state best_util = 1023;
state best_path = 0;

transaction conga {
    pkt.best_util_out = best_util;
    if (best_util > pkt.util) {
        best_util = pkt.util;
        best_path = pkt.path_id;
    }
}
"""


def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
    """Reference behaviour: keep the minimum-utilisation path."""
    outputs = list(phv)
    outputs[2] = state["best_util"]
    if state["best_util"] > phv[1]:
        state["best_util"] = phv[1]
        state["best_path"] = phv[0]
    return outputs


def build(builder: MachineCodeBuilder) -> None:
    """Place the CONGA best-path update onto the pair atom at stage 0."""
    builder.configure_pair(
        stage=0,
        slot=0,
        cond0=(0, ">", ("pkt", 1)),  # best_util > pkt.util
        cond1=None,
        combine="&&",
        then_updates=(
            (("const", 0), "+", ("pkt", 1)),  # best_util = pkt.util
            (("const", 0), "+", ("pkt", 0)),  # best_path = pkt.path_id
        ),
        else_updates=(
            (("state", 0), "+", ("const", 0)),
            (("state", 1), "+", ("const", 0)),
        ),
        input_containers=[0, 1],
    )
    builder.route_output(stage=0, container=2, kind=naming.STATEFUL, slot=0)


PROGRAM = BenchmarkProgram(
    name="conga",
    display_name="CONGA",
    depth=1,
    width=5,
    stateful_atom="pair",
    description=(
        "CONGA-style best-path tracking: keep the (utilisation, path id) pair with the "
        "lowest advertised utilisation, exposing the previous best utilisation per packet."
    ),
    spec_function=spec,
    build_machine_code=build,
    state_template={"best_util": INITIAL_BEST_UTIL, "best_path": 0},
    relevant_containers=[2],
    initial_stateful_values={(0, 0): [INITIAL_BEST_UTIL, 0]},
    field_generators=[
        choice_field(list(range(1, 9))),  # path identifiers 1..8
        None,                             # utilisation: uniform
        None,
        None,
        None,
    ],
    domino_source=DOMINO_SOURCE,
)
