"""BLUE (decrease) (Table 1: pipeline 4x2, ``sub``).

The decrease half of BLUE: when the link is idle (modelled as one event per
packet of this workload), the marking probability shrinks by ``DELTA2`` as
long as it is still positive.  The single accumulator lives in a ``sub``
atom, whose machine-code-selected arithmetic operator supplies the
subtraction.

PHV layout (width 2):

====  =====================  =====================================
container  input              output
====  =====================  =====================================
0      event timestamp        unchanged
1      (unused)               ``p_mark`` *before* this event
====  =====================  =====================================
"""

from __future__ import annotations

from typing import Dict, List

from ..chipmunk.allocation import MachineCodeBuilder
from ..machine_code import naming
from .base import BenchmarkProgram

#: Marking-probability decrement applied per idle event.
DELTA2 = 10
#: Initial scaled marking probability.
INITIAL_P_MARK = 500

DOMINO_SOURCE = """
state p_mark = 500;

transaction blue_decrease {
    pkt.p_mark_out = p_mark;
    if (p_mark > 0) {
        p_mark = p_mark - 10;
    }
}
"""


def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
    """Reference behaviour: decrease the marking probability while it stays positive."""
    outputs = list(phv)
    outputs[1] = state["p_mark"]
    if state["p_mark"] > 0:
        state["p_mark"] = state["p_mark"] - DELTA2
    return outputs


def build(builder: MachineCodeBuilder) -> None:
    """Place the BLUE decrease update onto the sub atom at stage 0."""
    builder.configure_sub(
        stage=0,
        slot=0,
        cond=(">", True, ("const", 0)),        # p_mark > 0
        then=("-", True, ("const", DELTA2)),   # p_mark -= DELTA2
        els=("+", True, ("const", 0)),         # unchanged
        input_containers=[0, 0],
    )
    builder.route_output(stage=0, container=1, kind=naming.STATEFUL, slot=0)


PROGRAM = BenchmarkProgram(
    name="blue_decrease",
    display_name="BLUE (decrease)",
    depth=4,
    width=2,
    stateful_atom="sub",
    description=(
        "Integer rendition of BLUE's marking-probability decrease: subtract a fixed step "
        "per idle event while the probability remains positive."
    ),
    spec_function=spec,
    build_machine_code=build,
    state_template={"p_mark": INITIAL_P_MARK},
    relevant_containers=[1],
    initial_stateful_values={(0, 0): [INITIAL_P_MARK]},
    domino_source=DOMINO_SOURCE,
)
