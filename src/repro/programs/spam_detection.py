"""Spam detection (Table 1: pipeline 1x1, ``pair``).

The SNAP spam-detection example accumulates a per-sender spam score and a
message count; a control-plane policy later thresholds the totals.  As with
the heavy-hitter program, the data-plane part reduces to two accumulators in
a ``pair`` atom.

PHV layout (width 1):

====  ====================  =====================================
container  input             output
====  ====================  =====================================
0      per-message score     accumulated score *before* this message
====  ====================  =====================================
"""

from __future__ import annotations

from typing import Dict, List

from ..chipmunk.allocation import MachineCodeBuilder
from ..machine_code import naming
from .base import BenchmarkProgram

DOMINO_SOURCE = """
state score = 0;
state messages = 0;

transaction spam_detection {
    pkt.score_out = score;
    score = score + pkt.score;
    messages = messages + 1;
}
"""


def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
    """Reference behaviour: accumulate score and message count, expose the old score."""
    old_score = state["score"]
    state["score"] = state["score"] + phv[0]
    state["messages"] = state["messages"] + 1
    return [old_score]


def build(builder: MachineCodeBuilder) -> None:
    """Place the spam-score accumulators onto the 1x1 pipeline's pair atom."""
    builder.configure_pair(
        stage=0,
        slot=0,
        cond0=None,
        cond1=None,
        combine="&&",
        then_updates=(
            (("state", 0), "+", ("pkt", 0)),   # score += pkt.score
            (("state", 1), "+", ("const", 1)),  # messages += 1
        ),
        else_updates=(
            (("state", 0), "+", ("const", 0)),
            (("state", 1), "+", ("const", 0)),
        ),
        input_containers=[0, 0],
    )
    builder.route_output(stage=0, container=0, kind=naming.STATEFUL, slot=0)


PROGRAM = BenchmarkProgram(
    name="spam_detection",
    display_name="Spam detection",
    depth=1,
    width=1,
    stateful_atom="pair",
    description=(
        "SNAP spam-detection accumulators: total spam score and message count per sender, "
        "exposing the pre-update score in the output trace."
    ),
    spec_function=spec,
    build_machine_code=build,
    state_template={"score": 0, "messages": 0},
    relevant_containers=[0],
    traffic_max_value=255,
    domino_source=DOMINO_SOURCE,
)
