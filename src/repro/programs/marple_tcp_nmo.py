"""Marple TCP non-monotonic offset (Table 1: pipeline 3x2, ``pred_raw``).

Marple's TCP NMO query counts packets whose sequence number is not monotone,
i.e. arrives below the highest sequence number seen so far (a sign of
reordering or retransmission).  Three stages are used: the first maintains
the maximum sequence number, the second derives the per-packet
out-of-order flag, and the third accumulates the out-of-order count.

PHV layout (width 2):

====  =====================  =====================================
container  input              output
====  =====================  =====================================
0      sequence number        out-of-order count *before* this packet
1      (unused)               1 when this packet is out of order
====  =====================  =====================================
"""

from __future__ import annotations

from typing import Dict, List

from ..chipmunk.allocation import MachineCodeBuilder
from ..machine_code import naming
from .base import BenchmarkProgram

DOMINO_SOURCE = """
state maxseq = 0;
state ooo_count = 0;

transaction marple_tcp_nmo {
    if (pkt.seq < maxseq) {
        pkt.ooo = 1;
    } else {
        pkt.ooo = 0;
    }
    pkt.count_out = ooo_count;
    if (maxseq < pkt.seq) {
        maxseq = pkt.seq;
    }
    if (pkt.ooo > 0) {
        ooo_count = ooo_count + 1;
    }
}
"""


def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
    """Reference behaviour: flag and count non-monotonic sequence numbers."""
    seq = phv[0]
    flag = 1 if seq < state["maxseq"] else 0
    old_count = state["ooo_count"]
    if state["maxseq"] < seq:
        state["maxseq"] = seq
    if flag:
        state["ooo_count"] = state["ooo_count"] + 1
    return [old_count, flag]


def build(builder: MachineCodeBuilder) -> None:
    """Place the TCP NMO query onto the 3x2 pipeline."""
    # Stage 0: running maximum of the sequence number; expose the previous maximum.
    builder.configure_pred_raw(
        stage=0,
        slot=0,
        cond=("<", True, ("pkt", 0)),     # maxseq < seq
        update=("+", False, ("pkt", 0)),  # maxseq = seq
        input_containers=[0, 0],
    )
    builder.route_output(stage=0, container=1, kind=naming.STATEFUL, slot=0)
    # Stage 1: out-of-order flag = (seq < previous maximum).
    builder.configure_stateless_full(
        stage=1,
        slot=0,
        mode="rel",
        op="<",
        a=("pkt", 0),
        b=("pkt", 1),
        input_containers=[0, 1],
    )
    builder.route_output(stage=1, container=1, kind=naming.STATELESS, slot=0)
    # Stage 2: count flagged packets; expose the previous count.
    builder.configure_pred_raw(
        stage=2,
        slot=0,
        cond=("<", False, ("pkt", 0)),     # 0 < flag
        update=("+", True, ("const", 1)),  # ooo_count += 1
        input_containers=[1, 1],
    )
    builder.route_output(stage=2, container=0, kind=naming.STATEFUL, slot=0)


PROGRAM = BenchmarkProgram(
    name="marple_tcp_nmo",
    display_name="Marple TCP NMO",
    depth=3,
    width=2,
    stateful_atom="pred_raw",
    description=(
        "Marple's TCP non-monotonic-offset query: track the maximum sequence number, "
        "flag packets arriving below it and count how many such packets were seen."
    ),
    spec_function=spec,
    build_machine_code=build,
    state_template={"maxseq": 0, "ooo_count": 0},
    relevant_containers=[0, 1],
    domino_source=DOMINO_SOURCE,
)
