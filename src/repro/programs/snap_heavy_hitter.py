"""SNAP heavy hitter (Table 1: pipeline 1x1, ``pair``).

The SNAP heavy-hitter monitor keeps per-traffic-aggregate packet and byte
counters.  Druzhba models a single aggregate (there are no match tables in
the RMT instruction-set model), so the program maintains one packet counter
and one byte counter in the two state variables of a ``pair`` atom and
exposes the packet count in the output trace.

PHV layout (width 1):

====  =================  ======================================
container  input          output
====  =================  ======================================
0      packet length      packet count *before* this packet
====  =================  ======================================
"""

from __future__ import annotations

from typing import Dict, List

from ..chipmunk.allocation import MachineCodeBuilder
from ..machine_code import naming
from .base import BenchmarkProgram

DOMINO_SOURCE = """
state pkts = 0;
state bytes = 0;

transaction snap_heavy_hitter {
    pkt.count_out = pkts;
    pkts = pkts + 1;
    bytes = bytes + pkt.len;
}
"""


def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
    """Reference behaviour: count packets and bytes, expose the old packet count."""
    old_count = state["pkts"]
    state["pkts"] = state["pkts"] + 1
    state["bytes"] = state["bytes"] + phv[0]
    return [old_count]


def build(builder: MachineCodeBuilder) -> None:
    """Place the heavy-hitter counters onto the 1x1 pipeline's pair atom."""
    builder.configure_pair(
        stage=0,
        slot=0,
        cond0=None,
        cond1=None,
        combine="&&",
        then_updates=(
            (("state", 0), "+", ("const", 1)),  # pkts += 1
            (("state", 1), "+", ("pkt", 0)),    # bytes += len
        ),
        else_updates=(
            (("state", 0), "+", ("const", 0)),
            (("state", 1), "+", ("const", 0)),
        ),
        input_containers=[0, 0],
    )
    builder.route_output(stage=0, container=0, kind=naming.STATEFUL, slot=0)


PROGRAM = BenchmarkProgram(
    name="snap_heavy_hitter",
    display_name="SNAP heavy hitter",
    depth=1,
    width=1,
    stateful_atom="pair",
    description=(
        "Packet and byte counters for a traffic aggregate (SNAP's heavy-hitter monitor), "
        "held in the two state variables of a pair atom; the packet count before the "
        "current packet is written into the output trace."
    ),
    spec_function=spec,
    build_machine_code=build,
    state_template={"pkts": 0, "bytes": 0},
    relevant_containers=[0],
    traffic_max_value=1500,
    domino_source=DOMINO_SOURCE,
)
