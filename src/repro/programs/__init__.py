"""The 12 packet-processing programs of the paper's evaluation (Table 1).

Every program bundles the pipeline dimensions and stateful atom reported in
Table 1, an executable high-level specification, the machine code a compiler
targeting Druzhba produces for it, the workload's traffic model and any
non-zero initial state.  ``TABLE1_ORDER`` preserves the row order of the
paper's table.
"""

from typing import Dict, List

from ..errors import DruzhbaError
from .base import BenchmarkProgram
from . import (
    blue_decrease,
    blue_increase,
    conga,
    flowlets,
    learn_filter,
    marple_new_flow,
    marple_tcp_nmo,
    rcp,
    sampling,
    snap_heavy_hitter,
    spam_detection,
    stateful_firewall,
)

#: Row order of Table 1 in the paper.
TABLE1_ORDER: List[str] = [
    "blue_decrease",
    "blue_increase",
    "sampling",
    "marple_new_flow",
    "marple_tcp_nmo",
    "snap_heavy_hitter",
    "stateful_firewall",
    "flowlets",
    "learn_filter",
    "rcp",
    "conga",
    "spam_detection",
]

_REGISTRY: Dict[str, BenchmarkProgram] = {
    module.PROGRAM.name: module.PROGRAM
    for module in (
        blue_decrease,
        blue_increase,
        sampling,
        marple_new_flow,
        marple_tcp_nmo,
        snap_heavy_hitter,
        stateful_firewall,
        flowlets,
        learn_filter,
        rcp,
        conga,
        spam_detection,
    )
}


def program_names() -> List[str]:
    """All benchmark program names, in Table 1 row order."""
    return list(TABLE1_ORDER)


def get_program(name: str) -> BenchmarkProgram:
    """Look up a benchmark program by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise DruzhbaError(
            f"unknown benchmark program {name!r}; known programs: {', '.join(TABLE1_ORDER)}"
        ) from None


def all_programs() -> List[BenchmarkProgram]:
    """Every benchmark program, in Table 1 row order."""
    return [_REGISTRY[name] for name in TABLE1_ORDER]


__all__ = [
    "BenchmarkProgram",
    "TABLE1_ORDER",
    "program_names",
    "get_program",
    "all_programs",
]
