"""Sampling (Table 1: pipeline 2x1, ``if_else_raw``).

Packet sampling from the Domino paper: a counter is incremented per packet
and every 10th packet is marked as sampled (the counter then wraps to zero).
This is also the example program of Figure 1 of the Druzhba paper.

PHV layout (width 1):

====  =========================  =================================
container  input                  output
====  =========================  =================================
0      (unused)                   ``pkt.sample`` — 1 on every 10th packet
====  =========================  =================================

Placement: stage 0's stateful ``if_else_raw`` maintains the counter and
forwards its *old* value; stage 1's stateless ALU compares that old value
against 9 to produce the sample flag.
"""

from __future__ import annotations

from typing import Dict, List

from ..chipmunk.allocation import MachineCodeBuilder
from ..machine_code import naming
from .base import BenchmarkProgram

SAMPLE_EVERY = 10

DOMINO_SOURCE = """
state count = 0;

transaction sampling {
    if (count == 9) {
        pkt.sample = 1;
        count = 0;
    } else {
        pkt.sample = 0;
        count = count + 1;
    }
}
"""


def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
    """Reference behaviour: mark every ``SAMPLE_EVERY``-th packet."""
    old_count = state["count"]
    if state["count"] == SAMPLE_EVERY - 1:
        state["count"] = 0
    else:
        state["count"] = state["count"] + 1
    return [1 if old_count == SAMPLE_EVERY - 1 else 0]


def build(builder: MachineCodeBuilder) -> None:
    """Place the sampling transaction onto the 2x1 pipeline."""
    # Stage 0: counter in the stateful ALU; wrap at SAMPLE_EVERY - 1.
    builder.configure_if_else_raw(
        stage=0,
        slot=0,
        cond=("==", True, ("const", SAMPLE_EVERY - 1)),
        then=(False, ("const", 0)),
        els=(True, ("const", 1)),
        input_containers=[0, 0],
    )
    builder.route_output(stage=0, container=0, kind=naming.STATEFUL, slot=0)
    # Stage 1: sample flag = (old counter == SAMPLE_EVERY - 1).
    builder.configure_stateless_full(
        stage=1,
        slot=0,
        mode="rel",
        op="==",
        a=("pkt", 0),
        b=("const", SAMPLE_EVERY - 1),
        input_containers=[0, 0],
    )
    builder.route_output(stage=1, container=0, kind=naming.STATELESS, slot=0)


PROGRAM = BenchmarkProgram(
    name="sampling",
    display_name="Sampling",
    depth=2,
    width=1,
    stateful_atom="if_else_raw",
    description=(
        "Per-packet counter that marks every 10th packet as sampled and wraps to zero "
        "(the Domino-paper sampling transaction; the running example of Figure 1)."
    ),
    spec_function=spec,
    build_machine_code=build,
    state_template={"count": 0},
    relevant_containers=[0],
    domino_source=DOMINO_SOURCE,
)
