"""Stateful firewall (Table 1: pipeline 4x5, ``pred_raw``).

The SNAP stateful-firewall example admits inbound traffic only after the
protected host has sent outbound traffic.  Without match tables the Druzhba
rendition protects a single host pair: a one-bit "outbound seen" flag is set
by outbound packets, and a packet is admitted when it is outbound itself or
the flag was already set.

PHV layout (width 5):

====  ==========================  =====================================
container  input                   output
====  ==========================  =====================================
0      direction (0 out, 1 in)     unchanged
1      (unused)                    unchanged
2      (unused)                    "outbound seen" flag *before* packet
3      (unused)                    outbound-flag + previous seen flag
4      (unused)                    1 when the packet is admitted
====  ==========================  =====================================
"""

from __future__ import annotations

from typing import Dict, List

from ..chipmunk.allocation import MachineCodeBuilder
from ..dsim.traffic import choice_field
from ..machine_code import naming
from .base import BenchmarkProgram

DOMINO_SOURCE = """
state seen = 0;

transaction stateful_firewall {
    pkt.seen_out = seen;
    outbound = pkt.direction == 0;
    if (outbound || seen > 0) {
        pkt.allowed = 1;
    } else {
        pkt.allowed = 0;
    }
    if (outbound) {
        seen = 1;
    }
}
"""


def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
    """Reference behaviour: admit outbound packets and inbound packets after contact."""
    outputs = list(phv)
    direction = phv[0]
    old_seen = state["seen"]
    if direction == 0:
        state["seen"] = 1
    outbound = 1 if direction == 0 else 0
    outputs[2] = old_seen
    outputs[3] = outbound + old_seen
    outputs[4] = 1 if (outbound + old_seen) > 0 else 0
    return outputs


def build(builder: MachineCodeBuilder) -> None:
    """Place the stateful firewall onto the 4x5 pipeline."""
    # Stage 0: record outbound contact; expose the previous flag value.
    builder.configure_pred_raw(
        stage=0,
        slot=0,
        cond=("==", False, ("pkt", 0)),     # 0 == direction (outbound)
        update=("+", False, ("const", 1)),  # seen = 1
        input_containers=[0, 0],
    )
    builder.route_output(stage=0, container=2, kind=naming.STATEFUL, slot=0)
    # Stage 1: outbound flag = (direction == 0).
    builder.configure_stateless_full(
        stage=1,
        slot=0,
        mode="rel",
        op="==",
        a=("pkt", 0),
        b=("const", 0),
        input_containers=[0, 0],
    )
    builder.route_output(stage=1, container=3, kind=naming.STATELESS, slot=0)
    # Stage 2: admission score = outbound flag + previous seen flag.
    builder.configure_stateless_full(
        stage=2,
        slot=0,
        mode="arith",
        op="+",
        a=("pkt", 0),
        b=("pkt", 1),
        input_containers=[3, 2],
    )
    builder.route_output(stage=2, container=3, kind=naming.STATELESS, slot=0)
    # Stage 3: admitted = (score > 0).
    builder.configure_stateless_full(
        stage=3,
        slot=0,
        mode="rel",
        op=">",
        a=("pkt", 0),
        b=("const", 0),
        input_containers=[3, 3],
    )
    builder.route_output(stage=3, container=4, kind=naming.STATELESS, slot=0)


PROGRAM = BenchmarkProgram(
    name="stateful_firewall",
    display_name="Stateful firewall",
    depth=4,
    width=5,
    stateful_atom="pred_raw",
    description=(
        "SNAP stateful firewall for a single host pair: outbound packets set a contact "
        "flag; a packet is admitted when it is outbound or contact was already recorded."
    ),
    spec_function=spec,
    build_machine_code=build,
    state_template={"seen": 0},
    relevant_containers=[2, 3, 4],
    field_generators=[choice_field([0, 1]), None, None, None, None],
    domino_source=DOMINO_SOURCE,
)
