"""RCP (Table 1: pipeline 3x3, ``pred_raw``).

The Rate Control Protocol's switch-side computation maintains three running
aggregates per control interval: the bytes of traffic seen, the sum of RTTs
carried by packets whose RTT is below a cap, and the number of such packets.

PHV layout (width 3):

====  =====================  =====================================
container  input              output
====  =====================  =====================================
0      packet size            RTT sum *before* this packet
1      packet RTT             RTT-sample count *before* this packet
2      (unused)               1 when the packet's RTT is below the cap
====  =====================  =====================================
"""

from __future__ import annotations

from typing import Dict, List

from ..chipmunk.allocation import MachineCodeBuilder
from ..machine_code import naming
from .base import BenchmarkProgram

#: RTT cap above which samples are ignored (the paper's MAX_ALLOWABLE_RTT).
MAX_ALLOWABLE_RTT = 500

DOMINO_SOURCE = """
state input_traffic_bytes = 0;
state sum_rtt = 0;
state num_pkts_with_rtt = 0;

transaction rcp {
    input_traffic_bytes = input_traffic_bytes + pkt.size;
    pkt.sum_out = sum_rtt;
    pkt.num_out = num_pkts_with_rtt;
    if (pkt.rtt < 500) {
        pkt.sampled = 1;
        sum_rtt = sum_rtt + pkt.rtt;
        num_pkts_with_rtt = num_pkts_with_rtt + 1;
    } else {
        pkt.sampled = 0;
    }
}
"""


def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
    """Reference behaviour: RCP's per-interval aggregates."""
    size, rtt = phv[0], phv[1]
    flag = 1 if rtt < MAX_ALLOWABLE_RTT else 0
    old_sum = state["sum_rtt"]
    old_num = state["num_pkts_with_rtt"]
    state["input_traffic_bytes"] = state["input_traffic_bytes"] + size
    if flag:
        state["sum_rtt"] = state["sum_rtt"] + rtt
        state["num_pkts_with_rtt"] = state["num_pkts_with_rtt"] + 1
    return [old_sum, old_num, flag]


def build(builder: MachineCodeBuilder) -> None:
    """Place the RCP aggregates onto the 3x3 pipeline."""
    # Stage 0, stateless slot 0: RTT-below-cap flag.
    builder.configure_stateless_full(
        stage=0,
        slot=0,
        mode="rel",
        op="<",
        a=("pkt", 0),
        b=("const", MAX_ALLOWABLE_RTT),
        input_containers=[1, 1],
    )
    builder.route_output(stage=0, container=2, kind=naming.STATELESS, slot=0)
    # Stage 0, stateful slot 1: byte counter (state only; not routed to a container).
    builder.configure_pred_raw(
        stage=0,
        slot=1,
        cond=(">=", False, ("const", 0)),  # 0 >= 0: always true
        update=("+", True, ("pkt", 0)),    # bytes += size
        input_containers=[0, 0],
    )
    # Stage 1, stateful slot 0: RTT sum over below-cap packets; expose the previous sum.
    builder.configure_pred_raw(
        stage=1,
        slot=0,
        cond=("<", False, ("pkt", 0)),   # 0 < flag
        update=("+", True, ("pkt", 1)),  # sum_rtt += rtt
        input_containers=[2, 1],
    )
    builder.route_output(stage=1, container=0, kind=naming.STATEFUL, slot=0)
    # Stage 2, stateful slot 0: count of below-cap packets; expose the previous count.
    builder.configure_pred_raw(
        stage=2,
        slot=0,
        cond=("<", False, ("pkt", 0)),     # 0 < flag
        update=("+", True, ("const", 1)),  # num += 1
        input_containers=[2, 2],
    )
    builder.route_output(stage=2, container=1, kind=naming.STATEFUL, slot=0)


PROGRAM = BenchmarkProgram(
    name="rcp",
    display_name="RCP",
    depth=3,
    width=3,
    stateful_atom="pred_raw",
    description=(
        "RCP switch-side aggregates: total traffic bytes, the sum of RTTs below a cap and "
        "the number of packets contributing to that sum."
    ),
    spec_function=spec,
    build_machine_code=build,
    state_template={"input_traffic_bytes": 0, "sum_rtt": 0, "num_pkts_with_rtt": 0},
    relevant_containers=[0, 1, 2],
    domino_source=DOMINO_SOURCE,
)
