"""Case-study harness (paper §5.2).

The paper validates "over 120 Chipmunk machine code programs" through Druzhba
and reports 8 failures: 2 caused by missing machine-code pairs for the
output multiplexers and 6 caused by machine code that only satisfied a
limited range of container values (synthesis trained on narrow inputs).

This harness rebuilds a corpus of comparable shape:

* **correct programs** — the 12 Table-1 programs plus four parametric
  families (sampling periods, accumulator increments, comparison thresholds
  and BLUE decrements) from :mod:`repro.programs.variants`, each with machine
  code produced by the grid compiler and an independent specification;
* **injected failures** — 2 corpus members with their output-multiplexer
  pairs removed, and 6 threshold programs whose machine code uses a constant
  capped at 100 while the specification's threshold lies above it.

Every corpus member is fuzzed over the full 10-bit input range and the
outcomes are aggregated into a :class:`CampaignSummary`, which the benchmark
and the example print next to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..machine_code.pairs import MachineCode
from ..testing.fuzzer import FuzzConfig, FuzzTester
from ..testing.report import CampaignSummary, FailureClass, FuzzOutcome
from . import all_programs
from .base import BenchmarkProgram
from .variants import (
    make_accumulator_variant,
    make_blue_decrease_variant,
    make_sampling_variant,
    make_threshold_variant,
)

#: Specification thresholds of the six injected value-range failures; the
#: machine code for each is built with the constant capped at 100.
VALUE_RANGE_THRESHOLDS = (150, 200, 300, 400, 500, 600)
#: Constant the "under-synthesised" machine code actually uses.
VALUE_RANGE_CAP = 100


@dataclass
class CorpusEntry:
    """One machine-code program of the case-study corpus."""

    program: BenchmarkProgram
    machine_code: MachineCode
    expected: FailureClass
    family: str


@dataclass
class CaseStudyResult:
    """Outcome of one full case-study campaign."""

    summary: CampaignSummary
    entries: List[CorpusEntry]
    outcomes: List[FuzzOutcome]
    per_family: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def total_programs(self) -> int:
        """Corpus size (the paper's "over 120 machine code programs")."""
        return len(self.entries)

    def expected_matches_observed(self) -> bool:
        """True when every program's observed class equals its expected class."""
        return all(
            outcome.failure_class is entry.expected
            for entry, outcome in zip(self.entries, self.outcomes)
        )

    def table(self) -> List[Dict[str, object]]:
        """Rows comparing the paper's counts with the reproduction's counts."""
        observed_missing = self.summary.count(FailureClass.MISSING_MACHINE_CODE)
        observed_range = self.summary.count(FailureClass.VALUE_RANGE)
        return [
            {
                "quantity": "machine code programs tested",
                "paper": "over 120",
                "reproduced": self.total_programs,
            },
            {
                "quantity": "programs validated correct",
                "paper": "over 120",
                "reproduced": self.summary.passed,
            },
            {"quantity": "total failures", "paper": 8, "reproduced": self.summary.failed},
            {
                "quantity": "failures: missing machine code pairs (output muxes)",
                "paper": 2,
                "reproduced": observed_missing,
            },
            {
                "quantity": "failures: limited value range (values over 100)",
                "paper": 6,
                "reproduced": observed_range,
            },
        ]


def build_corpus() -> List[CorpusEntry]:
    """Assemble the full corpus: correct programs plus the eight injected failures."""
    entries: List[CorpusEntry] = []

    for program in all_programs():
        entries.append(
            CorpusEntry(program, program.machine_code(), FailureClass.CORRECT, family="table1")
        )

    for period in range(2, 32):
        program = make_sampling_variant(period)
        entries.append(
            CorpusEntry(program, program.machine_code(), FailureClass.CORRECT, family="sampling")
        )
    for increment in range(1, 31):
        program = make_accumulator_variant(increment)
        entries.append(
            CorpusEntry(program, program.machine_code(), FailureClass.CORRECT, family="accumulator")
        )
    for threshold in range(10, 910, 30):
        program = make_threshold_variant(threshold)
        entries.append(
            CorpusEntry(program, program.machine_code(), FailureClass.CORRECT, family="threshold")
        )
    for delta in range(1, 31):
        program = make_blue_decrease_variant(delta)
        entries.append(
            CorpusEntry(program, program.machine_code(), FailureClass.CORRECT, family="blue")
        )

    # Failure injection 1 (2 programs): machine code files missing the pairs
    # that programme the output multiplexers (paper: "2 failures were due to
    # missing machine code pairs ... to program the behavior of the
    # pipeline's output multiplexers").
    for index in range(2):
        program = make_accumulator_variant(100 + index)
        machine_code = program.machine_code()
        output_pairs = [name for name in machine_code if "output_mux" in name]
        entries.append(
            CorpusEntry(
                program,
                machine_code.without(output_pairs),
                FailureClass.MISSING_MACHINE_CODE,
                family="injected_missing_pairs",
            )
        )

    # Failure injection 2 (6 programs): machine code whose comparison constant
    # was synthesised against narrow inputs, so it only satisfies container
    # values up to 100 (paper: "insufficient machine code values that led to
    # the pipeline simulation failing for large PHV container values over 100").
    for threshold in VALUE_RANGE_THRESHOLDS:
        program = make_threshold_variant(threshold, machine_code_threshold=VALUE_RANGE_CAP)
        entries.append(
            CorpusEntry(
                program,
                program.machine_code(),
                FailureClass.VALUE_RANGE,
                family="injected_value_range",
            )
        )

    return entries


def run_case_study(
    num_phvs: int = 300,
    seed: int = 0,
    opt_level: int = 2,
    entries: Optional[List[CorpusEntry]] = None,
) -> CaseStudyResult:
    """Fuzz every corpus entry and aggregate the outcomes."""
    if entries is None:
        entries = build_corpus()
    summary = CampaignSummary()
    outcomes: List[FuzzOutcome] = []
    per_family: Dict[str, List[int]] = {}

    for index, entry in enumerate(entries):
        program = entry.program
        tester = FuzzTester(
            program.pipeline_spec(),
            program.specification(),
            config=FuzzConfig(num_phvs=num_phvs, seed=seed + index, opt_level=opt_level),
            traffic_generator=program.traffic_generator(seed=seed + index),
            initial_state=program.initial_pipeline_state(),
        )
        outcome = tester.test(entry.machine_code)
        summary.add(outcome)
        outcomes.append(outcome)
        passed, total = per_family.get(entry.family, [0, 0])
        per_family[entry.family] = [passed + (1 if outcome.passed else 0), total + 1]

    return CaseStudyResult(
        summary=summary,
        entries=entries,
        outcomes=outcomes,
        per_family={family: (passed, total) for family, (passed, total) in per_family.items()},
    )
