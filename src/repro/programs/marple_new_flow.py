"""Marple new-flow detection (Table 1: pipeline 2x2, ``pred_raw``).

Marple's new-flow query flags packets that start a flow the switch has not
seen recently.  Without match tables, the Druzhba rendition keeps the most
recently seen flow identifier and flags a packet whenever its flow differs
from that identifier (a single-entry flow cache).

PHV layout (width 2):

====  =====================  =====================================
container  input              output
====  =====================  =====================================
0      flow identifier        unchanged
1      (unused)               1 when the packet starts a new flow
====  =====================  =====================================
"""

from __future__ import annotations

from typing import Dict, List

from ..chipmunk.allocation import MachineCodeBuilder
from ..dsim.traffic import choice_field
from ..machine_code import naming
from .base import BenchmarkProgram

DOMINO_SOURCE = """
state last_flow = 0;

transaction marple_new_flow {
    if (last_flow != pkt.flow_id) {
        pkt.new_flow = 1;
        last_flow = pkt.flow_id;
    } else {
        pkt.new_flow = 0;
    }
}
"""


def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
    """Reference behaviour: flag packets whose flow differs from the last one seen."""
    outputs = list(phv)
    old_flow = state["last_flow"]
    if state["last_flow"] != phv[0]:
        state["last_flow"] = phv[0]
    outputs[1] = 1 if old_flow != phv[0] else 0
    return outputs


def build(builder: MachineCodeBuilder) -> None:
    """Place new-flow detection onto the 2x2 pipeline."""
    # Stage 0: remember the current flow id; expose the previous one.
    builder.configure_pred_raw(
        stage=0,
        slot=0,
        cond=("!=", True, ("pkt", 0)),      # last_flow != flow_id
        update=("+", False, ("pkt", 0)),    # last_flow = flow_id
        input_containers=[0, 0],
    )
    builder.route_output(stage=0, container=1, kind=naming.STATEFUL, slot=0)
    # Stage 1: new_flow = (flow_id != previous flow id).
    builder.configure_stateless_full(
        stage=1,
        slot=0,
        mode="rel",
        op="!=",
        a=("pkt", 0),
        b=("pkt", 1),
        input_containers=[0, 1],
    )
    builder.route_output(stage=1, container=1, kind=naming.STATELESS, slot=0)


PROGRAM = BenchmarkProgram(
    name="marple_new_flow",
    display_name="Marple new flow",
    depth=2,
    width=2,
    stateful_atom="pred_raw",
    description=(
        "Marple-style new-flow detection with a single-entry flow cache: a packet is "
        "flagged when its flow identifier differs from the most recently seen one."
    ),
    spec_function=spec,
    build_machine_code=build,
    state_template={"last_flow": 0},
    relevant_containers=[1],
    field_generators=[choice_field(list(range(1, 9))), None],
    domino_source=DOMINO_SOURCE,
)
