"""Flowlet switching (Table 1: pipeline 4x5, ``pred_raw``).

Flowlet switching splits a flow into bursts ("flowlets") separated by idle
gaps and may re-route each new flowlet.  The data-plane kernel detects the
gap: a packet starts a new flowlet when its arrival time exceeds the last
recorded arrival time by more than the flowlet gap.

PHV layout (width 5):

====  =====================  =====================================
container  input              output
====  =====================  =====================================
0      arrival time           unchanged
1      (unused)               arrival time minus the flowlet gap
2      (unused)               last recorded time *before* this packet
3      (unused)               1 when this packet starts a new flowlet
4      (unused)               unchanged
====  =====================  =====================================
"""

from __future__ import annotations

from typing import Dict, List

from ..chipmunk.allocation import MachineCodeBuilder
from ..machine_code import naming
from .base import BenchmarkProgram

#: Idle gap (in time units) that separates two flowlets.
FLOWLET_GAP = 50

DOMINO_SOURCE = """
state last_time = 0;

transaction flowlets {
    adjusted = pkt.now - 50;
    pkt.last_time_out = last_time;
    if (last_time < adjusted) {
        pkt.new_flowlet = 1;
        last_time = pkt.now;
    } else {
        pkt.new_flowlet = 0;
    }
}
"""


def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
    """Reference behaviour: flag packets that arrive after an idle gap."""
    outputs = list(phv)
    now = phv[0]
    adjusted = now - FLOWLET_GAP
    old_last = state["last_time"]
    if state["last_time"] < adjusted:
        state["last_time"] = now
    outputs[1] = adjusted
    outputs[2] = old_last
    outputs[3] = 1 if old_last < adjusted else 0
    return outputs


def build(builder: MachineCodeBuilder) -> None:
    """Place flowlet detection onto the 4x5 pipeline."""
    # Stage 0: adjusted arrival time = now - FLOWLET_GAP.
    builder.configure_stateless_full(
        stage=0,
        slot=0,
        mode="arith",
        op="-",
        a=("pkt", 0),
        b=("const", FLOWLET_GAP),
        input_containers=[0, 0],
    )
    builder.route_output(stage=0, container=1, kind=naming.STATELESS, slot=0)
    # Stage 1: refresh the last arrival time when the gap was exceeded;
    # expose the previous value.
    builder.configure_pred_raw(
        stage=1,
        slot=0,
        cond=("<", True, ("pkt", 0)),     # last_time < adjusted
        update=("+", False, ("pkt", 1)),  # last_time = now
        input_containers=[1, 0],
    )
    builder.route_output(stage=1, container=2, kind=naming.STATEFUL, slot=0)
    # Stage 2: new flowlet = (previous last_time < adjusted).
    builder.configure_stateless_full(
        stage=2,
        slot=0,
        mode="rel",
        op="<",
        a=("pkt", 0),
        b=("pkt", 1),
        input_containers=[2, 1],
    )
    builder.route_output(stage=2, container=3, kind=naming.STATELESS, slot=0)


PROGRAM = BenchmarkProgram(
    name="flowlets",
    display_name="Flowlets",
    depth=4,
    width=5,
    stateful_atom="pred_raw",
    description=(
        "Flowlet-gap detection: a packet starts a new flowlet when its arrival time "
        "exceeds the last recorded arrival time by more than the flowlet gap, in which "
        "case the recorded time is refreshed."
    ),
    spec_function=spec,
    build_machine_code=build,
    state_template={"last_time": 0},
    relevant_containers=[1, 2, 3],
    domino_source=DOMINO_SOURCE,
)
