"""Parametric program variants.

The paper's case study (§5.2) validates *over 120* compiler-generated machine
code programs.  To rebuild a corpus of comparable size, this module provides
factories that instantiate whole families of programs — each family varies a
constant (sampling period, accumulator increment, comparison threshold, AQM
decrement) consistently in both the machine code and the high-level
specification, so every member is an independent machine-code program with
its own oracle.

Each factory returns a :class:`~repro.programs.base.BenchmarkProgram`, so the
corpus members plug into the same fuzzing machinery as the Table-1 programs.
"""

from __future__ import annotations

from typing import Dict, List

from ..chipmunk.allocation import MachineCodeBuilder
from ..machine_code import naming
from ..traffic import choice_field
from .base import BenchmarkProgram


def make_sampling_variant(period: int) -> BenchmarkProgram:
    """Sampling with a configurable period (one flagged packet every ``period``)."""
    if period < 2:
        raise ValueError("sampling period must be at least 2")

    def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
        old_count = state["count"]
        if state["count"] == period - 1:
            state["count"] = 0
        else:
            state["count"] = state["count"] + 1
        return [1 if old_count == period - 1 else 0]

    def build(builder: MachineCodeBuilder) -> None:
        builder.configure_if_else_raw(
            stage=0,
            slot=0,
            cond=("==", True, ("const", period - 1)),
            then=(False, ("const", 0)),
            els=(True, ("const", 1)),
            input_containers=[0, 0],
        )
        builder.route_output(stage=0, container=0, kind=naming.STATEFUL, slot=0)
        builder.configure_stateless_full(
            stage=1,
            slot=0,
            mode="rel",
            op="==",
            a=("pkt", 0),
            b=("const", period - 1),
            input_containers=[0, 0],
        )
        builder.route_output(stage=1, container=0, kind=naming.STATELESS, slot=0)

    return BenchmarkProgram(
        name=f"sampling_period_{period}",
        display_name=f"Sampling (1 in {period})",
        depth=2,
        width=1,
        stateful_atom="if_else_raw",
        description=f"Sampling variant flagging one packet in every {period}.",
        spec_function=spec,
        build_machine_code=build,
        state_template={"count": 0},
        relevant_containers=[0],
    )


def make_accumulator_variant(increment: int) -> BenchmarkProgram:
    """A running counter that grows by ``increment`` per packet (raw atom, 1x1)."""
    if increment < 0:
        raise ValueError("increment must be unsigned")

    def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
        old_total = state["total"]
        state["total"] = state["total"] + increment
        return [old_total]

    def build(builder: MachineCodeBuilder) -> None:
        builder.configure_raw(
            stage=0,
            slot=0,
            use_state=True,
            rhs=("const", increment),
            input_containers=[0, 0],
        )
        builder.route_output(stage=0, container=0, kind=naming.STATEFUL, slot=0)

    return BenchmarkProgram(
        name=f"accumulator_inc_{increment}",
        display_name=f"Accumulator (+{increment})",
        depth=1,
        width=1,
        stateful_atom="raw",
        description=f"Counter incremented by {increment} per packet, exposing the previous total.",
        spec_function=spec,
        build_machine_code=build,
        state_template={"total": 0},
        relevant_containers=[0],
    )


def make_threshold_variant(threshold: int, machine_code_threshold: int | None = None) -> BenchmarkProgram:
    """Flag packets whose value exceeds ``threshold`` (stateless, 1x1).

    ``machine_code_threshold`` deliberately lets the machine code use a
    *different* constant than the specification: with a smaller constant the
    program is correct for container values up to that constant and wrong
    above it — precisely the paper's "insufficient machine code values"
    failure class, used by the case-study harness for failure injection.
    """
    actual = threshold if machine_code_threshold is None else machine_code_threshold

    def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
        return [1 if phv[0] > threshold else 0]

    def build(builder: MachineCodeBuilder) -> None:
        builder.configure_stateless_full(
            stage=0,
            slot=0,
            mode="rel",
            op=">",
            a=("pkt", 0),
            b=("const", actual),
            input_containers=[0, 0],
        )
        builder.route_output(stage=0, container=0, kind=naming.STATELESS, slot=0)

    suffix = "" if machine_code_threshold is None else f"_mc{machine_code_threshold}"
    return BenchmarkProgram(
        name=f"threshold_{threshold}{suffix}",
        display_name=f"Threshold (> {threshold})",
        depth=1,
        width=1,
        stateful_atom="raw",
        description=f"Stateless comparison flagging container values above {threshold}.",
        spec_function=spec,
        build_machine_code=build,
        state_template={},
        relevant_containers=[0],
    )


def make_flow_counters_variant(flows: int, op: str = "+") -> BenchmarkProgram:
    """Per-flow payload accumulators: the flow-partitionable workload family.

    Container 0 carries a flow identifier in ``[0, flows)``, container 1 a
    payload.  Stage 0 computes one indicator per flow (``flow == k``) into
    container ``2 + k``; stage 1 holds one ``pred_raw`` accumulator per flow
    that folds the payload into its state only when its indicator fired.
    Every state cell is therefore written by exactly one flow — the machine
    model's rendition of flow-indexed state — which makes this family the
    reference workload for the sharded driver: hash-partitioning the trace
    by container 0 gives each shard exclusive ownership of its flows' state
    cells, so a sharded run is bit-for-bit the sequential run.

    ``op`` is the accumulator's arithmetic (``"+"`` or ``"-"``).
    """
    if flows < 1:
        raise ValueError("need at least one flow")
    if op not in ("+", "-"):
        raise ValueError("accumulator op must be '+' or '-'")
    width = flows + 2

    def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
        outputs = list(phv)
        flow = phv[0]
        for k in range(flows):
            outputs[2 + k] = 1 if flow == k else 0
        if 0 <= flow < flows:
            delta = phv[1] if op == "+" else -phv[1]
            state[f"flow_{flow}"] = state[f"flow_{flow}"] + delta
        return outputs

    def build(builder: MachineCodeBuilder) -> None:
        for k in range(flows):
            # Stage 0: indicator k = (flow == k).
            builder.configure_stateless_full(
                stage=0,
                slot=k,
                mode="rel",
                op="==",
                a=("pkt", 0),
                b=("const", k),
                input_containers=[0, 0],
            )
            builder.route_output(stage=0, container=2 + k, kind=naming.STATELESS, slot=k)
            # Stage 1: accumulator k folds the payload in when indicator k fired.
            builder.configure_pred_raw(
                stage=1,
                slot=k,
                cond=("<", False, ("pkt", 0)),  # 0 < indicator
                update=(op, True, ("pkt", 1)),  # state = state op payload
                input_containers=[2 + k, 1],
            )

    return BenchmarkProgram(
        name=f"flow_counters_{flows}{'' if op == '+' else '_sub'}",
        display_name=f"Flow counters ({flows} flows, {op})",
        depth=2,
        width=width,
        stateful_atom="pred_raw",
        description=(
            f"{flows} per-flow payload accumulators with flow-exclusive state cells; "
            "the flow-partitionable reference workload for the sharded driver."
        ),
        spec_function=spec,
        build_machine_code=build,
        state_template={f"flow_{k}": 0 for k in range(flows)},
        relevant_containers=list(range(2, width)),
        field_generators=[choice_field(range(flows)), None] + [None] * flows,
    )


def make_flow_counters_readers_variant(
    flows: int, thresholds: "List[int] | None" = None
) -> BenchmarkProgram:
    """Flow counters plus *read-only* state exposed in every packet's outputs.

    The flow-local-reader workload for the sharded driver's read-set rule:
    stages 0-1 are exactly :func:`make_flow_counters_variant` (per-flow
    ``pred_raw`` accumulators, state cells flow-owned), and stage 2 adds one
    configuration cell per flow — a ``pred_raw`` whose condition never fires
    (``0 < 0``), so its state holds the per-flow threshold loaded at start
    — with its ALU output routed into container ``2 + k``.  Every packet
    therefore *reads* state into its outputs (the routed value is the
    pre-update ``state_0``), which PR 3's whole-state strict rule treated as
    unshardable; the per-cell read-set analysis sees that the exposed cells
    ``(2, k)`` are never written while the written cells ``(1, k)`` are
    never exposed, so the program shards legally and bit-for-bit.
    """
    if flows < 1:
        raise ValueError("need at least one flow")
    if thresholds is None:
        thresholds = [101 + 13 * k for k in range(flows)]
    if len(thresholds) != flows:
        raise ValueError("one threshold per flow is required")
    width = flows + 2

    def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
        outputs = list(phv)
        flow = phv[0]
        for k in range(flows):  # stage 0: indicators
            outputs[2 + k] = 1 if flow == k else 0
        if 0 <= flow < flows:  # stage 1: flow-owned accumulators
            state[f"flow_{flow}"] = state[f"flow_{flow}"] + phv[1]
        for k in range(flows):  # stage 2: read-only thresholds exposed
            outputs[2 + k] = thresholds[k]
        return outputs

    def build(builder: MachineCodeBuilder) -> None:
        for k in range(flows):
            builder.configure_stateless_full(
                stage=0,
                slot=k,
                mode="rel",
                op="==",
                a=("pkt", 0),
                b=("const", k),
                input_containers=[0, 0],
            )
            builder.route_output(stage=0, container=2 + k, kind=naming.STATELESS, slot=k)
            builder.configure_pred_raw(
                stage=1,
                slot=k,
                cond=("<", False, ("pkt", 0)),  # 0 < indicator
                update=("+", True, ("pkt", 1)),  # state += payload
                input_containers=[2 + k, 1],
            )
            # Stage 2: a never-updated config cell, its state routed into the
            # packet — a pure read of flow k's threshold.
            builder.configure_pred_raw(
                stage=2,
                slot=k,
                cond=("<", False, ("const", 0)),  # 0 < 0: never fires
                update=("+", True, ("const", 0)),
                input_containers=[0, 0],
            )
            builder.route_output(stage=2, container=2 + k, kind=naming.STATEFUL, slot=k)

    return BenchmarkProgram(
        name=f"flow_counters_readers_{flows}",
        display_name=f"Flow counters + readers ({flows} flows)",
        depth=3,
        width=width,
        stateful_atom="pred_raw",
        description=(
            f"{flows} flow-owned accumulators plus {flows} read-only threshold "
            "cells routed into every packet's outputs; the reference workload "
            "for the read-tracked shard merge rule."
        ),
        spec_function=spec,
        build_machine_code=build,
        state_template={f"flow_{k}": 0 for k in range(flows)},
        relevant_containers=list(range(2, width)),
        initial_stateful_values={(2, k): [thresholds[k]] for k in range(flows)},
        field_generators=[choice_field(range(flows)), None] + [None] * flows,
    )


def make_flow_counters_cross_reader_variant(flows: int) -> BenchmarkProgram:
    """Flow counters with an *adversarial* cross-flow state read.

    Identical to :func:`make_flow_counters_variant` except that flow 0's
    accumulator output is routed into container 2: every packet — whatever
    its flow — copies the pre-update value of cell ``(1, 0)`` into its
    outputs.  That cell is *written* by flow 0, so under any multi-shard
    partition the packets of other flows would read a stale shard-private
    value; the read-set rule must refuse the merge (explicit
    ``engine="sharded"`` raises, ``engine="auto"`` falls back).
    """
    if flows < 1:
        raise ValueError("need at least one flow")
    width = flows + 2

    def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
        outputs = list(phv)
        flow = phv[0]
        for k in range(flows):
            outputs[2 + k] = 1 if flow == k else 0
        old_flow_0 = state["flow_0"]
        if 0 <= flow < flows:
            state[f"flow_{flow}"] = state[f"flow_{flow}"] + phv[1]
        outputs[2] = old_flow_0  # stage 1 routes cell (1, 0)'s pre-update value
        return outputs

    def build(builder: MachineCodeBuilder) -> None:
        for k in range(flows):
            builder.configure_stateless_full(
                stage=0,
                slot=k,
                mode="rel",
                op="==",
                a=("pkt", 0),
                b=("const", k),
                input_containers=[0, 0],
            )
            builder.route_output(stage=0, container=2 + k, kind=naming.STATELESS, slot=k)
            builder.configure_pred_raw(
                stage=1,
                slot=k,
                cond=("<", False, ("pkt", 0)),
                update=("+", True, ("pkt", 1)),
                input_containers=[2 + k, 1],
            )
        # The cross-flow read: every packet sees flow 0's accumulator.
        builder.route_output(stage=1, container=2, kind=naming.STATEFUL, slot=0)

    return BenchmarkProgram(
        name=f"flow_counters_cross_reader_{flows}",
        display_name=f"Flow counters + cross-flow reader ({flows} flows)",
        depth=2,
        width=width,
        stateful_atom="pred_raw",
        description=(
            f"{flows} flow-owned accumulators with flow 0's written cell exposed "
            "to every packet — the adversarial workload the read-tracked merge "
            "rule must keep refusing."
        ),
        spec_function=spec,
        build_machine_code=build,
        state_template={f"flow_{k}": 0 for k in range(flows)},
        relevant_containers=list(range(2, width)),
        field_generators=[choice_field(range(flows)), None] + [None] * flows,
    )


def make_blue_decrease_variant(delta: int, initial: int = 500) -> BenchmarkProgram:
    """BLUE decrease with a configurable decrement and initial probability."""
    if delta < 0 or initial < 0:
        raise ValueError("delta and initial value must be unsigned")

    def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
        outputs = list(phv)
        outputs[1] = state["p_mark"]
        if state["p_mark"] > 0:
            state["p_mark"] = state["p_mark"] - delta
        return outputs

    def build(builder: MachineCodeBuilder) -> None:
        builder.configure_sub(
            stage=0,
            slot=0,
            cond=(">", True, ("const", 0)),
            then=("-", True, ("const", delta)),
            els=("+", True, ("const", 0)),
            input_containers=[0, 0],
        )
        builder.route_output(stage=0, container=1, kind=naming.STATEFUL, slot=0)

    return BenchmarkProgram(
        name=f"blue_decrease_delta_{delta}_init_{initial}",
        display_name=f"BLUE decrease (-{delta})",
        depth=4,
        width=2,
        stateful_atom="sub",
        description=f"BLUE decrease variant subtracting {delta} per idle event from {initial}.",
        spec_function=spec,
        build_machine_code=build,
        state_template={"p_mark": initial},
        relevant_containers=[1],
        initial_stateful_values={(0, 0): [initial]},
    )
