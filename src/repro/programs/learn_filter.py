"""Learning filter (Table 1: pipeline 3x5, ``raw``).

The Domino learn-filter example feeds three independent hash values of a flow
key into three counting-Bloom-filter banks, one per stage.  Without match
tables or memories, each bank reduces to an accumulator updated by a ``raw``
atom; the packet carries the three precomputed hash values.

PHV layout (width 5):

====  =====================  =====================================
container  input              output
====  =====================  =====================================
0      hash value 0           bank-0 accumulator *before* this packet
1      hash value 1           bank-1 accumulator *before* this packet
2      hash value 2           bank-2 accumulator *before* this packet
3, 4   (unused)               unchanged
====  =====================  =====================================
"""

from __future__ import annotations

from typing import Dict, List

from ..chipmunk.allocation import MachineCodeBuilder
from ..machine_code import naming
from .base import BenchmarkProgram

DOMINO_SOURCE = """
state bank0 = 0;
state bank1 = 0;
state bank2 = 0;

transaction learn_filter {
    pkt.out0 = bank0;
    pkt.out1 = bank1;
    pkt.out2 = bank2;
    bank0 = bank0 + pkt.h0;
    bank1 = bank1 + pkt.h1;
    bank2 = bank2 + pkt.h2;
}
"""


def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
    """Reference behaviour: three accumulators, one per hash bank."""
    outputs = list(phv)
    outputs[0] = state["bank0"]
    outputs[1] = state["bank1"]
    outputs[2] = state["bank2"]
    state["bank0"] = state["bank0"] + phv[0]
    state["bank1"] = state["bank1"] + phv[1]
    state["bank2"] = state["bank2"] + phv[2]
    return outputs


def build(builder: MachineCodeBuilder) -> None:
    """Place the three filter banks onto stages 0-2 of the 3x5 pipeline."""
    for stage in range(3):
        builder.configure_raw(
            stage=stage,
            slot=0,
            use_state=True,
            rhs=("pkt", 0),
            input_containers=[stage, stage],
        )
        builder.route_output(stage=stage, container=stage, kind=naming.STATEFUL, slot=0)


PROGRAM = BenchmarkProgram(
    name="learn_filter",
    display_name="Learn filter",
    depth=3,
    width=5,
    stateful_atom="raw",
    description=(
        "Learning-filter accumulators: three hash banks, one per stage, each adding the "
        "packet's corresponding hash value to its running total and exposing the "
        "pre-update total."
    ),
    spec_function=spec,
    build_machine_code=build,
    state_template={"bank0": 0, "bank1": 0, "bank2": 0},
    relevant_containers=[0, 1, 2],
    traffic_max_value=255,
    domino_source=DOMINO_SOURCE,
)
