"""BLUE (increase) (Table 1: pipeline 4x2, ``pair``).

The BLUE active-queue-management algorithm raises its marking probability
when congestion events arrive.  The integer rendition used here (Druzhba
models unsigned integer containers, not floats) keeps the marking probability
``p_mark`` as a scaled integer together with the time of the last update:
on every congestion-event packet, if time has advanced since the last update
and ``p_mark`` is still below its cap, ``p_mark`` grows by ``DELTA1`` and the
update time is refreshed.

PHV layout (width 2):

====  =====================  =====================================
container  input              output
====  =====================  =====================================
0      event timestamp        unchanged
1      (unused)               ``p_mark`` *before* this event
====  =====================  =====================================
"""

from __future__ import annotations

from typing import Dict, List

from ..chipmunk.allocation import MachineCodeBuilder
from ..machine_code import naming
from .base import BenchmarkProgram

#: Marking-probability increment applied per accepted congestion event.
DELTA1 = 25
#: Upper bound on the scaled marking probability.
P_MARK_MAX = 900

DOMINO_SOURCE = """
state p_mark = 0;
state last_update = 0;

transaction blue_increase {
    pkt.p_mark_out = p_mark;
    if (last_update < pkt.now && p_mark <= 900) {
        p_mark = p_mark + 25;
        last_update = pkt.now;
    }
}
"""


def spec(phv: List[int], state: Dict[str, int]) -> List[int]:
    """Reference behaviour: bounded additive increase of the marking probability."""
    outputs = list(phv)
    outputs[1] = state["p_mark"]
    if state["last_update"] < phv[0] and state["p_mark"] <= P_MARK_MAX:
        state["p_mark"] = state["p_mark"] + DELTA1
        state["last_update"] = phv[0]
    return outputs


def build(builder: MachineCodeBuilder) -> None:
    """Place the BLUE increase update onto the pair atom at stage 0."""
    builder.configure_pair(
        stage=0,
        slot=0,
        cond0=(1, "<", ("pkt", 0)),           # last_update < now
        cond1=(0, "<=", ("const", P_MARK_MAX)),  # p_mark <= cap
        combine="&&",
        then_updates=(
            (("state", 0), "+", ("const", DELTA1)),  # p_mark += DELTA1
            (("const", 0), "+", ("pkt", 0)),         # last_update = now
        ),
        else_updates=(
            (("state", 0), "+", ("const", 0)),
            (("state", 1), "+", ("const", 0)),
        ),
        input_containers=[0, 0],
    )
    builder.route_output(stage=0, container=1, kind=naming.STATEFUL, slot=0)


PROGRAM = BenchmarkProgram(
    name="blue_increase",
    display_name="BLUE (increase)",
    depth=4,
    width=2,
    stateful_atom="pair",
    description=(
        "Integer rendition of BLUE's marking-probability increase: on each congestion "
        "event, if time advanced since the last update and the probability is below its "
        "cap, increase it by a fixed step and record the event time."
    ),
    spec_function=spec,
    build_machine_code=build,
    state_template={"p_mark": 0, "last_update": 0},
    relevant_containers=[1],
    domino_source=DOMINO_SOURCE,
)
