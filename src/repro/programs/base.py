"""Infrastructure for the Table-1 benchmark programs.

Each of the 12 packet-processing programs of the paper's evaluation (§5.1,
Table 1) is expressed as a :class:`BenchmarkProgram`: the pipeline dimensions
and stateful atom from Table 1, a high-level specification of the intended
algorithm, the machine code a compiler targeting Druzhba would emit for it
(produced here by the grid allocator in :mod:`repro.chipmunk.allocation`),
plus the traffic model and initial state the workload needs.

The machine code of every program is validated against its specification by
the fuzzing workflow in the test suite (``tests/test_programs.py``) — this is
the reproduction's equivalent of the paper's case-study validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import atoms
from ..chipmunk.allocation import MachineCodeBuilder
from ..dsim.traffic import TrafficGenerator
from ..errors import DruzhbaError
from ..hardware import PipelineSpec
from ..machine_code.pairs import MachineCode
from ..testing.spec import FunctionSpecification, Specification

#: Signature of a program's spec function: (phv values, mutable state) -> outputs.
SpecFunction = Callable[[List[int], Dict[str, int]], List[int]]
#: Signature of a program's machine-code builder hook.
BuilderFunction = Callable[[MachineCodeBuilder], None]


@dataclass
class BenchmarkProgram:
    """One packet-processing program of Table 1.

    Attributes
    ----------
    name / display_name:
        Registry key and the name used in the paper's Table 1.
    depth / width / stateful_atom:
        Pipeline dimensions and ALU name exactly as reported in Table 1.
    description:
        One-paragraph statement of the algorithm (including any
        simplification relative to the original paper's algorithm — see
        DESIGN.md for the substitution policy).
    spec_function / state_template / relevant_containers:
        The high-level specification (Figure 5's "program spec").
    build_machine_code:
        Hook that places the program onto the pipeline grid.
    initial_stateful_values:
        Initial state for specific stateful ALUs, keyed by (stage, slot);
        unspecified ALUs start at zero.  The specification's
        ``state_template`` must be consistent with these values.
    field_generators:
        Optional per-container traffic model (defaults to uniform values).
    traffic_max_value:
        Upper bound of uniformly generated container values.
    domino_source:
        Optional Domino rendition of the program (used by documentation, the
        chipmunk example and the Domino-vs-spec consistency tests).
    """

    name: str
    display_name: str
    depth: int
    width: int
    stateful_atom: str
    description: str
    spec_function: SpecFunction
    build_machine_code: BuilderFunction
    state_template: Dict[str, int] = field(default_factory=dict)
    relevant_containers: Sequence[int] = ()
    initial_stateful_values: Dict[Tuple[int, int], List[int]] = field(default_factory=dict)
    field_generators: Optional[Sequence] = None
    traffic_max_value: int = (1 << 10) - 1
    stateless_atom: str = "stateless_full"
    domino_source: Optional[str] = None

    # ------------------------------------------------------------------
    # Derived artefacts
    # ------------------------------------------------------------------
    def pipeline_spec(self) -> PipelineSpec:
        """The hardware configuration of Table 1 for this program."""
        return PipelineSpec(
            depth=self.depth,
            width=self.width,
            stateful_alu=atoms.get_atom(self.stateful_atom),
            stateless_alu=atoms.get_atom(self.stateless_atom),
            name=self.name,
        )

    def machine_code(self) -> MachineCode:
        """The compiler-produced machine code for this program."""
        builder = MachineCodeBuilder(self.pipeline_spec())
        self.build_machine_code(builder)
        return builder.build()

    def specification(self) -> Specification:
        """The executable high-level specification of the intended behaviour."""
        return FunctionSpecification(
            function=self.spec_function,
            num_containers=self.width,
            state_template=dict(self.state_template),
            relevant_containers=list(self.relevant_containers) or None,
            name=self.name,
        )

    def traffic_generator(self, seed: int = 0) -> TrafficGenerator:
        """A traffic generator producing this program's workload."""
        return TrafficGenerator(
            num_containers=self.width,
            seed=seed,
            max_value=self.traffic_max_value,
            field_generators=self.field_generators,
        )

    def initial_pipeline_state(self) -> List[List[List[int]]]:
        """Per-stage, per-slot initial state vectors matching the spec's initial state."""
        spec = self.pipeline_spec()
        state = [
            [[0] * spec.num_state_vars for _ in range(spec.width)] for _ in range(spec.depth)
        ]
        for (stage, slot), values in self.initial_stateful_values.items():
            if stage >= spec.depth or slot >= spec.width:
                raise DruzhbaError(
                    f"program {self.name!r}: initial state refers to ALU ({stage}, {slot}) "
                    f"outside a {spec.depth}x{spec.width} pipeline"
                )
            if len(values) != spec.num_state_vars:
                raise DruzhbaError(
                    f"program {self.name!r}: initial state for ALU ({stage}, {slot}) has "
                    f"{len(values)} values, atom has {spec.num_state_vars} state variables"
                )
            state[stage][slot] = list(values)
        return state

    def table1_row(self) -> Dict[str, object]:
        """This program's identity columns of Table 1."""
        return {
            "program": self.display_name,
            "pipeline_depth": self.depth,
            "pipeline_width": self.width,
            "alu_name": self.stateful_atom,
        }
