"""Exception hierarchy for the Druzhba reproduction.

Every error raised by the library derives from :class:`DruzhbaError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure categories that the paper's
workflow cares about (for instance, §5.2 distinguishes "machine code
incompatible with the pipeline" from "output trace mismatch").
"""

from __future__ import annotations


class DruzhbaError(Exception):
    """Base class of every exception raised by this library."""


class ALUDSLError(DruzhbaError):
    """Base class for errors in the ALU domain-specific language."""


class ALUDSLSyntaxError(ALUDSLError):
    """Raised when ALU DSL source text cannot be tokenised or parsed.

    Carries the ``line`` and ``column`` of the offending token when known so
    that compiler developers get a precise location, matching how dgen reports
    malformed ALU specifications.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class ALUDSLSemanticError(ALUDSLError):
    """Raised when a parsed ALU specification is structurally invalid.

    Examples: a stateless ALU referencing state variables, an undeclared
    identifier, or a stateful ALU without any state variables.
    """


class MachineCodeError(DruzhbaError):
    """Base class for machine-code-related failures."""


class MissingMachineCodeError(MachineCodeError):
    """A required machine-code pair is absent.

    This is the first failure class observed in the paper's case study (§5.2):
    two of the eight Chipmunk failures were "missing machine code pairs from
    the input file to program the behavior of the pipeline's output
    multiplexers".
    """

    def __init__(self, name: str, message: str | None = None):
        super().__init__(message or f"missing machine code pair: {name!r}")
        self.name = name


class UnknownMachineCodeError(MachineCodeError):
    """A machine-code pair names a primitive that does not exist in the pipeline."""

    def __init__(self, name: str, message: str | None = None):
        super().__init__(message or f"unknown machine code pair: {name!r}")
        self.name = name


class MachineCodeValueError(MachineCodeError):
    """A machine-code value is outside the domain of its primitive.

    For example an opcode of 7 handed to a 2-way multiplexer.
    """


class CodegenError(DruzhbaError):
    """Raised when dgen cannot generate a pipeline description."""


class SimulationError(DruzhbaError):
    """Raised when dsim cannot run a pipeline description."""


class SpecificationError(DruzhbaError):
    """Raised when a high-level specification is malformed or misbehaves."""


class EquivalenceError(DruzhbaError):
    """Raised (optionally) when the pipeline trace and the spec trace diverge."""


class SynthesisError(DruzhbaError):
    """Raised when the chipmunk synthesis engine cannot find machine code."""


class AllocationError(DruzhbaError):
    """Raised when a program cannot be placed onto the pipeline grid."""


class DominoError(DruzhbaError):
    """Base class for errors in the Domino-like frontend."""


class DominoSyntaxError(DominoError):
    """Raised when Domino source text cannot be tokenised or parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class DominoSemanticError(DominoError):
    """Raised when a Domino program is structurally invalid."""


class P4Error(DruzhbaError):
    """Base class for errors in the P4-14-like program model."""


class P4SyntaxError(P4Error):
    """Raised when P4-14-like source text cannot be parsed."""


class P4SemanticError(P4Error):
    """Raised when a P4 program model is inconsistent (e.g. action refers to a
    missing header field, or a table references an undefined action)."""


class SchedulingError(DruzhbaError):
    """Raised when the dRMT scheduler cannot produce a feasible schedule."""


class TableConfigError(DruzhbaError):
    """Raised when a dRMT table-entries configuration file is invalid."""
