"""Pipeline hardware specification.

A :class:`PipelineSpec` captures the three hardware inputs dgen needs
(paper §3.1): the pipeline depth and width, and the ALU DSL specifications of
the stateful and stateless ALUs that populate every stage.  Following
Figure 2, each stage holds ``width`` stateless ALUs and ``width`` stateful
ALUs, the PHV has ``width`` containers, every ALU operand is fed by an input
multiplexer that can select any PHV container, and every PHV container is
written by an output multiplexer that can select any ALU output in the stage
or keep the container's previous value (pass-through).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .alu_dsl.ast_nodes import ALUSpec
from .errors import CodegenError
from .machine_code import naming
from .machine_code.pairs import MachineCode, expected_names


@dataclass
class PipelineSpec:
    """Complete description of a Druzhba RMT pipeline configuration.

    Attributes
    ----------
    depth:
        Number of pipeline stages.
    width:
        Number of stateful ALUs, stateless ALUs and PHV containers per stage.
    stateful_alu:
        Analysed ALU DSL spec instantiated in every stateful slot.
    stateless_alu:
        Analysed ALU DSL spec instantiated in every stateless slot.
    name:
        Optional human-readable name (used in generated module docstrings).
    """

    depth: int
    width: int
    stateful_alu: ALUSpec
    stateless_alu: ALUSpec
    name: str = "pipeline"

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise CodegenError(f"pipeline depth must be >= 1, got {self.depth}")
        if self.width < 1:
            raise CodegenError(f"pipeline width must be >= 1, got {self.width}")
        if self.stateful_alu.kind != "stateful":
            raise CodegenError(
                f"stateful_alu must be a stateful ALU spec, got {self.stateful_alu.kind!r}"
            )
        if self.stateless_alu.kind != "stateless":
            raise CodegenError(
                f"stateless_alu must be a stateless ALU spec, got {self.stateless_alu.kind!r}"
            )

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @property
    def num_containers(self) -> int:
        """Number of PHV containers (equal to the pipeline width, Figure 2)."""
        return self.width

    @property
    def num_state_vars(self) -> int:
        """State variables per stateful ALU."""
        return self.stateful_alu.num_state_vars

    @property
    def output_mux_choices(self) -> int:
        """Inputs selectable by an output mux: all ALU outputs plus pass-through."""
        return 2 * self.width + 1

    def output_mux_value_for(self, kind: str, slot: int) -> int:
        """Machine-code value that routes the given ALU's output to a container.

        Stateless ALU ``slot`` outputs occupy values ``0 .. width-1``,
        stateful ALU outputs occupy ``width .. 2*width-1`` and the value
        ``2*width`` keeps the container unchanged (pass-through).
        """
        if slot < 0 or slot >= self.width:
            raise CodegenError(f"ALU slot {slot} out of range for width {self.width}")
        if kind == naming.STATELESS:
            return slot
        if kind == naming.STATEFUL:
            return self.width + slot
        raise CodegenError(f"unknown ALU kind {kind!r}")

    @property
    def passthrough_value(self) -> int:
        """Output-mux machine-code value that leaves a container unchanged."""
        return 2 * self.width

    # ------------------------------------------------------------------
    # Machine-code contract
    # ------------------------------------------------------------------
    def expected_machine_code_names(self) -> List[str]:
        """Every machine-code pair name this configuration requires."""
        return expected_names(
            depth=self.depth,
            width=self.width,
            stateful_holes=self.stateful_alu.holes,
            stateless_holes=self.stateless_alu.holes,
            stateful_operands=self.stateful_alu.num_operands,
            stateless_operands=self.stateless_alu.num_operands,
        )

    def hole_domains(self) -> Dict[str, int]:
        """Domain size of every expected machine-code pair (0 means unbounded).

        Input muxes have a domain equal to the number of PHV containers and
        output muxes a domain of ``2*width + 1``; ALU holes inherit the
        domains computed by ALU DSL analysis.
        """
        domains: Dict[str, int] = {}
        for stage in range(self.depth):
            for slot in range(self.width):
                for kind, alu in (
                    (naming.STATELESS, self.stateless_alu),
                    (naming.STATEFUL, self.stateful_alu),
                ):
                    for operand in range(alu.num_operands):
                        domains[naming.input_mux_name(stage, kind, slot, operand)] = self.width
                    for hole in alu.holes:
                        domains[naming.alu_hole_name(stage, kind, slot, hole)] = alu.hole_domains[hole]
            for container in range(self.width):
                domains[naming.output_mux_name(stage, container)] = self.output_mux_choices
        return domains

    def validate_machine_code(self, machine_code: MachineCode) -> List[str]:
        """Return the machine-code pair names this pipeline needs but that are missing."""
        return machine_code.missing(self.expected_machine_code_names())

    def passthrough_machine_code(self) -> MachineCode:
        """A complete machine-code program in which every stage is a no-op.

        Every output mux selects pass-through, every input mux selects
        container 0 and every ALU hole is 0.  Useful as a baseline to build
        real configurations from (compilers override only the pairs they
        need), and as the starting point for synthesis.
        """
        pairs = {name: 0 for name in self.expected_machine_code_names()}
        for stage in range(self.depth):
            for container in range(self.width):
                pairs[naming.output_mux_name(stage, container)] = self.passthrough_value
        return MachineCode(pairs)


@dataclass
class StageLayout:
    """Resolved layout of a single stage (used by reporting and debug tools)."""

    stage: int
    stateless_slots: List[str] = field(default_factory=list)
    stateful_slots: List[str] = field(default_factory=list)


def describe_pipeline(spec: PipelineSpec) -> str:
    """Human-readable single-paragraph description of a pipeline configuration."""
    return (
        f"pipeline {spec.name!r}: depth={spec.depth}, width={spec.width}, "
        f"PHV containers={spec.num_containers}, "
        f"stateful ALU={spec.stateful_alu.name!r} "
        f"({spec.stateful_alu.num_operands} operands, {spec.num_state_vars} state vars, "
        f"{len(spec.stateful_alu.holes)} holes), "
        f"stateless ALU={spec.stateless_alu.name!r} "
        f"({spec.stateless_alu.num_operands} operands, {len(spec.stateless_alu.holes)} holes), "
        f"{len(spec.expected_machine_code_names())} machine-code pairs expected"
    )


def make_pipeline_spec(
    depth: int,
    width: int,
    stateful_alu: ALUSpec,
    stateless_alu: Optional[ALUSpec] = None,
    name: str = "pipeline",
) -> PipelineSpec:
    """Convenience constructor that defaults the stateless ALU to the catalogue's arithmetic one."""
    if stateless_alu is None:
        from .atoms import stateless_catalog

        stateless_alu = stateless_catalog()["stateless_full"]
    return PipelineSpec(
        depth=depth,
        width=width,
        stateful_alu=stateful_alu,
        stateless_alu=stateless_alu,
        name=name,
    )
