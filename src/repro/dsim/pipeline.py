"""Feedforward pipeline execution (paper §3.3).

"At every simulation tick, dsim ensures that a PHV created by the traffic
generator enters the pipeline and is executed by the first pipeline stage and
that PHVs in subsequent stages are sent to their next respective stages."

The :class:`Pipeline` class holds the in-flight PHVs (one slot per stage),
the per-stage stateful-ALU state vectors, and implements one simulation tick:

1. *commit*: every in-flight PHV moves its write half into its read half
   (the values written by the previous stage on the previous tick become
   visible);
2. *advance*: the PHV in the last stage exits, every other PHV moves one
   stage forward, and the incoming PHV (if any) occupies stage 0;
3. *execute*: every stage holding a PHV runs its generated stage function on
   the PHV's read half and records the result in the write half.

This class is the tick-accurate model; descriptions generated at opt level 3
also carry a fused ``run_trace`` loop that :class:`repro.dsim.RMTSimulator`
prefers (bit-for-bit equivalent for a feedforward pipeline, much faster).
The debugger's recorder always drives this class, tick by tick.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..dgen.emit import PipelineDescription
from ..errors import MissingMachineCodeError, SimulationError
from .phv import PHV


class Pipeline:
    """Executable pipeline built from a dgen pipeline description."""

    def __init__(
        self,
        description: PipelineDescription,
        runtime_values: Optional[Dict[str, int]] = None,
        initial_state: Optional[List[List[List[int]]]] = None,
    ):
        self.description = description
        self.depth = description.spec.depth
        self.width = description.spec.width
        self._stage_functions = description.stage_functions
        if runtime_values is None:
            runtime_values = description.runtime_values()
        self._values = runtime_values
        if initial_state is None:
            initial_state = description.initial_state()
        self._validate_initial_state(initial_state)
        self.state = initial_state
        self._slots: List[Optional[PHV]] = [None] * self.depth
        self.current_tick = 0

    # ------------------------------------------------------------------
    # State handling
    # ------------------------------------------------------------------
    def _validate_initial_state(self, state: List[List[List[int]]]) -> None:
        if len(state) != self.depth:
            raise SimulationError(
                f"initial state must have {self.depth} stages, got {len(state)}"
            )
        for stage_state in state:
            if len(stage_state) != self.width:
                raise SimulationError(
                    f"each stage's state must have {self.width} stateful-ALU entries"
                )
            for alu_state in stage_state:
                if len(alu_state) != self.description.spec.num_state_vars:
                    raise SimulationError(
                        "each stateful ALU state vector must have "
                        f"{self.description.spec.num_state_vars} entries"
                    )

    def state_snapshot(self) -> List[List[List[int]]]:
        """Deep copy of the per-stage, per-ALU state vectors."""
        return [[list(alu_state) for alu_state in stage_state] for stage_state in self.state]

    # ------------------------------------------------------------------
    # Tick execution
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Number of PHVs currently inside the pipeline."""
        return sum(1 for slot in self._slots if slot is not None)

    def tick(self, incoming: Optional[PHV] = None) -> Optional[PHV]:
        """Run one simulation tick; return the PHV exiting the pipeline, if any."""
        # 1. Start of tick: write halves become read halves (paper §3.3).
        for phv in self._slots:
            if phv is not None:
                phv.commit()

        # 2. Advance every PHV by exactly one stage.
        exiting = self._slots[-1]
        for stage in range(self.depth - 1, 0, -1):
            self._slots[stage] = self._slots[stage - 1]
        if incoming is not None:
            incoming.entered_tick = self.current_tick
        self._slots[0] = incoming

        # 3. Execute every occupied stage on its PHV's read half.
        for stage, phv in enumerate(self._slots):
            if phv is None:
                continue
            stage_function = self._stage_functions[stage]
            try:
                outputs = stage_function(phv.read, self.state[stage], self._values)
            except KeyError as error:
                # Unoptimised descriptions look machine code up at runtime; a
                # missing pair surfaces here (§5.2 failure class 1).
                raise MissingMachineCodeError(str(error.args[0])) from error
            phv.set_write(outputs)

        self.current_tick += 1
        return exiting

    def drain(self) -> List[PHV]:
        """Tick with no new input until every in-flight PHV has exited."""
        drained: List[PHV] = []
        while self.in_flight:
            exited = self.tick(None)
            if exited is not None:
                drained.append(exited)
        return drained

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def process(self, phv_values: Sequence[Sequence[int]]) -> List[PHV]:
        """Push a full input trace through the pipeline and return exited PHVs in order."""
        exited: List[PHV] = []
        for index, values in enumerate(phv_values):
            if len(values) != self.width:
                raise SimulationError(
                    f"PHV {index} has {len(values)} containers, pipeline width is {self.width}"
                )
            result = self.tick(PHV.from_values(index, values))
            if result is not None:
                exited.append(result)
        exited.extend(self.drain())
        return exited
