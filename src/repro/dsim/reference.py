"""Reference (interpretation-based) pipeline simulator.

Druzhba's normal execution path runs code that dgen *generated* from the ALU
DSL and the machine code.  This module provides an independent second path:
the pipeline is executed directly from the hardware specification and the
machine code, using the ALU DSL reference interpreter for every ALU and the
shared mux semantics for the interconnect — no code generation involved.

Having two implementations of the same semantics is a classic compiler-
testing technique (it is how this reproduction tests *its own* dgen, in the
same spirit in which Druzhba tests external compilers): the property-based
tests assert that the generated-code simulator and this reference simulator
produce identical traces for random machine code.  The reference simulator is
much slower, which is precisely the gap the paper's generated-code design
(and its §3.4 optimisations) exists to close; the benchmark suite measures
that gap.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..alu_dsl import ALUInterpreter
from ..alu_dsl.semantics import mux_select
from ..errors import MissingMachineCodeError, SimulationError
from ..hardware import PipelineSpec
from ..machine_code import naming
from ..machine_code.pairs import MachineCode
from .trace import Trace


class ReferenceStage:
    """Interpreted execution of one pipeline stage."""

    def __init__(self, spec: PipelineSpec, stage: int, values: Dict[str, int]):
        self.spec = spec
        self.stage = stage
        self.values = values
        self._stateless = ALUInterpreter(spec.stateless_alu)
        self._stateful = ALUInterpreter(spec.stateful_alu)

    # ------------------------------------------------------------------
    # Machine-code access
    # ------------------------------------------------------------------
    def _value(self, name: str) -> int:
        try:
            return int(self.values[name])
        except KeyError:
            raise MissingMachineCodeError(name) from None

    def _alu_holes(self, kind: str, slot: int, holes: Sequence[str]) -> Dict[str, int]:
        return {
            hole: self._value(naming.alu_hole_name(self.stage, kind, slot, hole)) for hole in holes
        }

    def _operands(self, kind: str, slot: int, count: int, phv: Sequence[int]) -> List[int]:
        operands = []
        for operand in range(count):
            selector = self._value(naming.input_mux_name(self.stage, kind, slot, operand))
            operands.append(phv[selector % self.spec.width])
        return operands

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, phv: Sequence[int], stage_state: List[List[int]]) -> List[int]:
        """Run the stage on one PHV's read half; returns the write-half values."""
        spec = self.spec
        stateless_outputs: List[int] = []
        for slot in range(spec.width):
            operands = self._operands(naming.STATELESS, slot, spec.stateless_alu.num_operands, phv)
            holes = self._alu_holes(naming.STATELESS, slot, spec.stateless_alu.holes)
            stateless_outputs.append(self._stateless.execute(operands, [], holes).output)

        stateful_outputs: List[int] = []
        for slot in range(spec.width):
            operands = self._operands(naming.STATEFUL, slot, spec.stateful_alu.num_operands, phv)
            holes = self._alu_holes(naming.STATEFUL, slot, spec.stateful_alu.holes)
            result = self._stateful.execute(operands, stage_state[slot], holes)
            stage_state[slot][:] = result.state
            stateful_outputs.append(result.output)

        candidates = tuple(stateless_outputs + stateful_outputs)
        outputs: List[int] = []
        for container in range(spec.width):
            selector = self._value(naming.output_mux_name(self.stage, container))
            outputs.append(mux_select(selector, candidates + (phv[container],)))
        return outputs


class ReferenceSimulator:
    """Interpreted end-to-end pipeline simulation (no dgen involved).

    Because the pipeline preserves packet order and all state is stage-local,
    end-to-end behaviour equals processing each PHV through all stages in
    sequence; the reference simulator therefore does exactly that, which also
    makes it the simplest possible statement of the pipeline's semantics.
    """

    def __init__(
        self,
        spec: PipelineSpec,
        machine_code: MachineCode,
        initial_state: Optional[List[List[List[int]]]] = None,
    ):
        self.spec = spec
        self.machine_code = machine_code
        values = machine_code.as_dict()
        self._stages = [ReferenceStage(spec, stage, values) for stage in range(spec.depth)]
        if initial_state is None:
            initial_state = [
                [[0] * spec.num_state_vars for _ in range(spec.width)] for _ in range(spec.depth)
            ]
        if len(initial_state) != spec.depth:
            raise SimulationError(f"initial state must cover {spec.depth} stages")
        self.state = [[list(alu) for alu in stage] for stage in initial_state]

    def process_phv(self, values: Sequence[int]) -> List[int]:
        """Run one PHV through every stage and return its final container values."""
        if len(values) != self.spec.width:
            raise SimulationError(
                f"PHV has {len(values)} containers, pipeline width is {self.spec.width}"
            )
        current = [int(v) for v in values]
        for stage_index, stage in enumerate(self._stages):
            current = stage.execute(current, self.state[stage_index])
        return current

    def run(self, phv_values: Sequence[Sequence[int]]) -> Trace:
        """Run a whole input trace and return the output trace."""
        trace = Trace()
        for index, values in enumerate(phv_values):
            trace.append(index, values, self.process_phv(values))
        trace.final_state = [[list(alu) for alu in stage] for stage in self.state]
        return trace
