"""Input and output traces.

"Following simulation, an output trace shows the modified PHVs and the state
vectors" (paper §3.3).  Traces are the artefacts the compiler-testing
workflow compares: the pipeline's output trace against the trace produced by
the high-level specification on the same input trace (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence


class TraceRecord(NamedTuple):
    """One PHV's journey: its identifier, input values and output values.

    A named tuple rather than a dataclass: traces hold one record per PHV,
    so record construction sits on the simulation hot path (tuple
    construction is several times cheaper than frozen-dataclass ``__init__``).
    """

    phv_id: int
    inputs: tuple
    outputs: tuple

    @property
    def num_containers(self) -> int:
        """Number of PHV containers recorded."""
        return len(self.inputs)


@dataclass
class Trace:
    """An ordered collection of :class:`TraceRecord` plus final state vectors.

    ``final_state`` is indexed ``[stage][slot][state_var]`` for pipeline
    traces; specification traces store their own state representation in
    ``spec_state`` (a plain dictionary) since a specification has no notion
    of stages.
    """

    records: List[TraceRecord] = field(default_factory=list)
    final_state: Optional[List[List[List[int]]]] = None
    spec_state: Optional[Dict[str, int]] = None

    def append(self, phv_id: int, inputs: Sequence[int], outputs: Sequence[int]) -> None:
        """Record one PHV's input and output container values."""
        self.records.append(
            TraceRecord(phv_id=phv_id, inputs=tuple(inputs), outputs=tuple(outputs))
        )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self.records[index]

    def outputs(self) -> List[tuple]:
        """All output container tuples in input order."""
        return [record.outputs for record in self.records]

    def inputs(self) -> List[tuple]:
        """All input container tuples in input order."""
        return [record.inputs for record in self.records]

    def container_series(self, container: int) -> List[int]:
        """The sequence of output values of one container across the trace."""
        return [record.outputs[container] for record in self.records]

    def format(self, limit: int = 20) -> str:
        """Human-readable rendering of the first ``limit`` records (CLI output)."""
        lines = ["phv_id  inputs -> outputs"]
        for record in self.records[:limit]:
            lines.append(f"{record.phv_id:6d}  {list(record.inputs)} -> {list(record.outputs)}")
        if len(self.records) > limit:
            lines.append(f"... ({len(self.records) - limit} more records)")
        if self.final_state is not None:
            lines.append(f"final state: {self.final_state}")
        if self.spec_state is not None:
            lines.append(f"final state: {self.spec_state}")
        return "\n".join(lines)
