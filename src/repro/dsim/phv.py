"""Packet header vectors (PHVs).

Druzhba does not model packets directly; it models PHVs — "vectors of
containers each holding a packet or metadata field" (paper §2.2).  To keep a
PHV from traversing more than one pipeline stage per simulation tick, dsim
"models a PHV in two parts: a read half and a write half" (§3.3): a stage
writes its results into the write half while the next stage reads the values
committed on the previous tick from the read half; at the beginning of every
tick the write half is moved into the read half.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..errors import SimulationError


@dataclass
class PHV:
    """A packet header vector in flight through the pipeline.

    Attributes
    ----------
    phv_id:
        Sequence number assigned by the traffic generator (input order).
    read:
        Container values visible to the stage currently holding the PHV.
    write:
        Container values produced by the stage currently holding the PHV;
        they become visible (moved into ``read``) at the start of the next
        tick.
    entered_tick:
        Simulation tick at which the PHV entered stage 0 (-1 until it does).
    """

    phv_id: int
    read: List[int]
    write: List[int] = field(default_factory=list)
    entered_tick: int = -1

    @classmethod
    def from_values(cls, phv_id: int, values: Sequence[int]) -> "PHV":
        """Create a PHV whose read half holds ``values`` (write half starts as a copy)."""
        values_list = [int(v) for v in values]
        return cls(phv_id=phv_id, read=values_list, write=list(values_list))

    @property
    def num_containers(self) -> int:
        """Number of PHV containers."""
        return len(self.read)

    def commit(self) -> None:
        """Move the write half into the read half (start-of-tick bookkeeping)."""
        if len(self.write) != len(self.read):
            raise SimulationError(
                f"PHV {self.phv_id}: write half has {len(self.write)} containers, "
                f"read half has {len(self.read)}"
            )
        self.read = list(self.write)

    def set_write(self, values: Sequence[int]) -> None:
        """Record the containers produced by the stage currently holding the PHV."""
        if len(values) != len(self.read):
            raise SimulationError(
                f"PHV {self.phv_id}: stage produced {len(values)} containers, "
                f"expected {len(self.read)}"
            )
        self.write = [int(v) for v in values]

    def snapshot(self) -> List[int]:
        """Copy of the currently committed (read-half) container values."""
        return list(self.read)
