"""dsim: the Druzhba RMT simulation component (paper §3.3).

dsim executes pipeline descriptions produced by dgen.  The traffic generator
creates random PHVs; every simulation tick a PHV enters the pipeline, PHVs in
flight advance one stage (modelled with read/write PHV halves), and the
output trace records the modified PHVs and the state vectors.
"""

from .phv import PHV
from .pipeline import Pipeline
from .reference import ReferenceSimulator, ReferenceStage
from .simulator import RMTSimulator, SimulationResult, simulate
from .trace import Trace, TraceRecord
from .traffic import (
    DEFAULT_MAX_VALUE,
    TrafficGenerator,
    choice_field,
    constant_field,
    uniform_field,
)

__all__ = [
    "PHV",
    "Pipeline",
    "ReferenceSimulator",
    "ReferenceStage",
    "RMTSimulator",
    "SimulationResult",
    "simulate",
    "Trace",
    "TraceRecord",
    "TrafficGenerator",
    "DEFAULT_MAX_VALUE",
    "uniform_field",
    "choice_field",
    "constant_field",
]
