"""dsim: the RMT simulation driver (paper §3.3).

:class:`RMTSimulator` glues the pieces together: it takes a compiled pipeline
description (from dgen), an input PHV trace (usually from the traffic
generator), runs the feedforward pipeline, and returns the output trace
together with the final state vectors.

Execution is delegated to the unified engine layer (:mod:`repro.engine`),
which provides three drivers:

* **tick** — the paper's §3.3 model: one PHV enters per tick, PHVs in flight
  advance one stage per tick with read/write-half commits.  Always
  available; the debugger records from this driver.  ``tick_accurate=True``
  forces it.
* **generic** — a sequential loop over the generated stage functions, one
  PHV at a time.  Bit-for-bit equivalent to the tick model for a
  feedforward pipeline and much faster (no per-tick allocation); available
  at every optimisation level and therefore the default below level 3.
* **fused** — the generated ``run_trace`` loop carried by descriptions
  produced at opt level 3, where the simulation driver itself is generated
  code.  The default whenever available.

The ``engine`` constructor argument pins a driver explicitly (``"tick"``,
``"generic"``, ``"fused"``) or leaves the choice to the selection rules
(``"auto"``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..engine.base import (
    ENGINE_AUTO,
    ENGINE_GENERIC,
    ENGINE_TICK,
    resolve_engine,
)
from ..engine.result import SimulationResult
from ..errors import SimulationError
from .traffic import TrafficGenerator

__all__ = ["RMTSimulator", "SimulationResult", "simulate"]


class RMTSimulator:
    """Runs PHV traces through a compiled pipeline description."""

    def __init__(
        self,
        description,
        runtime_values: Optional[Dict[str, int]] = None,
        initial_state: Optional[List[List[List[int]]]] = None,
        engine: str = ENGINE_AUTO,
    ):
        self.description = description
        self.engine = engine
        self._runtime_values = runtime_values
        self._initial_state = initial_state

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self, phv_values: Sequence[Sequence[int]], tick_accurate: bool = False
    ) -> SimulationResult:
        """Simulate the pipeline on an explicit input trace.

        The driver follows the engine layer's selection rules: ``auto``
        dispatches to the description's fused ``run_trace`` entry point when
        one exists (opt level 3) and to the generic sequential driver
        otherwise; pass ``tick_accurate=True`` to force the per-tick model
        (used by the fused-vs-tick equivalence tests and the debugger).
        """
        from ..engine import rmt as drivers

        mode = resolve_engine(
            self.engine,
            fused_available=self.description.fused_function is not None,
            tick_accurate=tick_accurate,
            context="pipeline description",
        )
        if mode == ENGINE_TICK:
            return drivers.run_tick(
                self.description, phv_values, self._runtime_values, self._initial_state_copy()
            )
        if mode == ENGINE_GENERIC:
            return drivers.run_generic(
                self.description, phv_values, self._runtime_values, self._initial_state_copy()
            )
        return drivers.run_fused(
            self.description, phv_values, self._runtime_values, self._initial_state_copy()
        )

    def run_traffic(self, generator: TrafficGenerator, count: int) -> SimulationResult:
        """Generate ``count`` random PHVs with ``generator`` and simulate them."""
        if generator.num_containers != self.description.spec.width:
            raise SimulationError(
                f"traffic generator produces {generator.num_containers} containers, "
                f"pipeline width is {self.description.spec.width}"
            )
        return self.run(generator.generate(count))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _initial_state_copy(self) -> Optional[List[List[List[int]]]]:
        if self._initial_state is None:
            return None
        return [[list(alu) for alu in stage] for stage in self._initial_state]


def simulate(
    description,
    phv_values: Sequence[Sequence[int]],
    runtime_values: Optional[Dict[str, int]] = None,
    initial_state: Optional[List[List[List[int]]]] = None,
    engine: str = ENGINE_AUTO,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`RMTSimulator`."""
    simulator = RMTSimulator(
        description,
        runtime_values=runtime_values,
        initial_state=initial_state,
        engine=engine,
    )
    return simulator.run(phv_values)
