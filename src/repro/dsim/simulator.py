"""dsim: the RMT simulation driver (paper §3.3).

:class:`RMTSimulator` glues the pieces together: it takes a compiled pipeline
description (from dgen), an input PHV trace (usually from the traffic
generator), runs the feedforward pipeline, and returns the output trace
together with the final state vectors.

Execution is delegated to the unified engine layer (:mod:`repro.engine`),
which provides three drivers:

* **tick** — the paper's §3.3 model: one PHV enters per tick, PHVs in flight
  advance one stage per tick with read/write-half commits.  Always
  available; the debugger records from this driver.  ``tick_accurate=True``
  forces it.
* **generic** — a sequential loop over the generated stage functions, one
  PHV at a time.  Bit-for-bit equivalent to the tick model for a
  feedforward pipeline and much faster (no per-tick allocation); available
  at every optimisation level and therefore the default below level 3.
* **fused** — the generated ``run_trace`` loop carried by descriptions
  produced at opt level 3, where the simulation driver itself is generated
  code.  The default whenever available.
* **sharded** — the meta-driver of :mod:`repro.engine.sharded`: the trace is
  partitioned into per-flow shards (``shard_key`` names the flow-identifying
  containers; without one, contiguous blocks valid only for state-free
  workloads), each shard runs under the fastest sequential driver — across a
  ``multiprocessing`` pool for large traces — and the results are merged
  back into input order under a state-conflict check.  ``engine="auto"``
  reaches for it automatically once the trace exceeds ``shard_threshold``
  inputs *and* sharding knobs (``shards=``/``workers=``/``shard_key=``) were
  configured, falling back to the unsharded driver when the merge detects a
  state conflict; ``engine="sharded"`` requests it explicitly and raises on
  conflict instead.

The ``engine`` constructor argument pins a driver explicitly (``"tick"``,
``"generic"``, ``"fused"``, ``"sharded"``) or leaves the choice to the
selection rules (``"auto"``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..engine.base import (
    DEFAULT_SHARD_AUTO_THRESHOLD,
    ENGINE_AUTO,
    ENGINE_FUSED,
    ENGINE_GENERIC,
    ENGINE_SHARDED,
    ENGINE_TICK,
    resolve_engine,
)
from ..engine.result import SimulationResult
from ..errors import SimulationError
from .traffic import TrafficGenerator

__all__ = ["RMTSimulator", "SimulationResult", "simulate"]


class RMTSimulator:
    """Runs PHV traces through a compiled pipeline description.

    ``shards``/``workers``/``shard_key`` configure the sharded meta-driver
    (see the module docstring); ``shard_threshold`` is the input count at
    which ``engine="auto"`` starts sharding, ``shard_pool_threshold`` the
    count below which shards run in process rather than across a pool, and
    ``transport`` how shard data crosses the pool boundary (``"pickle"``,
    the default, or ``"shm"`` for flat shared-memory buffers — see
    :mod:`repro.engine.transport`).
    """

    def __init__(
        self,
        description,
        runtime_values: Optional[Dict[str, int]] = None,
        initial_state: Optional[List[List[List[int]]]] = None,
        engine: str = ENGINE_AUTO,
        shards: Optional[int] = None,
        workers: Optional[int] = None,
        shard_key: Optional[Sequence[int]] = None,
        shard_threshold: int = DEFAULT_SHARD_AUTO_THRESHOLD,
        shard_pool_threshold: Optional[int] = None,
        transport: Optional[str] = None,
    ):
        from ..engine.transport import resolve_transport

        self.description = description
        self.engine = engine
        self._runtime_values = runtime_values
        self._initial_state = initial_state
        if shards is not None and shards < 1:
            raise SimulationError(f"shard count must be at least 1, got {shards}")
        if workers is not None and workers < 1:
            raise SimulationError(f"worker count must be at least 1, got {workers}")
        self.shards = shards
        self.workers = workers
        self.shard_key = shard_key
        self.shard_threshold = shard_threshold
        self.shard_pool_threshold = shard_pool_threshold
        # Resolved eagerly so an invalid transport name fails at construction.
        self.transport = resolve_transport(transport)
        # Set once a conflict forced a fallback: auto stops attempting the
        # doomed sharded run (and its full-trace rerun) for this simulator.
        self._auto_shard_conflict = False

    def _sharding_configured(self) -> bool:
        return (
            self.shards is not None
            or self.workers is not None
            or self.shard_key is not None
            or self.engine == ENGINE_SHARDED
        )

    def _sharded_driver(self):
        from ..engine import sharded

        return sharded.ShardedRmtDriver(
            self.description,
            runtime_values=self._runtime_values,
            initial_state=self._initial_state_copy(),
            shards=self.shards if self.shards is not None else sharded.DEFAULT_SHARDS,
            workers=self.workers,
            key=self.shard_key,
            on_conflict="raise",
            pool_threshold=(
                self.shard_pool_threshold
                if self.shard_pool_threshold is not None
                else sharded.DEFAULT_POOL_THRESHOLD
            ),
            transport=self.transport,
        )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self, phv_values: Sequence[Sequence[int]], tick_accurate: bool = False
    ) -> SimulationResult:
        """Simulate the pipeline on an explicit input trace.

        The driver follows the engine layer's selection rules: ``auto``
        dispatches to the description's fused ``run_trace`` entry point when
        one exists (opt level 3) and to the generic sequential driver
        otherwise; pass ``tick_accurate=True`` to force the per-tick model
        (used by the fused-vs-tick equivalence tests and the debugger).
        """
        from ..engine import rmt as drivers

        sharding = self._sharding_configured()
        mode = resolve_engine(
            self.engine,
            fused_available=self.description.fused_function is not None,
            tick_accurate=tick_accurate,
            context="pipeline description",
            sharded_available=sharding,
            # A remembered conflict disables the auto selection (input size
            # unknown) without making an explicit request unavailable.
            input_size=(
                len(phv_values) if sharding and not self._auto_shard_conflict else None
            ),
            shard_threshold=self.shard_threshold,
        )
        if mode == ENGINE_SHARDED:
            from ..engine.sharded import ShardStateConflictError

            driver = self._sharded_driver()
            if self.engine != ENGINE_AUTO:
                return driver.run(phv_values)
            try:
                return driver.run(phv_values)
            except ShardStateConflictError:
                # Remember the conflict so later auto runs skip the doomed
                # sharded attempt, and fall through to the unsharded driver.
                self._auto_shard_conflict = True
                mode = (
                    ENGINE_FUSED
                    if self.description.fused_function is not None
                    else ENGINE_GENERIC
                )
        if mode == ENGINE_TICK:
            return drivers.run_tick(
                self.description, phv_values, self._runtime_values, self._initial_state_copy()
            )
        if mode == ENGINE_GENERIC:
            return drivers.run_generic(
                self.description, phv_values, self._runtime_values, self._initial_state_copy()
            )
        return drivers.run_fused(
            self.description, phv_values, self._runtime_values, self._initial_state_copy()
        )

    def run_traffic(self, generator: TrafficGenerator, count: int) -> SimulationResult:
        """Generate ``count`` random PHVs with ``generator`` and simulate them."""
        if generator.num_containers != self.description.spec.width:
            raise SimulationError(
                f"traffic generator produces {generator.num_containers} containers, "
                f"pipeline width is {self.description.spec.width}"
            )
        return self.run(generator.generate(count))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _initial_state_copy(self) -> Optional[List[List[List[int]]]]:
        if self._initial_state is None:
            return None
        return [[list(alu) for alu in stage] for stage in self._initial_state]


def simulate(
    description,
    phv_values: Sequence[Sequence[int]],
    runtime_values: Optional[Dict[str, int]] = None,
    initial_state: Optional[List[List[List[int]]]] = None,
    engine: str = ENGINE_AUTO,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    shard_key: Optional[Sequence[int]] = None,
    transport: Optional[str] = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`RMTSimulator`."""
    simulator = RMTSimulator(
        description,
        runtime_values=runtime_values,
        initial_state=initial_state,
        engine=engine,
        shards=shards,
        workers=workers,
        shard_key=shard_key,
        transport=transport,
    )
    return simulator.run(phv_values)
