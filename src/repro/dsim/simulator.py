"""dsim: the RMT simulation driver (paper §3.3).

:class:`RMTSimulator` glues the pieces together: it takes a compiled pipeline
description (from dgen), an input PHV trace (usually from the traffic
generator), runs the feedforward pipeline, and returns the output trace
together with the final state vectors.

Two execution modes exist:

* **tick-accurate** — the paper's §3.3 model: one PHV enters per tick, PHVs
  in flight advance one stage per tick with read/write-half commits.  Always
  available; the debugger records from this mode.
* **fused** — when the description was generated at opt level 3 it carries a
  generated ``run_trace`` loop, and :meth:`RMTSimulator.run` dispatches to it
  instead of building a :class:`Pipeline`.  For a feedforward pipeline the
  two modes are bit-for-bit equivalent (each stage's state is touched in PHV
  arrival order either way), but the fused mode skips every per-tick
  allocation, which is most of the runtime at opt level 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..dgen.emit import PipelineDescription
from ..errors import SimulationError
from .phv import PHV
from .pipeline import Pipeline
from .trace import Trace, TraceRecord
from .traffic import TrafficGenerator


@dataclass
class SimulationResult:
    """Everything a simulation run produces.

    Attributes
    ----------
    input_trace:
        The PHV values fed into the pipeline, in input order.
    output_trace:
        The output trace: one record per input PHV (same order), plus the
        final per-stage state vectors.
    ticks:
        Number of simulation ticks executed (inputs + pipeline drain).
    """

    input_trace: List[List[int]]
    output_trace: Trace
    ticks: int

    @property
    def outputs(self) -> List[tuple]:
        """Output container tuples in input order."""
        return self.output_trace.outputs()

    @property
    def final_state(self) -> Optional[List[List[List[int]]]]:
        """Final state vectors, indexed ``[stage][slot][state_var]``."""
        return self.output_trace.final_state


class RMTSimulator:
    """Runs PHV traces through a compiled pipeline description."""

    def __init__(
        self,
        description: PipelineDescription,
        runtime_values: Optional[Dict[str, int]] = None,
        initial_state: Optional[List[List[List[int]]]] = None,
    ):
        self.description = description
        self._runtime_values = runtime_values
        self._initial_state = initial_state

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self, phv_values: Sequence[Sequence[int]], tick_accurate: bool = False
    ) -> SimulationResult:
        """Simulate the pipeline on an explicit input trace.

        Dispatches to the description's fused ``run_trace`` entry point when
        one exists (opt level 3); pass ``tick_accurate=True`` to force the
        per-tick model (used by the fused-vs-tick equivalence tests).
        """
        fused = None if tick_accurate else self.description.fused_function
        if fused is not None:
            return self._run_fused(fused, phv_values)
        pipeline = Pipeline(
            self.description,
            runtime_values=self._runtime_values,
            initial_state=self._initial_state_copy(),
        )
        inputs = [list(values) for values in phv_values]
        exited: List[PHV] = pipeline.process(inputs)
        if len(exited) != len(inputs):
            raise SimulationError(
                f"pipeline emitted {len(exited)} PHVs for {len(inputs)} inputs"
            )

        trace = Trace()
        for phv, input_values in zip(exited, inputs):
            trace.append(phv.phv_id, input_values, phv.snapshot())
        trace.final_state = pipeline.state_snapshot()
        return SimulationResult(
            input_trace=inputs,
            output_trace=trace,
            ticks=pipeline.current_tick,
        )

    def run_traffic(self, generator: TrafficGenerator, count: int) -> SimulationResult:
        """Generate ``count`` random PHVs with ``generator`` and simulate them."""
        if generator.num_containers != self.description.spec.width:
            raise SimulationError(
                f"traffic generator produces {generator.num_containers} containers, "
                f"pipeline width is {self.description.spec.width}"
            )
        return self.run(generator.generate(count))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _run_fused(
        self, fused: Callable, phv_values: Sequence[Sequence[int]]
    ) -> SimulationResult:
        """Fast path: hand the whole input trace to the generated trace loop."""
        width = self.description.spec.width
        inputs: List[List[int]] = [list(values) for values in phv_values]
        if set(map(len, inputs)) - {width}:
            index, values = next(
                (i, v) for i, v in enumerate(inputs) if len(v) != width
            )
            raise SimulationError(
                f"PHV {index} has {len(values)} containers, pipeline width is {width}"
            )
        work: List[List[int]] = [list(map(int, values)) for values in inputs]

        state = self._initial_state_copy()
        if state is None:
            state = self.description.initial_state()
        runtime_values = self._runtime_values
        if runtime_values is None:
            runtime_values = self.description.runtime_values()

        outputs = fused(work, state, runtime_values)

        trace = Trace()
        trace.records = list(
            map(TraceRecord, range(len(inputs)), map(tuple, inputs), map(tuple, outputs))
        )
        trace.final_state = state
        # The tick model runs one tick per input plus ``depth`` drain ticks.
        ticks = len(inputs) + self.description.spec.depth if inputs else 0
        return SimulationResult(input_trace=inputs, output_trace=trace, ticks=ticks)

    def _initial_state_copy(self) -> Optional[List[List[List[int]]]]:
        if self._initial_state is None:
            return None
        return [[list(alu) for alu in stage] for stage in self._initial_state]


def simulate(
    description: PipelineDescription,
    phv_values: Sequence[Sequence[int]],
    runtime_values: Optional[Dict[str, int]] = None,
    initial_state: Optional[List[List[List[int]]]] = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`RMTSimulator`."""
    simulator = RMTSimulator(
        description,
        runtime_values=runtime_values,
        initial_state=initial_state,
    )
    return simulator.run(phv_values)
