"""dsim: the RMT simulation driver (paper §3.3).

:class:`RMTSimulator` glues the pieces together: it takes a compiled pipeline
description (from dgen), an input PHV trace (usually from the traffic
generator), runs the feedforward pipeline tick by tick, and returns the
output trace together with the final state vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..dgen.emit import PipelineDescription
from ..errors import SimulationError
from .phv import PHV
from .pipeline import Pipeline
from .trace import Trace
from .traffic import TrafficGenerator


@dataclass
class SimulationResult:
    """Everything a simulation run produces.

    Attributes
    ----------
    input_trace:
        The PHV values fed into the pipeline, in input order.
    output_trace:
        The output trace: one record per input PHV (same order), plus the
        final per-stage state vectors.
    ticks:
        Number of simulation ticks executed (inputs + pipeline drain).
    """

    input_trace: List[List[int]]
    output_trace: Trace
    ticks: int

    @property
    def outputs(self) -> List[tuple]:
        """Output container tuples in input order."""
        return self.output_trace.outputs()

    @property
    def final_state(self) -> Optional[List[List[List[int]]]]:
        """Final state vectors, indexed ``[stage][slot][state_var]``."""
        return self.output_trace.final_state


class RMTSimulator:
    """Runs PHV traces through a compiled pipeline description."""

    def __init__(
        self,
        description: PipelineDescription,
        runtime_values: Optional[Dict[str, int]] = None,
        initial_state: Optional[List[List[List[int]]]] = None,
    ):
        self.description = description
        self._runtime_values = runtime_values
        self._initial_state = initial_state

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, phv_values: Sequence[Sequence[int]]) -> SimulationResult:
        """Simulate the pipeline on an explicit input trace."""
        pipeline = Pipeline(
            self.description,
            runtime_values=self._runtime_values,
            initial_state=self._initial_state_copy(),
        )
        inputs = [list(values) for values in phv_values]
        exited: List[PHV] = pipeline.process(inputs)
        if len(exited) != len(inputs):
            raise SimulationError(
                f"pipeline emitted {len(exited)} PHVs for {len(inputs)} inputs"
            )

        trace = Trace()
        for phv, input_values in zip(exited, inputs):
            trace.append(phv.phv_id, input_values, phv.snapshot())
        trace.final_state = pipeline.state_snapshot()
        return SimulationResult(
            input_trace=inputs,
            output_trace=trace,
            ticks=pipeline.current_tick,
        )

    def run_traffic(self, generator: TrafficGenerator, count: int) -> SimulationResult:
        """Generate ``count`` random PHVs with ``generator`` and simulate them."""
        if generator.num_containers != self.description.spec.width:
            raise SimulationError(
                f"traffic generator produces {generator.num_containers} containers, "
                f"pipeline width is {self.description.spec.width}"
            )
        return self.run(generator.generate(count))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _initial_state_copy(self) -> Optional[List[List[List[int]]]]:
        if self._initial_state is None:
            return None
        return [[list(alu) for alu in stage] for stage in self._initial_state]


def simulate(
    description: PipelineDescription,
    phv_values: Sequence[Sequence[int]],
    runtime_values: Optional[Dict[str, int]] = None,
    initial_state: Optional[List[List[List[int]]]] = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`RMTSimulator`."""
    simulator = RMTSimulator(
        description,
        runtime_values=runtime_values,
        initial_state=initial_state,
    )
    return simulator.run(phv_values)
