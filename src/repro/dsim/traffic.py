"""Traffic generation for RMT simulation — compatibility shim.

The PHV traffic generator now lives in :mod:`repro.traffic`, the single
module serving both execution engines (the dRMT packet generator included);
this module re-exports the RMT-facing names so existing imports keep
working.
"""

from __future__ import annotations

from ..traffic import (
    DEFAULT_MAX_VALUE,
    FieldGenerator,
    TrafficGenerator,
    choice_field,
    constant_field,
    uniform_field,
)

__all__ = [
    "DEFAULT_MAX_VALUE",
    "FieldGenerator",
    "TrafficGenerator",
    "uniform_field",
    "choice_field",
    "constant_field",
]
