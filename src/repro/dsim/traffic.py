"""Traffic generation for RMT simulation.

"The traffic generator creates a sequence of PHVs where every PHV consists of
random unsigned integers" (paper §3.3).  The generator here is seeded and
therefore reproducible; the default value range is 10 bits wide because the
paper's case study (§5.2) fuzzes with 10-bit inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

from ..errors import SimulationError

#: Default maximum container value: 10-bit unsigned integers (paper §5.2).
DEFAULT_MAX_VALUE = (1 << 10) - 1


@dataclass
class TrafficGenerator:
    """Deterministic random PHV generator.

    Parameters
    ----------
    num_containers:
        Containers per PHV (the pipeline width).
    seed:
        PRNG seed; two generators built with the same parameters produce the
        same sequence, which the fuzzing workflow relies on to replay
        counterexamples.
    min_value, max_value:
        Inclusive bounds of the uniform distribution each container value is
        drawn from.
    field_generators:
        Optional per-container override: a callable taking the PRNG and
        returning the value for that container.  Used by the benchmark
        programs to generate realistic field distributions (e.g. a small set
        of flow identifiers for the flowlet workload).
    """

    num_containers: int
    seed: int = 0
    min_value: int = 0
    max_value: int = DEFAULT_MAX_VALUE
    field_generators: Optional[Sequence[Optional[Callable[[random.Random], int]]]] = None

    def __post_init__(self) -> None:
        if self.num_containers < 1:
            raise SimulationError("traffic generator needs at least one container")
        if self.min_value > self.max_value:
            raise SimulationError(
                f"invalid value range [{self.min_value}, {self.max_value}]"
            )
        if self.field_generators is not None and len(self.field_generators) != self.num_containers:
            raise SimulationError(
                "field_generators must provide one entry (or None) per container"
            )

    def generate(self, count: int) -> List[List[int]]:
        """Generate ``count`` PHVs worth of container values."""
        return list(self.iter_phvs(count))

    def iter_phvs(self, count: int) -> Iterator[List[int]]:
        """Yield ``count`` PHVs lazily (useful for very long simulations)."""
        if count < 0:
            raise SimulationError("count must be non-negative")
        rng = random.Random(self.seed)
        for _ in range(count):
            yield self._one_phv(rng)

    def _one_phv(self, rng: random.Random) -> List[int]:
        values: List[int] = []
        for container in range(self.num_containers):
            generator = None
            if self.field_generators is not None:
                generator = self.field_generators[container]
            if generator is not None:
                values.append(int(generator(rng)))
            else:
                values.append(rng.randint(self.min_value, self.max_value))
        return values


def uniform_field(low: int, high: int) -> Callable[[random.Random], int]:
    """Field generator drawing uniformly from ``[low, high]``."""
    return lambda rng: rng.randint(low, high)


def choice_field(choices: Sequence[int]) -> Callable[[random.Random], int]:
    """Field generator drawing uniformly from an explicit set of values.

    Handy for fields such as flow identifiers or ports where a workload only
    exercises a small population (e.g. the stateful-firewall and flowlet
    benchmarks).
    """
    values = [int(choice) for choice in choices]
    if not values:
        raise SimulationError("choice_field needs at least one choice")
    return lambda rng: rng.choice(values)


def constant_field(value: int) -> Callable[[random.Random], int]:
    """Field generator always returning ``value`` (e.g. a fixed protocol number)."""
    return lambda rng: int(value)
