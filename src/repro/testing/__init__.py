"""Compiler-testing workflow (paper §3.3, Figure 5, §5.2).

High-level specifications, output-trace equivalence checking, the fuzzing
driver and the failure-classification report objects.
"""

from .equivalence import EquivalenceReport, Mismatch, compare_traces
from .fuzzer import FuzzConfig, FuzzTester, fuzz_machine_code
from .report import CampaignSummary, FailureClass, FuzzOutcome
from .spec import FunctionSpecification, PassthroughSpecification, Specification

__all__ = [
    "Specification",
    "FunctionSpecification",
    "PassthroughSpecification",
    "compare_traces",
    "EquivalenceReport",
    "Mismatch",
    "FuzzTester",
    "FuzzConfig",
    "fuzz_machine_code",
    "FuzzOutcome",
    "FailureClass",
    "CampaignSummary",
]
