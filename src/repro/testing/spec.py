"""High-level specifications (the testing oracle of Figure 5).

A *specification* captures "the intended algorithmic behavior on both PHVs
and state values" (paper §3.3).  It consumes the same input trace that the
pipeline consumes and produces its own expected output trace; the fuzzing
workflow then asserts that the two traces are equivalent.

Because PHVs traverse a feedforward pipeline in order and all switch state is
stage-local, the end-to-end behaviour of a pipeline equals processing the
PHVs one at a time, in order — so a specification is simply a sequential
function from (PHV values, mutable state) to output PHV values.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..dsim.trace import Trace
from ..errors import SpecificationError


class Specification(ABC):
    """Interface of a high-level specification.

    Subclasses implement :meth:`initial_state` and :meth:`process`; the base
    class provides :meth:`run`, which turns an input trace into the expected
    output trace.
    """

    #: Number of PHV containers the specification expects per input PHV.
    num_containers: int = 0

    #: Containers whose values the specification actually defines.  The
    #: equivalence check compares only these containers; the pipeline is free
    #: to scribble anything into the rest (they are scratch space for the
    #: compiler).  ``None`` means "compare every container".
    relevant_containers: Optional[Sequence[int]] = None

    @abstractmethod
    def initial_state(self) -> Dict[str, int]:
        """Fresh algorithm state (e.g. ``{"count": 0}``)."""

    @abstractmethod
    def process(self, phv: Sequence[int], state: Dict[str, int]) -> List[int]:
        """Process one PHV: mutate ``state`` and return the expected output containers."""

    def run(self, input_trace: Sequence[Sequence[int]]) -> Trace:
        """Run the specification over a whole input trace."""
        state = self.initial_state()
        trace = Trace()
        for index, phv in enumerate(input_trace):
            if self.num_containers and len(phv) != self.num_containers:
                raise SpecificationError(
                    f"specification expects {self.num_containers} containers, "
                    f"PHV {index} has {len(phv)}"
                )
            outputs = self.process(list(phv), state)
            if self.num_containers and len(outputs) != self.num_containers:
                raise SpecificationError(
                    f"specification produced {len(outputs)} containers for PHV {index}, "
                    f"expected {self.num_containers}"
                )
            trace.append(index, phv, outputs)
        trace.spec_state = dict(state)
        return trace


@dataclass
class FunctionSpecification(Specification):
    """Wrap a plain function as a specification.

    ``function(phv, state) -> outputs`` receives a copy of the PHV container
    values and the mutable state dictionary, and returns the expected output
    container values.  This is the most convenient way to express the
    "program spec" box of Figure 5 in Python.
    """

    function: Callable[[List[int], Dict[str, int]], List[int]]
    num_containers: int = 0
    state_template: Dict[str, int] = field(default_factory=dict)
    relevant_containers: Optional[Sequence[int]] = None
    name: str = "spec"

    def initial_state(self) -> Dict[str, int]:
        return dict(self.state_template)

    def process(self, phv: Sequence[int], state: Dict[str, int]) -> List[int]:
        outputs = self.function(list(phv), state)
        return [int(v) for v in outputs]


@dataclass
class PassthroughSpecification(Specification):
    """The identity specification: every container passes through unchanged.

    Matches a pipeline configured with pass-through output multiplexers
    everywhere (the :meth:`repro.hardware.PipelineSpec.passthrough_machine_code`
    baseline); used in tests and as the simplest possible example.
    """

    num_containers: int = 1
    relevant_containers: Optional[Sequence[int]] = None

    def initial_state(self) -> Dict[str, int]:
        return {}

    def process(self, phv: Sequence[int], state: Dict[str, int]) -> List[int]:
        return list(phv)
