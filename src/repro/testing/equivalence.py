"""Output-trace equivalence checking.

"Assertions check the equivalence of the output traces to determine if the
behaviors of the Druzhba pipeline and the specification match" (paper §3.3).
This module implements that check and produces a structured report of every
disagreement so that compiler developers can see exactly which PHV, which
container and which values diverged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..dsim.trace import Trace
from ..errors import EquivalenceError


@dataclass(frozen=True)
class Mismatch:
    """A single disagreement between the pipeline trace and the spec trace."""

    phv_id: int
    container: int
    expected: int
    actual: int
    inputs: tuple

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"PHV {self.phv_id}: container {self.container} expected {self.expected}, "
            f"pipeline produced {self.actual} (inputs {list(self.inputs)})"
        )


@dataclass
class EquivalenceReport:
    """Result of comparing a pipeline output trace against a specification trace.

    ``mismatch_count`` counts every disagreement seen, including those not
    materialised as :class:`Mismatch` objects (count-only mode) or skipped by
    an early exit (``limit``); ``truncated`` records that the comparison
    stopped early, in which case ``mismatch_count`` is a lower bound.
    """

    compared_phvs: int
    compared_containers: Sequence[int]
    mismatches: List[Mismatch] = field(default_factory=list)
    mismatch_count: int = 0
    truncated: bool = False

    @property
    def equivalent(self) -> bool:
        """True when the two traces agree on every compared container."""
        return self.mismatch_count == 0 and not self.mismatches

    @property
    def first_mismatch(self) -> Optional[Mismatch]:
        """The earliest mismatch (the fuzzing counterexample), if any."""
        return self.mismatches[0] if self.mismatches else None

    def describe(self, limit: int = 10) -> str:
        """Multi-line summary suitable for CLI output and assertion messages."""
        if self.equivalent:
            return (
                f"traces equivalent over {self.compared_phvs} PHVs "
                f"(containers {list(self.compared_containers)})"
            )
        count = max(self.mismatch_count, len(self.mismatches))
        lines = [
            f"{count}{'+' if self.truncated else ''} mismatch(es) over "
            f"{self.compared_phvs} PHVs (containers {list(self.compared_containers)}):"
        ]
        lines.extend(mismatch.describe() for mismatch in self.mismatches[:limit])
        if len(self.mismatches) > limit:
            lines.append(f"... ({len(self.mismatches) - limit} more)")
        return "\n".join(lines)

    def assert_equivalent(self) -> None:
        """Raise :class:`EquivalenceError` when the traces diverge."""
        if not self.equivalent:
            raise EquivalenceError(self.describe())


def compare_traces(
    pipeline_trace: Trace,
    spec_trace: Trace,
    containers: Optional[Sequence[int]] = None,
    count_only: bool = False,
    limit: Optional[int] = None,
) -> EquivalenceReport:
    """Compare two output traces record by record.

    ``containers`` restricts the comparison to the specification's relevant
    containers; when omitted every container is compared.  The traces must
    describe the same number of PHVs (they were produced from the same input
    trace).

    Two knobs serve hot loops that only need a verdict or a first
    counterexample rather than the full mismatch list (the bounded
    exhaustive checks in :mod:`repro.verification.bounded` screen up to
    100k traces this way; the CEGIS inner search uses the same idea via its
    own :class:`repro.chipmunk.synthesis._CandidateEvaluator`):

    * ``count_only`` skips building :class:`Mismatch` objects; only
      ``mismatch_count`` is filled in.
    * ``limit`` stops the comparison once more than ``limit`` mismatches have
      been seen.  ``limit=0`` stops at the very first mismatch — which is
      still materialised unless ``count_only`` is set, so it doubles as a
      cheap "find one counterexample" mode.
    """
    if len(pipeline_trace) != len(spec_trace):
        raise EquivalenceError(
            f"trace lengths differ: pipeline={len(pipeline_trace)}, spec={len(spec_trace)}"
        )
    if containers is None:
        width = pipeline_trace[0].num_containers if len(pipeline_trace) else 0
        containers = list(range(width))

    report = EquivalenceReport(compared_phvs=len(pipeline_trace), compared_containers=list(containers))
    for pipeline_record, spec_record in zip(pipeline_trace, spec_trace):
        outputs = pipeline_record.outputs
        expected_outputs = spec_record.outputs
        for container in containers:
            actual = outputs[container]
            expected = expected_outputs[container]
            if actual != expected:
                report.mismatch_count += 1
                if not count_only:
                    report.mismatches.append(
                        Mismatch(
                            phv_id=pipeline_record.phv_id,
                            container=container,
                            expected=expected,
                            actual=actual,
                            inputs=pipeline_record.inputs,
                        )
                    )
                if limit is not None and report.mismatch_count > limit:
                    report.truncated = True
                    return report
    return report
