"""Output-trace equivalence checking.

"Assertions check the equivalence of the output traces to determine if the
behaviors of the Druzhba pipeline and the specification match" (paper §3.3).
This module implements that check and produces a structured report of every
disagreement so that compiler developers can see exactly which PHV, which
container and which values diverged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..dsim.trace import Trace
from ..errors import EquivalenceError


@dataclass(frozen=True)
class Mismatch:
    """A single disagreement between the pipeline trace and the spec trace."""

    phv_id: int
    container: int
    expected: int
    actual: int
    inputs: tuple

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"PHV {self.phv_id}: container {self.container} expected {self.expected}, "
            f"pipeline produced {self.actual} (inputs {list(self.inputs)})"
        )


@dataclass
class EquivalenceReport:
    """Result of comparing a pipeline output trace against a specification trace."""

    compared_phvs: int
    compared_containers: Sequence[int]
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        """True when the two traces agree on every compared container."""
        return not self.mismatches

    @property
    def first_mismatch(self) -> Optional[Mismatch]:
        """The earliest mismatch (the fuzzing counterexample), if any."""
        return self.mismatches[0] if self.mismatches else None

    def describe(self, limit: int = 10) -> str:
        """Multi-line summary suitable for CLI output and assertion messages."""
        if self.equivalent:
            return (
                f"traces equivalent over {self.compared_phvs} PHVs "
                f"(containers {list(self.compared_containers)})"
            )
        lines = [
            f"{len(self.mismatches)} mismatch(es) over {self.compared_phvs} PHVs "
            f"(containers {list(self.compared_containers)}):"
        ]
        lines.extend(mismatch.describe() for mismatch in self.mismatches[:limit])
        if len(self.mismatches) > limit:
            lines.append(f"... ({len(self.mismatches) - limit} more)")
        return "\n".join(lines)

    def assert_equivalent(self) -> None:
        """Raise :class:`EquivalenceError` when the traces diverge."""
        if not self.equivalent:
            raise EquivalenceError(self.describe())


def compare_traces(
    pipeline_trace: Trace,
    spec_trace: Trace,
    containers: Optional[Sequence[int]] = None,
) -> EquivalenceReport:
    """Compare two output traces record by record.

    ``containers`` restricts the comparison to the specification's relevant
    containers; when omitted every container is compared.  The traces must
    describe the same number of PHVs (they were produced from the same input
    trace).
    """
    if len(pipeline_trace) != len(spec_trace):
        raise EquivalenceError(
            f"trace lengths differ: pipeline={len(pipeline_trace)}, spec={len(spec_trace)}"
        )
    if containers is None:
        width = pipeline_trace[0].num_containers if len(pipeline_trace) else 0
        containers = list(range(width))

    report = EquivalenceReport(compared_phvs=len(pipeline_trace), compared_containers=list(containers))
    for pipeline_record, spec_record in zip(pipeline_trace, spec_trace):
        for container in containers:
            actual = pipeline_record.outputs[container]
            expected = spec_record.outputs[container]
            if actual != expected:
                report.mismatches.append(
                    Mismatch(
                        phv_id=pipeline_record.phv_id,
                        container=container,
                        expected=expected,
                        actual=actual,
                        inputs=pipeline_record.inputs,
                    )
                )
    return report
