"""Fuzzing-based compiler testing (the workflow of Figure 5).

A :class:`FuzzTester` owns a pipeline configuration and a high-level
specification.  Given a machine-code program (typically produced by a
compiler under test), it:

1. validates that every machine-code pair the pipeline expects is present;
2. generates a pipeline description with dgen at the requested optimisation
   level and an input trace of random PHVs with the traffic generator;
3. simulates the pipeline and runs the specification on the same input
   trace;
4. asserts equivalence of the two output traces, and — when they diverge —
   classifies the failure (output mismatch vs. limited-value-range, the
   paper's §5.2 failure classes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .. import dgen
from ..dsim import DEFAULT_MAX_VALUE, RMTSimulator, TrafficGenerator
from ..errors import DruzhbaError, MissingMachineCodeError
from ..hardware import PipelineSpec
from ..machine_code.pairs import MachineCode
from .equivalence import compare_traces
from .report import CampaignSummary, FailureClass, FuzzOutcome
from .spec import Specification


@dataclass
class FuzzConfig:
    """Knobs of a fuzzing run.

    ``small_max_value`` is the threshold used to distinguish the paper's
    "insufficient machine code values" failures: a program that matches the
    specification for container values up to ``small_max_value`` but diverges
    over the full range is classified as :attr:`FailureClass.VALUE_RANGE`.
    """

    num_phvs: int = 1000
    seed: int = 0
    min_value: int = 0
    max_value: int = DEFAULT_MAX_VALUE
    small_max_value: int = 100
    opt_level: int = dgen.OPT_SCC_INLINE
    #: Execution engine for the simulation leg ("auto" picks the fastest
    #: available driver: fused at opt level 3, the generic sequential driver
    #: otherwise; "tick" forces the paper's per-tick model).
    engine: str = "auto"


class FuzzTester:
    """Fuzz-tests machine-code programs against a high-level specification."""

    def __init__(
        self,
        pipeline_spec: PipelineSpec,
        specification: Specification,
        config: Optional[FuzzConfig] = None,
        traffic_generator: Optional[TrafficGenerator] = None,
        initial_state: Optional[List[List[List[int]]]] = None,
    ):
        self.pipeline_spec = pipeline_spec
        self.specification = specification
        self.config = config or FuzzConfig()
        self._traffic_generator = traffic_generator
        self._initial_state = initial_state

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def test(self, machine_code: MachineCode) -> FuzzOutcome:
        """Fuzz one machine-code program and classify the outcome."""
        config = self.config
        missing = self.pipeline_spec.validate_machine_code(machine_code)
        if missing:
            return FuzzOutcome(
                failure_class=FailureClass.MISSING_MACHINE_CODE,
                phvs_tested=0,
                missing_pairs=missing,
                seed=config.seed,
                max_value=config.max_value,
            )

        outcome = self._run_once(machine_code, config.max_value, config.seed)
        if outcome.failure_class is FailureClass.OUTPUT_MISMATCH:
            # Distinguish "wrong everywhere" from "only correct on small values"
            # (paper §5.2): re-fuzz with values restricted to the small range.
            small = self._run_once(machine_code, config.small_max_value, config.seed + 1)
            if small.failure_class is FailureClass.CORRECT:
                outcome.failure_class = FailureClass.VALUE_RANGE
        return outcome

    def test_all_levels(self, machine_code: MachineCode) -> Dict[int, FuzzOutcome]:
        """Fuzz the same machine code at every dgen optimisation level.

        Because the optimisation passes must not change behaviour, a compiler
        bug shows up identically at every level; a disagreement *between*
        levels would indicate a dgen bug instead.  Both properties are useful
        to compiler developers, so this returns the per-level outcomes.
        """
        outcomes: Dict[int, FuzzOutcome] = {}
        original_level = self.config.opt_level
        try:
            for level in dgen.OPT_LEVELS:
                self.config.opt_level = level
                outcomes[level] = self.test(machine_code)
        finally:
            self.config.opt_level = original_level
        return outcomes

    def campaign(self, machine_codes: Sequence[MachineCode]) -> CampaignSummary:
        """Fuzz a corpus of machine-code programs and aggregate the outcomes."""
        summary = CampaignSummary()
        for machine_code in machine_codes:
            summary.add(self.test(machine_code))
        return summary

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _make_traffic(self, max_value: int, seed: int) -> TrafficGenerator:
        base = self._traffic_generator
        if base is not None:
            return TrafficGenerator(
                num_containers=base.num_containers,
                seed=seed,
                min_value=base.min_value,
                max_value=min(base.max_value, max_value),
                field_generators=base.field_generators,
            )
        return TrafficGenerator(
            num_containers=self.pipeline_spec.width,
            seed=seed,
            min_value=self.config.min_value,
            max_value=max_value,
        )

    def _run_once(self, machine_code: MachineCode, max_value: int, seed: int) -> FuzzOutcome:
        config = self.config
        try:
            description = dgen.generate(
                self.pipeline_spec, machine_code, opt_level=config.opt_level
            )
        except MissingMachineCodeError as error:
            return FuzzOutcome(
                failure_class=FailureClass.MISSING_MACHINE_CODE,
                phvs_tested=0,
                missing_pairs=[error.name],
                seed=seed,
                max_value=max_value,
            )
        except DruzhbaError as error:
            return FuzzOutcome(
                failure_class=FailureClass.SIMULATION_ERROR,
                phvs_tested=0,
                error_message=str(error),
                seed=seed,
                max_value=max_value,
            )

        traffic = self._make_traffic(max_value, seed)
        inputs = traffic.generate(config.num_phvs)
        simulator = RMTSimulator(
            description, initial_state=self._copy_initial_state(), engine=config.engine
        )
        try:
            result = simulator.run(inputs)
        except MissingMachineCodeError as error:
            return FuzzOutcome(
                failure_class=FailureClass.MISSING_MACHINE_CODE,
                phvs_tested=0,
                missing_pairs=[error.name],
                seed=seed,
                max_value=max_value,
            )
        except DruzhbaError as error:
            return FuzzOutcome(
                failure_class=FailureClass.SIMULATION_ERROR,
                phvs_tested=0,
                error_message=str(error),
                seed=seed,
                max_value=max_value,
            )

        spec_trace = self.specification.run(inputs)
        report = compare_traces(
            result.output_trace,
            spec_trace,
            containers=self.specification.relevant_containers,
        )
        failure_class = FailureClass.CORRECT if report.equivalent else FailureClass.OUTPUT_MISMATCH
        return FuzzOutcome(
            failure_class=failure_class,
            phvs_tested=config.num_phvs,
            report=report,
            seed=seed,
            max_value=max_value,
        )

    def _copy_initial_state(self) -> Optional[List[List[List[int]]]]:
        if self._initial_state is None:
            return None
        return [[list(alu) for alu in stage] for stage in self._initial_state]


def fuzz_machine_code(
    pipeline_spec: PipelineSpec,
    machine_code: MachineCode,
    specification: Specification,
    num_phvs: int = 1000,
    seed: int = 0,
    opt_level: int = dgen.OPT_SCC_INLINE,
    traffic_generator: Optional[TrafficGenerator] = None,
    initial_state: Optional[List[List[List[int]]]] = None,
) -> FuzzOutcome:
    """One-shot helper: fuzz a single machine-code program."""
    tester = FuzzTester(
        pipeline_spec,
        specification,
        config=FuzzConfig(num_phvs=num_phvs, seed=seed, opt_level=opt_level),
        traffic_generator=traffic_generator,
        initial_state=initial_state,
    )
    return tester.test(machine_code)
