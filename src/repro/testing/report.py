"""Failure classification for compiler-testing runs.

The paper's case study (§5.2) distinguishes three outcomes when a compiler's
machine code is run through Druzhba:

* the machine code is **correct** — the pipeline trace matches the
  specification trace on every fuzzed input;
* the machine code is **incompatible with the pipeline** — required
  machine-code pairs are missing (two of the eight observed failures were
  missing output-multiplexer pairs);
* the machine code holds only over a **limited value range** — it was
  synthesised against narrow inputs and diverges once container values grow
  (the remaining failures: "the pipeline simulation failing for large PHV
  container values over 100 ... the synthesis engine failed to find machine
  code to satisfy 10-bit inputs").

This module defines the failure taxonomy and the report objects used by the
fuzzer, the case-study harness and the CLI.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from .equivalence import EquivalenceReport, Mismatch


class FailureClass(enum.Enum):
    """Outcome categories for one machine-code program under test."""

    #: All fuzzed PHVs matched the specification.
    CORRECT = "correct"
    #: Required machine-code pairs were absent (pipeline could not be programmed).
    MISSING_MACHINE_CODE = "missing_machine_code"
    #: Correct on small container values but diverges on larger ones.
    VALUE_RANGE = "value_range"
    #: Output trace mismatched the specification (not attributable to value range).
    OUTPUT_MISMATCH = "output_mismatch"
    #: The simulation itself failed (malformed description, internal error).
    SIMULATION_ERROR = "simulation_error"


@dataclass
class FuzzOutcome:
    """Result of fuzzing one machine-code program against one specification."""

    failure_class: FailureClass
    phvs_tested: int
    report: Optional[EquivalenceReport] = None
    missing_pairs: List[str] = field(default_factory=list)
    error_message: str = ""
    seed: int = 0
    max_value: int = 0

    @property
    def passed(self) -> bool:
        """True when the machine code was judged correct."""
        return self.failure_class is FailureClass.CORRECT

    @property
    def counterexample(self) -> Optional[Mismatch]:
        """The first mismatching PHV, when the failure is a trace mismatch."""
        if self.report is None:
            return None
        return self.report.first_mismatch

    def describe(self) -> str:
        """One-paragraph human-readable outcome description."""
        if self.failure_class is FailureClass.CORRECT:
            return f"PASS: {self.phvs_tested} PHVs matched the specification"
        if self.failure_class is FailureClass.MISSING_MACHINE_CODE:
            shown = ", ".join(self.missing_pairs[:3])
            suffix = "..." if len(self.missing_pairs) > 3 else ""
            return f"FAIL (missing machine code): {len(self.missing_pairs)} pair(s) absent: {shown}{suffix}"
        if self.failure_class is FailureClass.VALUE_RANGE:
            extra = ""
            if self.counterexample is not None:
                extra = f"; first divergence: {self.counterexample.describe()}"
            return (
                "FAIL (value range): machine code only satisfies a limited range of "
                f"container values (max tested {self.max_value}){extra}"
            )
        if self.failure_class is FailureClass.OUTPUT_MISMATCH:
            extra = ""
            if self.counterexample is not None:
                extra = f"; first divergence: {self.counterexample.describe()}"
            return f"FAIL (output mismatch): pipeline trace diverged from the specification{extra}"
        return f"FAIL (simulation error): {self.error_message}"


@dataclass
class CampaignSummary:
    """Aggregate of many fuzzing outcomes (the §5.2 case-study table)."""

    outcomes: List[FuzzOutcome] = field(default_factory=list)

    def add(self, outcome: FuzzOutcome) -> None:
        """Record one program's outcome."""
        self.outcomes.append(outcome)

    def count(self, failure_class: FailureClass) -> int:
        """Number of programs with the given outcome."""
        return sum(1 for outcome in self.outcomes if outcome.failure_class is failure_class)

    @property
    def total(self) -> int:
        """Total number of programs tested."""
        return len(self.outcomes)

    @property
    def passed(self) -> int:
        """Number of programs judged correct."""
        return self.count(FailureClass.CORRECT)

    @property
    def failed(self) -> int:
        """Number of programs that failed for any reason."""
        return self.total - self.passed

    def describe(self) -> str:
        """Render the summary as a small table (paper §5.2 style)."""
        lines = [
            f"programs tested:              {self.total}",
            f"  correct:                    {self.passed}",
            f"  missing machine code pairs: {self.count(FailureClass.MISSING_MACHINE_CODE)}",
            f"  limited value range:        {self.count(FailureClass.VALUE_RANGE)}",
            f"  output mismatch:            {self.count(FailureClass.OUTPUT_MISMATCH)}",
            f"  simulation errors:          {self.count(FailureClass.SIMULATION_ERROR)}",
        ]
        return "\n".join(lines)
