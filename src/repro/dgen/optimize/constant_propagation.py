"""Sparse conditional constant (SCC) propagation for ALU specifications.

This pass implements the first dgen optimisation of the paper (§3.4):

    "providing the machine code pairs during pipeline generation enables a
    global static mapping of names to values [...] We do this by replacing
    machine code variable occurrences with their corresponding integer
    values.  Then we use constant folding by evaluating constant expressions
    which allows us to determine the results of conditional statements.  This
    results in dead code elimination from unused control paths and solely
    emitting single simplified expressions in place of the previous function
    bodies."

Two granularities are provided:

* :func:`specialize_primitive_template` resolves one hole-controlled
  primitive call site into a simplified expression *template* over its
  operand placeholders (``{op0}``, ``{op1}`` ...).  This is what the
  version-2 code of Figure 6 uses: the helper function keeps its operand
  parameters but its body shrinks to a single return expression.
* :func:`specialize_expr` / :func:`specialize_stmts` fully substitute hole
  values into an expression or statement list, producing an equivalent AST
  with no hole-controlled primitives left.  Together with constant folding
  and dead-branch elimination this is the fully-specialised form used by the
  version-3 (inlined) code.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

from ...alu_dsl import semantics
from ...alu_dsl.ast_nodes import (
    ALUSpec,
    ArithOpExpr,
    Assign,
    BinaryOp,
    BoolOpExpr,
    ConstExpr,
    Expr,
    If,
    MuxExpr,
    Number,
    OptExpr,
    RelOpExpr,
    Return,
    Stmt,
    UnaryOp,
    Var,
)
from ...errors import CodegenError, MissingMachineCodeError
from .dce import eliminate_dead_branches, remove_dead_local_assignments
from .folding import fold_expr


def _hole_value(holes: Mapping[str, int], name: str | None) -> int:
    if name is None:
        raise CodegenError("primitive call site has no hole name; run ALU DSL analysis first")
    try:
        return int(holes[name])
    except KeyError:
        raise MissingMachineCodeError(name) from None


# ----------------------------------------------------------------------
# Primitive-site specialisation (helper-function granularity, Figure 6 v2)
# ----------------------------------------------------------------------
def specialize_primitive_template(expr: Expr, holes: Mapping[str, int]) -> Tuple[str, int]:
    """Resolve one primitive call site to an expression template.

    Returns ``(template, arity)`` where ``template`` is a Python expression
    over the placeholders ``{op0}`` ... ``{opN-1}`` and ``arity`` is the
    number of operand placeholders.  The template is exactly what the
    specialised helper function of Figure 6 (version 2) returns.
    """
    if isinstance(expr, MuxExpr):
        value = _hole_value(holes, expr.hole_name)
        return "{op%d}" % (value % expr.width), expr.width
    if isinstance(expr, OptExpr):
        value = _hole_value(holes, expr.hole_name)
        return ("{op0}" if value % 2 == 0 else "0"), 1
    if isinstance(expr, ConstExpr):
        value = _hole_value(holes, expr.hole_name)
        return str(value), 0
    if isinstance(expr, RelOpExpr):
        value = _hole_value(holes, expr.hole_name)
        template = semantics.REL_OPS[value % len(semantics.REL_OPS)][0]
        return template.format(a="{op0}", b="{op1}"), 2
    if isinstance(expr, ArithOpExpr):
        value = _hole_value(holes, expr.hole_name)
        template = semantics.ARITH_OPS[value % len(semantics.ARITH_OPS)][0]
        return template.format(a="{op0}", b="{op1}"), 2
    if isinstance(expr, BoolOpExpr):
        value = _hole_value(holes, expr.hole_name)
        template = semantics.BOOL_OPS[value % len(semantics.BOOL_OPS)][0]
        return template.format(a="{op0}", b="{op1}"), 2
    raise CodegenError(f"{type(expr).__name__} is not a hole-controlled primitive")


# ----------------------------------------------------------------------
# Full specialisation (inlined granularity, Figure 6 v3)
# ----------------------------------------------------------------------
def specialize_expr(
    expr: Expr,
    holes: Mapping[str, int],
    hole_var_names: Sequence[str] = (),
) -> Expr:
    """Substitute hole values into ``expr`` and fold the result.

    Every hole-controlled primitive is replaced by the concrete behaviour its
    machine-code value selects, references to declared hole variables become
    literal numbers, and constant folding is applied bottom-up.
    """
    specialized = _specialize(expr, holes, set(hole_var_names))
    return fold_expr(specialized)


def _specialize(expr: Expr, holes: Mapping[str, int], hole_vars: set) -> Expr:
    if isinstance(expr, Number):
        return expr
    if isinstance(expr, Var):
        if expr.name in hole_vars:
            return Number(_hole_value(holes, expr.name))
        return expr
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _specialize(expr.operand, holes, hole_vars))
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            _specialize(expr.left, holes, hole_vars),
            _specialize(expr.right, holes, hole_vars),
        )
    if isinstance(expr, MuxExpr):
        value = _hole_value(holes, expr.hole_name)
        selected = expr.inputs[value % expr.width]
        return _specialize(selected, holes, hole_vars)
    if isinstance(expr, OptExpr):
        value = _hole_value(holes, expr.hole_name)
        if value % 2 == 0:
            return _specialize(expr.operand, holes, hole_vars)
        return Number(0)
    if isinstance(expr, ConstExpr):
        return Number(_hole_value(holes, expr.hole_name))
    if isinstance(expr, RelOpExpr):
        value = _hole_value(holes, expr.hole_name)
        symbol = semantics.REL_OP_SYMBOLS[value % len(semantics.REL_OP_SYMBOLS)]
        return BinaryOp(
            symbol,
            _specialize(expr.left, holes, hole_vars),
            _specialize(expr.right, holes, hole_vars),
        )
    if isinstance(expr, ArithOpExpr):
        value = _hole_value(holes, expr.hole_name)
        symbol = semantics.ARITH_OP_SYMBOLS[value % len(semantics.ARITH_OP_SYMBOLS)]
        return BinaryOp(
            symbol,
            _specialize(expr.left, holes, hole_vars),
            _specialize(expr.right, holes, hole_vars),
        )
    if isinstance(expr, BoolOpExpr):
        value = _hole_value(holes, expr.hole_name)
        symbol = semantics.BOOL_OP_SYMBOLS[value % len(semantics.BOOL_OP_SYMBOLS)]
        return BinaryOp(
            symbol,
            _specialize(expr.left, holes, hole_vars),
            _specialize(expr.right, holes, hole_vars),
        )
    raise CodegenError(f"unknown expression node {type(expr).__name__}")


def specialize_stmts(
    stmts: Sequence[Stmt],
    holes: Mapping[str, int],
    hole_var_names: Sequence[str] = (),
) -> List[Stmt]:
    """Specialise a statement list: substitute holes, fold, prune dead branches."""
    result: List[Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, Assign):
            result.append(Assign(stmt.target, specialize_expr(stmt.value, holes, hole_var_names)))
        elif isinstance(stmt, Return):
            result.append(Return(specialize_expr(stmt.value, holes, hole_var_names)))
        elif isinstance(stmt, If):
            branches = [
                (
                    specialize_expr(condition, holes, hole_var_names),
                    tuple(specialize_stmts(body, holes, hole_var_names)),
                )
                for condition, body in stmt.branches
            ]
            orelse = specialize_stmts(stmt.orelse, holes, hole_var_names)
            result.extend(eliminate_dead_branches(branches, orelse))
        else:  # pragma: no cover - defensive
            raise CodegenError(f"unknown statement node {type(stmt).__name__}")
    return result


def specialize_spec(spec: ALUSpec, holes: Mapping[str, int]) -> ALUSpec:
    """Return a fully specialised copy of ``spec`` for the given hole values.

    The returned spec contains no hole-controlled primitives and no hole
    variables; its behaviour under the reference interpreter (with an empty
    hole mapping) is identical to the original spec's behaviour under
    ``holes``.  Assignments to local variables that become dead after
    specialisation are removed.
    """
    body = specialize_stmts(spec.body, holes, spec.hole_vars)
    body = remove_dead_local_assignments(body, protected=set(spec.state_vars))
    return ALUSpec(
        name=spec.name,
        kind=spec.kind,
        state_vars=list(spec.state_vars),
        hole_vars=[],
        packet_fields=list(spec.packet_fields),
        body=body,
        holes=[],
        hole_domains={},
        source=spec.source,
    )
