"""Constant propagation and peephole folding over generated loop bodies.

The DSL-level optimisation passes (SCC propagation, folding, inlining) run
*before* lowering to the IR, but the fused ``run_trace`` loop is assembled
*from* lowered fragments: inlining an ALU body whose condition was resolved
at generation time still leaves residue like ::

    condition_1 = 1
    if int(bool(condition_0) and bool(condition_1)):
        state_0_0[0] = pkt_1
    else:
        state_0_0[0] = pkt_1

This pass runs over the assembled loop body (where expressions are Python
source strings) and finishes the job:

* **constant propagation** — straight-line assignments of integer literals
  are tracked and substituted into later expressions (branch bodies are
  processed with a copy of the environment and invalidate their assignment
  targets afterwards, so the analysis stays sound without a fixpoint);
* **constant folding** — any subexpression whose leaves are all literals is
  evaluated at generation time, identity constants are dropped from
  ``and``/``or`` chains, ``bool()`` of a comparison is the comparison, and
  ``if`` branches whose conditions fold to constants are pruned;
* **condition stripping** — where only truthiness matters (``if``
  conditions, ternary tests), value-preserving wrappers like ``int(...)``
  and ``bool(...)`` are peeled off, including through ``and``/``or``/``not``;
* **identical-branch elimination** — an ``if`` whose branches all execute
  the same statements as its ``else`` collapses to those statements
  (generated conditions are pure, so dropping the test is safe);
* **redundant-load elimination** — a pure assignment repeating the exact
  (target, expression) pair still in effect (e.g. the operand load
  ``pkt_0 = phv[0]`` emitted once per ALU) is dropped; any write to a name
  the expression mentions — including subscript stores to its base and
  mutations via non-builtin calls — invalidates the recorded copy first;
* **dead-store elimination** — assignments to plain names that are read
  nowhere in the loop body are removed (loop-carried uses count as reads, so
  removal is safe even though the body repeats).

The pass is purely syntactic on expression strings (via :mod:`ast`) and
never touches subscript targets (state mutations) or calls it cannot prove
pure, so applying it to any fused loop body is behaviour-preserving.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ...ir import nodes as ir

#: Pure builtins that may be evaluated at generation time.
_FOLDABLE_CALLS = {"int": int, "bool": bool, "abs": abs, "min": min, "max": max}

_ALLOWED_BINOPS = (
    ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Div, ast.Mod, ast.Pow,
    ast.LShift, ast.RShift, ast.BitOr, ast.BitXor, ast.BitAnd,
)
_ALLOWED_UNARYOPS = (ast.UAdd, ast.USub, ast.Invert, ast.Not)

_SUBSCRIPT_TARGET_RE = re.compile(r"^([A-Za-z_]\w*)\s*\[")


def _is_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, (int, bool))


def _foldable(node: ast.AST) -> bool:
    """True when ``node`` is a pure expression over integer/bool literals."""
    if _is_literal(node):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _ALLOWED_BINOPS):
        return _foldable(node.left) and _foldable(node.right)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, _ALLOWED_UNARYOPS):
        return _foldable(node.operand)
    if isinstance(node, ast.BoolOp):
        return all(_foldable(value) for value in node.values)
    if isinstance(node, ast.Compare):
        return _foldable(node.left) and all(_foldable(comp) for comp in node.comparators)
    if isinstance(node, ast.IfExp):
        return _foldable(node.test) and _foldable(node.body) and _foldable(node.orelse)
    if isinstance(node, ast.Call):
        return (
            isinstance(node.func, ast.Name)
            and node.func.id in _FOLDABLE_CALLS
            and not node.keywords
            and all(_foldable(arg) for arg in node.args)
        )
    return False


def _evaluate(node: ast.AST) -> Optional[ast.AST]:
    """Evaluate a foldable node; ``None`` when evaluation fails (e.g. ``1 // 0``)."""
    expression = ast.Expression(body=node)
    ast.fix_missing_locations(expression)
    try:
        value = eval(  # noqa: S307 - the expression is literal-only by construction
            compile(expression, "<peephole>", "eval"),
            {"__builtins__": {}},
            dict(_FOLDABLE_CALLS),
        )
    except Exception:
        return None
    if isinstance(value, bool) or isinstance(value, int):
        return ast.Constant(value=value)
    return None


def _truthiness(node: ast.AST) -> Optional[bool]:
    """Truth value of a literal node, or ``None`` for non-literals."""
    if _is_literal(node):
        return bool(node.value)
    return None


def _is_boolish(node: ast.AST) -> bool:
    """True when ``node`` is guaranteed to evaluate to ``True``/``False``."""
    if isinstance(node, ast.Compare):
        return True
    if isinstance(node, ast.Constant) and isinstance(node.value, bool):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        return True
    if isinstance(node, ast.Call):
        return (
            isinstance(node.func, ast.Name)
            and node.func.id == "bool"
            and len(node.args) == 1
            and not node.keywords
        )
    if isinstance(node, ast.BoolOp):
        return all(_is_boolish(value) for value in node.values)
    return False


def _simplify_condition(node: ast.AST) -> ast.AST:
    """Strip truthiness-preserving wrappers in condition position.

    ``if int(X):`` behaves exactly like ``if X:`` for the integer-valued
    expressions dgen emits, and ``and``/``or``/``not`` only consume the
    truthiness of their operands, so the stripping distributes through them.
    """
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("int", "bool")
        and len(node.args) == 1
        and not node.keywords
    ):
        return _simplify_condition(node.args[0])
    if isinstance(node, ast.BoolOp):
        values = [_simplify_condition(value) for value in node.values]
        return ast.BoolOp(op=node.op, values=values)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        return ast.UnaryOp(op=node.op, operand=_simplify_condition(node.operand))
    return node


class _Folder(ast.NodeTransformer):
    """Substitutes known constants and folds literal subexpressions bottom-up."""

    def __init__(self, env: Dict[str, int]):
        self.env = env

    def visit_Name(self, node: ast.Name) -> ast.AST:
        if isinstance(node.ctx, ast.Load) and node.id in self.env:
            return ast.copy_location(ast.Constant(value=self.env[node.id]), node)
        return node

    def visit_BoolOp(self, node: ast.BoolOp) -> ast.AST:
        self.generic_visit(node)
        is_and = isinstance(node.op, ast.And)
        values: List[ast.AST] = []
        for position, value in enumerate(node.values):
            truth = _truthiness(value)
            last = position == len(node.values) - 1
            if truth is not None:
                if not values:
                    # A leading constant short-circuits: the identity constant
                    # is dropped, the deciding constant is the result.
                    if truth is is_and:
                        continue
                    return value
                if truth is is_and and (not last or _is_boolish(values[-1])):
                    # An identity constant mid-chain never changes the result;
                    # in last position it is the result only when the chain
                    # reaches it, which equals the previous operand's value
                    # exactly when that operand is boolean-valued.
                    continue
            values.append(value)
        if not values:
            return ast.Constant(value=is_and)
        if len(values) == 1:
            return values[0]
        folded = ast.BoolOp(op=node.op, values=values)
        return self._finish(folded)

    def visit_Call(self, node: ast.Call) -> ast.AST:
        self.generic_visit(node)
        # ``bool()`` of a comparison is the comparison itself.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "bool"
            and not node.keywords
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Compare)
        ):
            return node.args[0]
        return self._finish(node)

    def visit_IfExp(self, node: ast.IfExp) -> ast.AST:
        self.generic_visit(node)
        node.test = _simplify_condition(node.test)
        truth = _truthiness(node.test)
        if truth is not None:
            return node.body if truth else node.orelse
        return self._finish(node)

    def generic_visit(self, node: ast.AST) -> ast.AST:
        super().generic_visit(node)
        if isinstance(node, (ast.BinOp, ast.UnaryOp, ast.Compare)):
            return self._finish(node)
        return node

    @staticmethod
    def _finish(node: ast.AST) -> ast.AST:
        if not _is_literal(node) and _foldable(node):
            evaluated = _evaluate(node)
            if evaluated is not None:
                return evaluated
        return node


def fold_source(
    source: str, env: Optional[Dict[str, int]] = None, condition: bool = False
) -> Tuple[str, Optional[int]]:
    """Fold one expression string; returns ``(new source, literal value or None)``.

    With ``condition=True`` the expression sits in truthiness position and
    additionally has its value-preserving wrappers stripped.
    """
    try:
        tree = ast.parse(source, mode="eval")
    except SyntaxError:  # pragma: no cover - generated expressions always parse
        return source, None
    folded = _Folder(env or {}).visit(tree.body)
    if condition:
        folded = _Folder(env or {}).visit(_simplify_condition(folded))
    value = folded.value if _is_literal(folded) else None
    if isinstance(value, bool):
        value = int(value)
    return ast.unparse(folded), value


# ----------------------------------------------------------------------
# Statement-level pass
# ----------------------------------------------------------------------
def _expr_names(source: str) -> Set[str]:
    """Every identifier loaded or called anywhere in an expression string."""
    try:
        tree = ast.parse(source, mode="eval")
    except SyntaxError:
        return set()
    return {node.id for node in ast.walk(tree) if isinstance(node, ast.Name)}


def _is_pure_expr(source: str) -> bool:
    """True when the expression cannot mutate anything (folding builtins only)."""
    try:
        tree = ast.parse(source, mode="eval")
    except SyntaxError:
        return False
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            if not (isinstance(node.func, ast.Name) and node.func.id in _FOLDABLE_CALLS):
                return False
    return True


def _mutated_names(statements: Sequence[ir.IRStmt]) -> Set[str]:
    """Names whose bindings or contents may change anywhere in ``statements``.

    Covers identifier assignment targets, the base names of subscript
    stores, the targets of ``for`` loops, and every name appearing in an
    expression that contains a non-builtin call (the call may mutate its
    arguments, e.g. a stateful ALU function updating its state vectors).
    """
    names: Set[str] = set()

    def visit_expr(source: str) -> None:
        if not _is_pure_expr(source):
            names.update(_expr_names(source))

    for statement in statements:
        if isinstance(statement, ir.Assign):
            if statement.target.isidentifier():
                names.add(statement.target)
            else:
                match = _SUBSCRIPT_TARGET_RE.match(statement.target)
                if match:
                    names.add(match.group(1))
                else:  # unrecognised target shape: give up on precision
                    names.update(_expr_names(statement.target))
            visit_expr(statement.expression)
        elif isinstance(statement, (ir.Return, ir.ExprStmt)):
            visit_expr(statement.expression)
        elif isinstance(statement, ir.If):
            for condition, body in statement.branches:
                visit_expr(condition)
                names |= _mutated_names(body)
            names |= _mutated_names(statement.orelse)
        elif isinstance(statement, ir.For):
            names.add(statement.target)
            visit_expr(statement.iterable)
            names |= _mutated_names(statement.body)
    return names


def _stmt_texts(statements: Sequence[ir.IRStmt]) -> Iterator[str]:
    for statement in statements:
        if isinstance(statement, ir.Assign):
            yield statement.target
            yield statement.expression
        elif isinstance(statement, (ir.Return, ir.ExprStmt)):
            yield statement.expression
        elif isinstance(statement, ir.If):
            for condition, body in statement.branches:
                yield condition
                yield from _stmt_texts(body)
            yield from _stmt_texts(statement.orelse)
        elif isinstance(statement, ir.For):
            yield statement.iterable
            yield from _stmt_texts(statement.body)


class _Scope:
    """Mutable analysis state threaded through one straight-line region."""

    def __init__(self) -> None:
        #: name -> known literal value
        self.env: Dict[str, int] = {}
        #: name -> pure expression source currently bound to it
        self.copies: Dict[str, str] = {}

    def fork(self) -> "_Scope":
        forked = _Scope()
        forked.env = dict(self.env)
        forked.copies = dict(self.copies)
        return forked

    def invalidate(self, names: Set[str]) -> None:
        """Forget facts about ``names`` and every copy that mentions them."""
        for name in names:
            self.env.pop(name, None)
            self.copies.pop(name, None)
        if names:
            stale = [
                target
                for target, expression in self.copies.items()
                if names & _expr_names(expression)
            ]
            for target in stale:
                self.copies.pop(target, None)


def _propagate(statements: Sequence[ir.IRStmt], scope: _Scope) -> List[ir.IRStmt]:
    """Constant-propagate and fold through one straight-line statement list."""
    out: List[ir.IRStmt] = []
    for statement in statements:
        if isinstance(statement, ir.Assign):
            expression, value = fold_source(statement.expression, scope.env)
            if expression == statement.target and _is_pure_expr(expression):
                continue  # self-assignment (the "unchanged" arm of an ALU branch)
            if statement.target.isidentifier():
                target = statement.target
                if scope.copies.get(target) == expression:
                    continue  # redundant reload of an unchanged pure value
                scope.invalidate({target})
                if value is not None:
                    scope.env[target] = value
                elif _is_pure_expr(expression):
                    scope.copies[target] = expression
                else:
                    scope.invalidate(_expr_names(expression))
            else:
                scope.invalidate(_mutated_names([ir.Assign(statement.target, expression)]))
            out.append(ir.Assign(statement.target, expression))
        elif isinstance(statement, ir.Return):
            out.append(ir.Return(fold_source(statement.expression, scope.env)[0]))
        elif isinstance(statement, ir.ExprStmt):
            expression = fold_source(statement.expression, scope.env)[0]
            if not _is_pure_expr(expression):
                scope.invalidate(_expr_names(expression))
            out.append(ir.ExprStmt(expression))
        elif isinstance(statement, ir.If):
            out.extend(_propagate_if(statement, scope))
        elif isinstance(statement, ir.For):
            body = _propagate(statement.body, _Scope())
            scope.invalidate(_mutated_names([statement]))
            out.append(ir.For(statement.target, statement.iterable, body))
        else:
            out.append(statement)
    return out


def _propagate_if(statement: ir.If, scope: _Scope) -> List[ir.IRStmt]:
    """Fold an ``if`` chain: prune dead branches, inline decided ones."""
    kept: List[Tuple[str, List[ir.IRStmt]]] = []
    orelse: Sequence[ir.IRStmt] = statement.orelse
    for condition, body in statement.branches:
        folded, value = fold_source(condition, scope.env, condition=True)
        if value is not None:
            if value == 0:
                continue
            orelse = body
            break
        kept.append((folded, body))
    if not kept:
        # The chain was decided at generation time; the surviving body runs
        # unconditionally, so the scope flows straight through it.
        return _propagate(list(orelse), scope)
    if all(list(body) == list(orelse) for _condition, body in kept):
        # Every surviving branch does exactly what the else does; the
        # conditions are pure expressions, so the test can be dropped.
        return _propagate(list(orelse), scope)
    branches = [
        (condition, _propagate(list(body), scope.fork())) for condition, body in kept
    ]
    processed_orelse = _propagate(list(orelse), scope.fork())
    result = ir.If(branches=branches, orelse=processed_orelse)
    scope.invalidate(_mutated_names([result]))
    return [result]


def _upward_exposed(statements: Sequence[ir.IRStmt]) -> Set[str]:
    """Names read before any definite top-level store in ``statements``.

    In a loop body these are the loop-carried uses: reads at the top of the
    next iteration that observe the previous iteration's final stores.
    Stores inside ``if`` branches are conditional and therefore never count
    as definite.
    """
    exposed: Set[str] = set()
    defined: Set[str] = set()
    for statement in statements:
        if isinstance(statement, ir.Assign):
            exposed |= _expr_names(statement.expression) - defined
            if statement.target.isidentifier():
                defined.add(statement.target)
            else:
                exposed |= _expr_names(statement.target) - defined
        elif isinstance(statement, (ir.Return, ir.ExprStmt)):
            exposed |= _expr_names(statement.expression) - defined
        elif isinstance(statement, (ir.If, ir.For)):
            exposed |= set().union(*map(_expr_names, _stmt_texts([statement]))) - defined
    return exposed


def _eliminate_dead_stores(statements: List[ir.IRStmt]) -> List[ir.IRStmt]:
    """Backward-liveness dead-store elimination over one loop body.

    A top-level assignment to a plain name with a pure right-hand side is
    dropped when nothing reads the name between this store and the next
    store to it — treating the body as a loop, so names the next iteration
    reads before writing (the upward-exposed set) stay live across the back
    edge.  Statements inside ``if`` branches are left untouched; their reads
    keep names alive conservatively.
    """
    live = _upward_exposed(statements)
    kept_reversed: List[ir.IRStmt] = []
    for statement in reversed(statements):
        if (
            isinstance(statement, ir.Assign)
            and statement.target.isidentifier()
            and _is_pure_expr(statement.expression)
        ):
            if statement.target not in live:
                continue
            live.discard(statement.target)
            live |= _expr_names(statement.expression)
        elif isinstance(statement, ir.Assign):
            live |= _expr_names(statement.target)
            live |= _expr_names(statement.expression)
        elif isinstance(statement, (ir.Return, ir.ExprStmt)):
            live |= _expr_names(statement.expression)
        elif isinstance(statement, (ir.If, ir.For)):
            live |= set().union(set(), *map(_expr_names, _stmt_texts([statement])))
        kept_reversed.append(statement)
    return list(reversed(kept_reversed))


def peephole_block(statements: Sequence[ir.IRStmt]) -> List[ir.IRStmt]:
    """Run the full pass over one loop body (or any straight-line block)."""
    return _eliminate_dead_stores(_propagate(statements, _Scope()))
