"""Function inlining for generated pipeline descriptions.

The paper's second optimisation (§3.4) removes the helper-function calls that
remain after SCC propagation and splices their (now single-expression) bodies
into the caller — Figure 6, version 3.  Because every specialised helper body
is a single ``return`` of an expression template over its operand
placeholders, inlining is a well-defined template substitution rather than a
general-purpose program transformation.
"""

from __future__ import annotations

import re
from typing import Sequence

from ...errors import CodegenError

_PLACEHOLDER_RE = re.compile(r"\{op(\d+)\}")


def placeholder_count(template: str) -> int:
    """Number of distinct ``{opN}`` placeholders referenced by ``template``."""
    indices = {int(match.group(1)) for match in _PLACEHOLDER_RE.finditer(template)}
    return len(indices)


def max_placeholder_index(template: str) -> int:
    """Largest placeholder index used, or -1 when the template uses none."""
    indices = [int(match.group(1)) for match in _PLACEHOLDER_RE.finditer(template)]
    return max(indices) if indices else -1


def inline_call(template: str, arguments: Sequence[str]) -> str:
    """Inline a specialised helper body into its call site.

    ``template`` is the helper's return expression over ``{op0}``..``{opN}``
    placeholders (as produced by
    :func:`repro.dgen.optimize.constant_propagation.specialize_primitive_template`)
    and ``arguments`` are the Python source fragments the call site passes.
    Arguments are parenthesised on substitution so operator precedence of the
    surrounding template is preserved regardless of what the argument text
    contains.
    """
    highest = max_placeholder_index(template)
    if highest >= len(arguments):
        raise CodegenError(
            f"template references operand {{op{highest}}} but only "
            f"{len(arguments)} argument(s) were supplied"
        )

    def substitute(match: "re.Match[str]") -> str:
        index = int(match.group(1))
        argument = arguments[index]
        if _needs_parentheses(argument):
            return f"({argument})"
        return argument

    return _PLACEHOLDER_RE.sub(substitute, template)


def _needs_parentheses(fragment: str) -> bool:
    """Heuristic: wrap anything that is not an atom (name, number, call, index)."""
    stripped = fragment.strip()
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", stripped):
        return False
    if re.fullmatch(r"\d+", stripped):
        return False
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*\[[^\[\]]+\]", stripped):
        return False
    if stripped.startswith("(") and stripped.endswith(")") and _balanced(stripped[1:-1]):
        return False
    return True


def _balanced(text: str) -> bool:
    depth = 0
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                return False
    return depth == 0
