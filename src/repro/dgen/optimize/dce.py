"""Dead-code elimination for ALU DSL statement lists.

The SCC-propagation pass turns some ``if`` conditions into literal constants;
this module removes the branches that can never execute — "dead code
elimination from unused control paths" (paper §3.4) — and drops assignments
to local variables that are never subsequently read.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from ...alu_dsl.ast_nodes import Assign, Expr, If, Number, Return, Stmt
from .folding import fold_expr


def eliminate_dead_branches(
    branches: Sequence[Tuple[Expr, Tuple[Stmt, ...]]],
    orelse: Sequence[Stmt],
) -> List[Stmt]:
    """Resolve an ``if``/``elif``/``else`` chain whose conditions may be constant.

    Returns a statement list equivalent to the chain under the assumption
    that every condition has already been specialised (holes substituted) and
    folded.  Branches with a constant-false condition are removed; the first
    constant-true condition terminates the chain (its body becomes the final
    ``else`` of whatever unknown-condition branches precede it, or replaces
    the chain entirely when it is the first live branch).
    """
    live: List[Tuple[Expr, Tuple[Stmt, ...]]] = []
    final_orelse: Sequence[Stmt] = orelse
    for condition, body in branches:
        folded = fold_expr(condition)
        if isinstance(folded, Number):
            if folded.value == 0:
                continue  # branch can never run
            final_orelse = body  # branch always runs once reached
            break
        live.append((folded, body))
    if not live:
        return list(final_orelse)
    return [If(tuple(live), tuple(final_orelse))]


def _expr_reads(expr: Expr) -> Set[str]:
    from ...alu_dsl.analysis import _collect_expr_vars

    reads: Set[str] = set()
    _collect_expr_vars(expr, reads)
    return reads


def _stmts_reads(stmts: Sequence[Stmt]) -> Set[str]:
    reads: Set[str] = set()
    for stmt in stmts:
        if isinstance(stmt, Assign):
            reads |= _expr_reads(stmt.value)
        elif isinstance(stmt, Return):
            reads |= _expr_reads(stmt.value)
        elif isinstance(stmt, If):
            for condition, body in stmt.branches:
                reads |= _expr_reads(condition)
                reads |= _stmts_reads(body)
            reads |= _stmts_reads(stmt.orelse)
    return reads


def remove_dead_local_assignments(stmts: Sequence[Stmt], protected: Set[str]) -> List[Stmt]:
    """Drop top-level assignments to locals that nothing later reads.

    ``protected`` names (state variables) are never removed because their
    assignment is itself the ALU's externally visible effect.  Only
    straight-line, top-level assignments are considered — assignments inside
    ``if`` bodies are conservatively kept.
    """
    kept: List[Stmt] = []
    for index, stmt in enumerate(stmts):
        if isinstance(stmt, Assign) and stmt.target not in protected:
            later = _stmts_reads(stmts[index + 1 :])
            if stmt.target not in later:
                continue
        kept.append(stmt)
    return kept
