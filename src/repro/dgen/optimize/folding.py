"""Constant folding over ALU DSL expressions.

Folding is the second half of sparse conditional constant propagation
(paper §3.4): after machine-code values have been substituted for hole
references, any sub-expression whose operands are all constants is evaluated
at generation time.  Folding is what turns the conditions of ``if``
statements into literal 0/1 values that the dead-code-elimination pass can
then prune.
"""

from __future__ import annotations

from ...alu_dsl import semantics
from ...alu_dsl.ast_nodes import BinaryOp, Expr, Number, UnaryOp


def fold_expr(expr: Expr) -> Expr:
    """Recursively fold constant sub-expressions of ``expr``.

    Only pure literal operators (``BinaryOp`` / ``UnaryOp`` / ``Number``) are
    folded; hole-controlled primitives must be specialised away first by the
    constant-propagation pass.  Non-constant sub-expressions are preserved
    untouched, so folding is always safe to apply.
    """
    if isinstance(expr, UnaryOp):
        operand = fold_expr(expr.operand)
        if isinstance(operand, Number):
            return Number(semantics.apply_unary(expr.op, operand.value))
        return UnaryOp(expr.op, operand)
    if isinstance(expr, BinaryOp):
        left = fold_expr(expr.left)
        right = fold_expr(expr.right)
        if isinstance(left, Number) and isinstance(right, Number):
            return Number(semantics.apply_binary(expr.op, left.value, right.value))
        folded = BinaryOp(expr.op, left, right)
        return _fold_algebraic_identities(folded)
    return expr


def _fold_algebraic_identities(expr: BinaryOp) -> Expr:
    """Simplify a handful of safe algebraic identities.

    Only identities that hold for all integers are applied (``x + 0``,
    ``0 + x``, ``x - 0``, ``x * 1``, ``1 * x``, ``x * 0``, ``0 * x``); they
    commonly appear after ``Opt`` holes resolve to the constant 0.
    """
    left, right = expr.left, expr.right
    if expr.op == "+":
        if isinstance(left, Number) and left.value == 0:
            return right
        if isinstance(right, Number) and right.value == 0:
            return left
    elif expr.op == "-":
        if isinstance(right, Number) and right.value == 0:
            return left
    elif expr.op == "*":
        if isinstance(left, Number) and left.value == 1:
            return right
        if isinstance(right, Number) and right.value == 1:
            return left
        if (isinstance(left, Number) and left.value == 0) or (
            isinstance(right, Number) and right.value == 0
        ):
            return Number(0)
    return expr


def is_constant(expr: Expr) -> bool:
    """True when ``expr`` folds to a literal number."""
    return isinstance(fold_expr(expr), Number)


def constant_value(expr: Expr) -> int:
    """Return the folded literal value of ``expr``.

    Raises ``ValueError`` when the expression is not constant.
    """
    folded = fold_expr(expr)
    if not isinstance(folded, Number):
        raise ValueError("expression is not constant")
    return folded.value
