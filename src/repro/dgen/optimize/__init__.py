"""dgen optimisation passes (paper §3.4).

* :mod:`folding` — constant folding over ALU DSL expressions.
* :mod:`dce` — dead-branch and dead-assignment elimination.
* :mod:`constant_propagation` — sparse conditional constant propagation
  (substitute machine-code values, fold, prune) at both the helper-function
  and the fully-inlined granularity.
* :mod:`inlining` — function inlining of specialised helper bodies.
* :mod:`peephole` — constant propagation, folding and dead-store
  elimination over assembled (IR-level) fused loop bodies.

The first four passes run over the ALU DSL before lowering to the IR.  A
second, IR-level fusion step exists at opt level 3: the pipeline builder
inlines the already-optimised ALU bodies into a generated ``run_trace``
loop, pruning dead stateless ALUs and hoisting loop-invariant state lookups
on the way (see :mod:`repro.dgen.pipeline_builder`), then runs the peephole
pass over the fused loop body to fold the constant residue inlining leaves
behind.  The dRMT fused program generator applies the same peephole pass to
its loop bodies.
"""

from .constant_propagation import (
    specialize_expr,
    specialize_primitive_template,
    specialize_spec,
    specialize_stmts,
)
from .dce import eliminate_dead_branches, remove_dead_local_assignments
from .folding import constant_value, fold_expr, is_constant
from .inlining import inline_call, max_placeholder_index, placeholder_count
from .peephole import fold_source, peephole_block

__all__ = [
    "fold_source",
    "peephole_block",
    "fold_expr",
    "is_constant",
    "constant_value",
    "eliminate_dead_branches",
    "remove_dead_local_assignments",
    "specialize_expr",
    "specialize_stmts",
    "specialize_spec",
    "specialize_primitive_template",
    "inline_call",
    "placeholder_count",
    "max_placeholder_index",
]
