"""Emission and compilation of pipeline descriptions.

dgen's output — the *pipeline description* — is Python source text.  In the
paper the description is Rust code compiled together with dsim; here the
source is compiled with :func:`compile`/``exec`` into a fresh namespace and
wrapped in a :class:`PipelineDescription` object that dsim consumes.  The
source text itself is kept around: it is what the Figure 6 experiment
inspects, and writing it to disk (``druzhba-dgen --output``) lets users read
exactly what will be simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..errors import CodegenError
from ..hardware import PipelineSpec
from ..ir import Module, to_source
from ..machine_code.pairs import MachineCode
from .codegen import OPT_LEVEL_NAMES, OPT_UNOPTIMIZED

PathLike = Union[str, Path]

#: Type of a generated stage function: (phv_read, stage_state, values) -> write containers.
StageFunction = Callable[[Sequence[int], List[List[int]], Optional[Dict[str, int]]], List[int]]


@dataclass
class PipelineDescription:
    """A compiled pipeline description plus its provenance.

    Attributes
    ----------
    spec:
        The hardware configuration the description was generated for.
    opt_level:
        0 (unoptimised), 1 (SCC propagation), 2 (SCC propagation +
        function inlining) or 3 (fused trace loop).
    machine_code:
        The machine code baked into the description (``None`` only for the
        unoptimised level, where machine code is looked up at runtime).
    module:
        The structured IR of the generated module.
    source:
        The rendered Python source text.
    namespace:
        The executed module namespace; ``namespace["STAGE_FUNCTIONS"]`` holds
        the per-stage entry points.
    """

    spec: PipelineSpec
    opt_level: int
    machine_code: Optional[MachineCode]
    module: Module
    source: str
    namespace: Dict[str, object] = field(repr=False, default_factory=dict)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def stage_functions(self) -> List[StageFunction]:
        """The generated per-stage functions, in pipeline order."""
        functions = self.namespace.get("STAGE_FUNCTIONS")
        if not isinstance(functions, list) or len(functions) != self.spec.depth:
            raise CodegenError("pipeline description namespace is missing STAGE_FUNCTIONS")
        return functions  # type: ignore[return-value]

    @property
    def fused_function(self) -> Optional[Callable]:
        """The fused ``run_trace(inputs, state, values)`` entry point, if emitted.

        Present only at opt level 3; :class:`repro.dsim.RMTSimulator` uses it
        as a fast path that bypasses the per-tick pipeline machinery.
        """
        function = self.namespace.get("RUN_TRACE")
        return function if callable(function) else None

    @property
    def observed_function(self) -> Optional[Callable]:
        """The fused loop variant with per-stage snapshot hooks, if emitted.

        ``run_trace_observed(inputs, state, values, observer)`` behaves like
        :attr:`fused_function` but calls ``observer(phv_index, stage, phv,
        stage_state)`` after every (PHV, stage) execution; the debugger's
        fused recorder consumes it.
        """
        function = self.namespace.get("RUN_TRACE_OBSERVED")
        return function if callable(function) else None

    @property
    def opt_level_name(self) -> str:
        """Human-readable optimisation level name."""
        return OPT_LEVEL_NAMES[self.opt_level]

    @property
    def needs_runtime_values(self) -> bool:
        """True when stage functions read machine code from the ``values`` dict at runtime."""
        return self.opt_level == OPT_UNOPTIMIZED

    def runtime_values(self) -> Dict[str, int]:
        """The ``values`` hash table handed to stage functions at simulation time."""
        if self.machine_code is None:
            return {}
        return self.machine_code.as_dict()

    def initial_state(self, initial_value: int = 0) -> List[List[List[int]]]:
        """Fresh per-stage, per-stateful-ALU state vectors (all ``initial_value``)."""
        return [
            [[initial_value] * self.spec.num_state_vars for _ in range(self.spec.width)]
            for _ in range(self.spec.depth)
        ]

    def source_line_count(self) -> int:
        """Number of non-blank source lines (the Figure 6 code-size metric)."""
        return sum(1 for line in self.source.splitlines() if line.strip())

    def function_count(self) -> int:
        """Number of functions defined in the description (helpers included)."""
        return len(self.module.functions)

    def save_source(self, path: PathLike) -> Path:
        """Write the generated source to ``path`` and return the path."""
        path = Path(path)
        path.write_text(self.source)
        return path


def render(module: Module) -> str:
    """Render an IR module to Python source text."""
    return to_source(module)


def compile_description(
    spec: PipelineSpec,
    module: Module,
    opt_level: int,
    machine_code: Optional[MachineCode],
    module_name: str = "druzhba_pipeline_description",
) -> PipelineDescription:
    """Render, compile and execute a generated module.

    The module is executed in a fresh, empty namespace: generated code is
    self-contained by construction (it only uses builtins), which mirrors the
    paper's standalone generated Rust file.
    """
    source = render(module)
    namespace: Dict[str, object] = {"__name__": module_name}
    code = compile(source, filename=f"<{module_name}>", mode="exec")
    exec(code, namespace)  # noqa: S102 - executing our own generated code is the point of dgen
    description = PipelineDescription(
        spec=spec,
        opt_level=opt_level,
        machine_code=machine_code,
        module=module,
        source=source,
        namespace=namespace,
    )
    # Touch the property once so malformed generation fails at build time, not
    # in the middle of a simulation run.
    _ = description.stage_functions
    return description
