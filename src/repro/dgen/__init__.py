"""dgen: the Druzhba pipeline code generator (paper §3.2 and §3.4).

dgen converts a hardware specification (pipeline depth/width plus ALU DSL
files) and a machine-code program into an executable *pipeline description*.
Levels 0-2 match Figure 6 of the paper; level 3 extends the paper's
specialization ladder by fusing the simulation driver itself into the
generated code:

====  ===============================  ==========================================
level  name                             behaviour
====  ===============================  ==========================================
0      unoptimized                      machine code looked up at simulation time
1      scc_propagation                  constants propagated, branches pruned
2      scc_propagation_and_inlining     helper functions inlined away
3      fused_pipeline                   level 2 plus a generated ``run_trace``
                                        loop the simulator uses as a fast path
====  ===============================  ==========================================

Typical use::

    from repro import atoms, dgen
    from repro.hardware import PipelineSpec

    spec = PipelineSpec(depth=2, width=2,
                        stateful_alu=atoms.stateful_catalog()["if_else_raw"],
                        stateless_alu=atoms.stateless_catalog()["stateless_arith"])
    description = dgen.generate(spec, machine_code, opt_level=2)
"""

from typing import Optional

from ..hardware import PipelineSpec
from ..machine_code.pairs import MachineCode
from .codegen import (
    ALUCode,
    ALUFunctionGenerator,
    OPT_FUSED,
    OPT_LEVEL_NAMES,
    OPT_LEVELS,
    OPT_SCC,
    OPT_SCC_INLINE,
    OPT_UNOPTIMIZED,
    generate_alu,
)
from .emit import PipelineDescription, compile_description, render
from .pipeline_builder import PipelineGenerator


def generate_module(
    spec: PipelineSpec,
    machine_code: Optional[MachineCode] = None,
    opt_level: int = OPT_UNOPTIMIZED,
    validate_machine_code: bool = True,
):
    """Generate the pipeline-description IR module without compiling it."""
    generator = PipelineGenerator(
        spec=spec,
        machine_code=machine_code,
        opt_level=opt_level,
        validate_machine_code=validate_machine_code,
    )
    return generator.generate()


def generate(
    spec: PipelineSpec,
    machine_code: Optional[MachineCode] = None,
    opt_level: int = OPT_UNOPTIMIZED,
    validate_machine_code: bool = True,
) -> PipelineDescription:
    """Generate, render, compile and wrap a pipeline description.

    ``machine_code`` may be omitted only at the unoptimised level, in which
    case the returned description expects the machine-code ``values`` dict at
    simulation time (the paper's original, pre-optimisation design, §3.4).
    """
    module = generate_module(
        spec,
        machine_code=machine_code,
        opt_level=opt_level,
        validate_machine_code=validate_machine_code,
    )
    return compile_description(
        spec=spec,
        module=module,
        opt_level=opt_level,
        machine_code=machine_code,
    )


__all__ = [
    "generate",
    "generate_module",
    "generate_alu",
    "render",
    "compile_description",
    "PipelineGenerator",
    "PipelineDescription",
    "ALUCode",
    "ALUFunctionGenerator",
    "OPT_UNOPTIMIZED",
    "OPT_SCC",
    "OPT_SCC_INLINE",
    "OPT_FUSED",
    "OPT_LEVELS",
    "OPT_LEVEL_NAMES",
]
