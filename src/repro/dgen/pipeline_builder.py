"""Pipeline description generation (dgen, paper §3.2).

The :class:`PipelineGenerator` takes the three dgen inputs — the pipeline
depth/width, the ALU DSL specifications and (for the optimised levels) the
machine code — and produces a complete pipeline description: a Python module
that defines one function per ALU, the multiplexer helper functions, one
``stage_k`` function per pipeline stage and a ``STAGE_FUNCTIONS`` list that
the simulator iterates over.

The "initialization code [that] ensures that the input and output
multiplexers as well as the ALUs are executed in the proper order within the
pipeline" (paper §3.2) corresponds to the body of each ``stage_k`` function:
input multiplexers first, then stateless and stateful ALUs, then the output
multiplexers that write the stage's result containers.

At optimisation level 3 ("fused pipeline") the generated module additionally
contains a ``run_trace(inputs, state, values)`` function with every stage
body inlined into a single loop over the input trace: the simulation driver
itself becomes generated code, so the simulator's per-tick machinery (PHV
objects, read/write-half commits, slot shuffling) disappears from the hot
path.  For a feedforward pipeline this is semantically identical to the
tick-accurate model — each stage's state is touched in PHV arrival order
either way — which :mod:`repro.dsim.simulator` exploits as a fast path.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import CodegenError, MissingMachineCodeError
from ..hardware import PipelineSpec
from ..ir import nodes as ir
from ..machine_code import naming
from ..machine_code.pairs import MachineCode
from .codegen import (
    ALUCode,
    ALUFunctionGenerator,
    OPT_FUSED,
    OPT_LEVEL_NAMES,
    OPT_LEVELS,
    OPT_SCC,
    OPT_UNOPTIMIZED,
    input_mux_function_name,
    output_mux_function_name,
)

from .optimize.peephole import peephole_block

#: Name of the fused trace-loop entry point emitted at :data:`OPT_FUSED`.
RUN_TRACE_FUNCTION_NAME = "run_trace"
#: Name of the fused loop variant with per-stage snapshot hooks.
RUN_TRACE_OBSERVED_FUNCTION_NAME = "run_trace_observed"


def _contains_return(statement: ir.IRStmt) -> bool:
    """True when ``statement`` is or contains a ``return`` (blocks inlining)."""
    if isinstance(statement, ir.Return):
        return True
    if isinstance(statement, ir.If):
        for _condition, body in statement.branches:
            if any(_contains_return(inner) for inner in body):
                return True
        return any(_contains_return(inner) for inner in statement.orelse)
    if isinstance(statement, ir.For):
        return any(_contains_return(inner) for inner in statement.body)
    return False


def _stmt_texts(statements: Sequence[ir.IRStmt]) -> Iterator[str]:
    """Every source fragment (targets, expressions, conditions) in ``statements``."""
    for statement in statements:
        if isinstance(statement, ir.Assign):
            yield statement.target
            yield statement.expression
        elif isinstance(statement, (ir.Return, ir.ExprStmt)):
            yield statement.expression
        elif isinstance(statement, ir.If):
            for condition, body in statement.branches:
                yield condition
                yield from _stmt_texts(body)
            yield from _stmt_texts(statement.orelse)
        elif isinstance(statement, ir.For):
            yield statement.iterable
            yield from _stmt_texts(statement.body)


def _name_used(name: str, texts: Sequence[str]) -> bool:
    """True when ``name`` occurs as a whole identifier in any of ``texts``."""
    pattern = re.compile(rf"\b{re.escape(name)}\b")
    return any(pattern.search(text) for text in texts)


def _assigned_names(statements: Sequence[ir.IRStmt]) -> set:
    """Simple-name assignment targets anywhere in ``statements``."""
    names: set = set()
    for statement in statements:
        if isinstance(statement, ir.Assign):
            if statement.target.isidentifier():
                names.add(statement.target)
        elif isinstance(statement, ir.If):
            for _condition, body in statement.branches:
                names |= _assigned_names(body)
            names |= _assigned_names(statement.orelse)
        elif isinstance(statement, ir.For):
            names |= _assigned_names(statement.body)
    return names


def _rename_stmt(statement: ir.IRStmt, sub) -> ir.IRStmt:
    """Copy of ``statement`` with ``sub`` applied to every source fragment."""
    if isinstance(statement, ir.Assign):
        return ir.Assign(sub(statement.target), sub(statement.expression))
    if isinstance(statement, ir.Return):
        return ir.Return(sub(statement.expression))
    if isinstance(statement, ir.ExprStmt):
        return ir.ExprStmt(sub(statement.expression))
    if isinstance(statement, ir.If):
        return ir.If(
            branches=[
                (sub(condition), [_rename_stmt(inner, sub) for inner in body])
                for condition, body in statement.branches
            ],
            orelse=[_rename_stmt(inner, sub) for inner in statement.orelse],
        )
    if isinstance(statement, ir.For):
        return ir.For(
            target=statement.target,
            iterable=sub(statement.iterable),
            body=[_rename_stmt(inner, sub) for inner in statement.body],
        )
    return statement


def _prune_dead_assigns(
    statements: List[ir.IRStmt], live_texts: Sequence[str]
) -> List[ir.IRStmt]:
    """Drop simple-name assignments whose targets are never read afterwards.

    ``live_texts`` are the source fragments of the statements that follow
    ``statements`` (e.g. the inlined ALU's output assignment).  Only
    assignments to plain identifiers are candidates — subscript targets like
    ``state[0]`` are state mutations and always kept.  Generated expressions
    at the inline levels are pure arithmetic, so dropping an unused
    assignment cannot change behaviour.
    """
    kept_reversed: List[ir.IRStmt] = []
    used_texts: List[str] = list(live_texts)
    for statement in reversed(statements):
        if (
            isinstance(statement, ir.Assign)
            and statement.target.isidentifier()
            and not _name_used(statement.target, used_texts)
        ):
            continue
        kept_reversed.append(statement)
        used_texts.extend(_stmt_texts([statement]))
    return list(reversed(kept_reversed))


class PipelineGenerator:
    """Generates the pipeline-description module for one hardware configuration."""

    def __init__(
        self,
        spec: PipelineSpec,
        machine_code: Optional[MachineCode] = None,
        opt_level: int = OPT_UNOPTIMIZED,
        validate_machine_code: bool = True,
    ):
        if opt_level not in OPT_LEVELS:
            raise CodegenError(f"opt_level must be one of {OPT_LEVELS}, got {opt_level}")
        if opt_level != OPT_UNOPTIMIZED and machine_code is None:
            raise CodegenError(
                "machine code must be supplied to dgen for SCC propagation / inlining (paper §3.4)"
            )
        self.spec = spec
        self.machine_code = machine_code
        self.opt_level = opt_level
        if machine_code is not None and validate_machine_code:
            missing = spec.validate_machine_code(machine_code)
            if missing:
                raise MissingMachineCodeError(
                    missing[0],
                    message=(
                        f"machine code is missing {len(missing)} pair(s) required by this "
                        f"pipeline, e.g. {missing[0]!r}"
                    ),
                )

    # ------------------------------------------------------------------
    # Module generation
    # ------------------------------------------------------------------
    def generate(self) -> ir.Module:
        """Build the full pipeline-description module."""
        spec = self.spec
        module = ir.Module(
            docstring=(
                f"Pipeline description for {spec.name!r} generated by dgen.\n\n"
                f"depth={spec.depth}, width={spec.width}, "
                f"stateful ALU={spec.stateful_alu.name!r}, "
                f"stateless ALU={spec.stateless_alu.name!r}, "
                f"optimisation level={self.opt_level} ({OPT_LEVEL_NAMES[self.opt_level]})"
            ),
            globals=[
                ir.Assign("PIPELINE_NAME", repr(spec.name)),
                ir.Assign("PIPELINE_DEPTH", str(spec.depth)),
                ir.Assign("PIPELINE_WIDTH", str(spec.width)),
                ir.Assign("NUM_CONTAINERS", str(spec.num_containers)),
                ir.Assign("NUM_STATE_VARS", str(spec.num_state_vars)),
                ir.Assign("OPT_LEVEL", str(self.opt_level)),
                ir.Assign("OPT_LEVEL_NAME", repr(OPT_LEVEL_NAMES[self.opt_level])),
            ],
        )

        stage_function_names: List[str] = []
        stage_alu_codes: List[Tuple[List[ALUCode], List[ALUCode]]] = []
        for stage in range(spec.depth):
            name, codes = self._generate_stage(stage, module)
            stage_function_names.append(name)
            stage_alu_codes.append(codes)

        module.trailer.append(
            ir.Assign("STAGE_FUNCTIONS", "[" + ", ".join(stage_function_names) + "]")
        )
        if self.opt_level == OPT_FUSED:
            self._generate_run_trace(module, stage_alu_codes)
            module.trailer.append(ir.Assign("RUN_TRACE", RUN_TRACE_FUNCTION_NAME))
            module.trailer.append(
                ir.Assign("RUN_TRACE_OBSERVED", RUN_TRACE_OBSERVED_FUNCTION_NAME)
            )
        return module

    # ------------------------------------------------------------------
    # Per-stage generation
    # ------------------------------------------------------------------
    def _generate_stage(
        self, stage: int, module: ir.Module
    ) -> Tuple[str, Tuple[List[ALUCode], List[ALUCode]]]:
        stateless_codes, stateful_codes = self._alu_codes(stage)

        body, out_names = self._stage_body(stage, stateless_codes, stateful_codes, module)
        body.append(ir.Return("[" + ", ".join(out_names) + "]"))

        for code in stateless_codes + stateful_codes:
            module.functions.extend(code.helpers)
            module.functions.append(code.function)

        stage_name = f"stage_{stage}"
        module.functions.append(
            ir.FunctionDef(
                name=stage_name,
                params=["phv", "state", "values"],
                body=body,
                docstring=(
                    f"Execute pipeline stage {stage}: reads the PHV read half, "
                    "updates the stage's stateful-ALU state vectors, and returns the "
                    "write-half container values."
                ),
            )
        )
        return stage_name, (stateless_codes, stateful_codes)

    def _alu_codes(self, stage: int) -> Tuple[List[ALUCode], List[ALUCode]]:
        """Generate the per-slot stateless and stateful ALU code for one stage."""
        spec = self.spec
        values = dict(self.machine_code) if self.machine_code is not None else None

        stateless_codes: List[ALUCode] = []
        stateful_codes: List[ALUCode] = []
        for slot in range(spec.width):
            stateless_codes.append(
                ALUFunctionGenerator(
                    spec=spec.stateless_alu,
                    stage=stage,
                    kind=naming.STATELESS,
                    slot=slot,
                    opt_level=self.opt_level,
                    machine_code=values,
                ).generate()
            )
            stateful_codes.append(
                ALUFunctionGenerator(
                    spec=spec.stateful_alu,
                    stage=stage,
                    kind=naming.STATEFUL,
                    slot=slot,
                    opt_level=self.opt_level,
                    machine_code=values,
                ).generate()
            )
        return stateless_codes, stateful_codes

    def _stage_body(
        self,
        stage: int,
        stateless_codes: List[ALUCode],
        stateful_codes: List[ALUCode],
        module: ir.Module,
        state_expr: str = "state",
    ) -> Tuple[List[ir.IRStmt], List[str]]:
        """Emit one stage's statements (without the terminal return/assign).

        ``state_expr`` is the source fragment naming the stage's state vector
        list; the per-stage functions use their ``state`` parameter, while the
        fused ``run_trace`` loop hoists ``state_k = state[k]`` locals.
        Returns the statements and the ``phv_out_*`` variable names holding
        the stage's result containers.
        """
        body: List[ir.IRStmt] = []
        body.append(ir.Comment("input multiplexers and stateless ALUs"))
        stateless_outputs = self._emit_alu_calls(
            stage, naming.STATELESS, stateless_codes, body, module, state_expr
        )
        body.append(ir.Comment("input multiplexers and stateful ALUs"))
        stateful_outputs = self._emit_alu_calls(
            stage, naming.STATEFUL, stateful_codes, body, module, state_expr
        )

        body.append(ir.Comment("output multiplexers select what each PHV container receives"))
        out_names: List[str] = []
        for container in range(self.spec.width):
            out_name = f"phv_out_{container}"
            out_names.append(out_name)
            body.append(
                ir.Assign(
                    out_name,
                    self._output_mux_code(stage, container, stateless_outputs, stateful_outputs, module),
                )
            )
        return body, out_names

    def _emit_alu_calls(
        self,
        stage: int,
        kind: str,
        codes: List[ALUCode],
        body: List[ir.IRStmt],
        module: ir.Module,
        state_expr: str = "state",
    ) -> List[str]:
        """Emit operand selection and ALU invocation; return the output variable names."""
        outputs: List[str] = []
        for slot, code in enumerate(codes):
            operand_vars: List[str] = []
            for operand in range(code.spec.num_operands):
                var_name = f"{kind}_{slot}_operand_{operand}"
                operand_vars.append(var_name)
                body.append(
                    ir.Assign(var_name, self._input_mux_code(stage, kind, slot, operand, module))
                )
            output_var = f"{kind}_output_{slot}"
            outputs.append(output_var)
            state_code = f"{state_expr}[{slot}]"
            body.append(ir.Assign(output_var, code.call(operand_vars, state_code=state_code)))
        return outputs

    # ------------------------------------------------------------------
    # Fused trace loop (opt level 3)
    # ------------------------------------------------------------------
    def _generate_run_trace(
        self,
        module: ir.Module,
        stage_alu_codes: List[Tuple[List[ALUCode], List[ALUCode]]],
    ) -> None:
        """Emit the fused ``run_trace`` entry point (plus its observed twin).

        Every stage body is inlined into one loop over the input trace, so a
        PHV runs through the whole pipeline without any interpreter-side
        per-tick bookkeeping.  Per-stage state lists are hoisted into locals
        before the loop.  Stage-body locals may be reassigned across stages
        inside one loop iteration; that is safe because every local is
        written before it is read within its stage.  The assembled loop body
        runs through the constant-propagation/peephole pass, which folds the
        constant residue that ALU inlining leaves behind.

        ``run_trace_observed`` is the same loop with a snapshot hook invoked
        after every (PHV, stage) execution —
        ``observer(phv_index, stage, phv, stage_state)`` — so the debugger's
        recorder can watch exactly what the production fast path computes.
        """
        spec = self.spec
        hoists: Dict[str, str] = {}
        stage_stmts: List[List[ir.IRStmt]] = []
        for stage, (stateless_codes, stateful_codes) in enumerate(stage_alu_codes):
            stage_stmts.append(
                self._fused_stage_stmts(
                    stage, stateless_codes, stateful_codes, module, f"state_{stage}", hoists
                )
            )

        def prefix() -> List[ir.IRStmt]:
            body: List[ir.IRStmt] = []
            body.append(ir.Comment("hoist loop-invariant state vectors out of the trace loop"))
            for stage in range(spec.depth):
                body.append(ir.Assign(f"state_{stage}", f"state[{stage}]"))
            for name, expression in hoists.items():
                body.append(ir.Assign(name, expression))
            body.append(ir.Assign("outputs", "[]"))
            body.append(ir.Assign("_append", "outputs.append"))
            return body

        loop_body: List[ir.IRStmt] = []
        for stage, stmts in enumerate(stage_stmts):
            loop_body.append(ir.Comment(f"pipeline stage {stage}, inlined"))
            loop_body.extend(stmts)
        loop_body.append(ir.ExprStmt("_append(phv)"))
        loop_body = peephole_block(loop_body)

        body = prefix()
        body.append(ir.For("phv", "inputs", loop_body))
        body.append(ir.Return("outputs"))
        module.functions.append(
            ir.FunctionDef(
                name=RUN_TRACE_FUNCTION_NAME,
                params=["inputs", "state", "values"],
                body=body,
                docstring=(
                    "Fused trace loop (opt level 3): push every input PHV through all "
                    f"{spec.depth} stages sequentially.  Mutates ``state`` in place and "
                    "returns one output container list per input PHV.  Equivalent to the "
                    "tick-accurate model for this feedforward pipeline."
                ),
            )
        )

        observed_body: List[ir.IRStmt] = []
        for stage, stmts in enumerate(stage_stmts):
            observed_body.append(ir.Comment(f"pipeline stage {stage}, inlined"))
            observed_body.extend(stmts)
            observed_body.append(
                ir.ExprStmt(f"observer(_phv_index, {stage}, phv, state_{stage})")
            )
        observed_body.append(ir.ExprStmt("_append(phv)"))
        observed_body = peephole_block(observed_body)

        body = prefix()
        body.append(ir.For("_phv_index, phv", "enumerate(inputs)", observed_body))
        body.append(ir.Return("outputs"))
        module.functions.append(
            ir.FunctionDef(
                name=RUN_TRACE_OBSERVED_FUNCTION_NAME,
                params=["inputs", "state", "values", "observer"],
                body=body,
                docstring=(
                    "Fused trace loop with per-stage snapshot hooks: identical to "
                    "``run_trace`` but calls ``observer(phv_index, stage, phv, "
                    "stage_state)`` after every (PHV, stage) execution.  The hook "
                    "receives live objects; copy them if you keep them."
                ),
            )
        )

    def _fused_stage_stmts(
        self,
        stage: int,
        stateless_codes: List[ALUCode],
        stateful_codes: List[ALUCode],
        module: ir.Module,
        state_expr: str,
        hoists: Dict[str, str],
    ) -> List[ir.IRStmt]:
        """One stage's statements for the fused loop, specialised further.

        Beyond the per-stage function body, two fusion-only optimisations
        apply (both invisible in the output trace and final state):

        * stateless ALUs are pure, so a stateless ALU whose output no output
          multiplexer selects is not executed at all;
        * ALU bodies with a single top-level ``return`` are inlined into the
          loop (their parameters become loop locals), eliminating the
          per-PHV, per-ALU Python call overhead.

        Stateful ALUs always execute — their state updates must match the
        tick-accurate model bit for bit even when their output is unused.
        """
        spec = self.spec
        stateless_names = [f"stateless_output_{slot}" for slot in range(spec.width)]
        stateful_names = [f"stateful_output_{slot}" for slot in range(spec.width)]
        mux_exprs = [
            self._output_mux_code(stage, container, stateless_names, stateful_names, module)
            for container in range(spec.width)
        ]
        used = set(mux_exprs)

        stmts: List[ir.IRStmt] = []
        for slot, code in enumerate(stateless_codes):
            if stateless_names[slot] not in used:
                continue
            stmts.extend(
                self._fused_alu_stmts(
                    stage,
                    code,
                    slot,
                    stateless_names[slot],
                    state_expr,
                    module,
                    hoists,
                    emit_output=True,
                )
            )
        for slot, code in enumerate(stateful_codes):
            stmts.extend(
                self._fused_alu_stmts(
                    stage,
                    code,
                    slot,
                    stateful_names[slot],
                    state_expr,
                    module,
                    hoists,
                    emit_output=stateful_names[slot] in used,
                )
            )
        stmts.append(ir.Assign("phv", "[" + ", ".join(mux_exprs) + "]"))
        return stmts

    def _fused_alu_stmts(
        self,
        stage: int,
        code: ALUCode,
        slot: int,
        output_var: str,
        state_expr: str,
        module: ir.Module,
        hoists: Dict[str, str],
        emit_output: bool,
    ) -> List[ir.IRStmt]:
        """Emit one ALU's work for the fused loop, inlining its body if possible."""
        operand_codes = [
            self._input_mux_code(stage, code.kind, slot, operand, module)
            for operand in range(code.spec.num_operands)
        ]
        state_code = f"{state_expr}[{slot}]"
        inlined = self._inline_alu_body(
            code, operand_codes, state_code, output_var, emit_output, hoists
        )
        if inlined is not None:
            return inlined
        call = code.call(operand_codes, state_code=state_code)
        if emit_output:
            return [ir.Assign(output_var, call)]
        return [ir.ExprStmt(call)]

    @staticmethod
    def _inline_alu_body(
        code: ALUCode,
        operand_codes: List[str],
        state_code: str,
        output_var: str,
        emit_output: bool,
        hoists: Dict[str, str],
    ) -> Optional[List[ir.IRStmt]]:
        """Inline an ALU function body into the fused loop, or ``None``.

        Only bodies whose single ``return`` is a top-level statement qualify
        (an early ``return`` inside a branch cannot become straight-line
        code); statements after it are unreachable and dropped.  Parameters
        become loop locals, with three refinements that keep per-PHV work
        minimal:

        * dead assignments (e.g. an unused ``_default_output``) are pruned;
        * the ``state`` parameter is loop-invariant, so its binding is
          hoisted out of the loop (via ``hoists``) and renamed into the body
          instead of being rebound for every PHV;
        * an operand used exactly once is substituted into the body rather
          than bound.
        """
        function = code.function
        if function is None:  # pragma: no cover - defensive
            return None
        prefix: List[ir.IRStmt] = []
        returned: Optional[ir.Return] = None
        for statement in function.body:
            if isinstance(statement, ir.Return):
                returned = statement
                break
            if _contains_return(statement):
                return None
            prefix.append(statement)
        if returned is None:
            return None
        args = list(operand_codes)
        if code.kind == naming.STATEFUL:
            args.append(state_code)
        if len(args) != len(function.params):
            return None  # e.g. a runtime ``values`` parameter; keep the call
        live_texts = [returned.expression] if emit_output else []
        prefix = _prune_dead_assigns(prefix, live_texts)
        body_texts = list(_stmt_texts(prefix)) + live_texts
        reassigned = _assigned_names(prefix)

        bindings: List[ir.IRStmt] = []
        mapping: Dict[str, str] = {}
        for param, arg in zip(function.params, args):
            pattern = re.compile(rf"\b{re.escape(param)}\b")
            uses = sum(len(pattern.findall(text)) for text in body_texts)
            if uses == 0:
                continue
            if param in reassigned:
                bindings.append(ir.Assign(param, arg))
            elif arg == state_code and code.kind == naming.STATEFUL and param == function.params[-1]:
                # State vectors are stable objects: hoist the lookup out of
                # the loop and reference the hoisted local from the body.
                hoisted = re.sub(r"\W+", "_", arg).strip("_")
                hoists.setdefault(hoisted, arg)
                mapping[param] = hoisted
            elif uses == 1:
                mapping[param] = arg
            else:
                bindings.append(ir.Assign(param, arg))
        if mapping:
            pattern = re.compile(r"\b(" + "|".join(map(re.escape, mapping)) + r")\b")

            def sub(text: str) -> str:
                return pattern.sub(lambda match: mapping[match.group(1)], text)

            prefix = [_rename_stmt(statement, sub) for statement in prefix]
            returned = ir.Return(sub(returned.expression))

        stmts: List[ir.IRStmt] = bindings + prefix
        if emit_output:
            stmts.append(ir.Assign(output_var, returned.expression))
        return stmts

    # ------------------------------------------------------------------
    # Multiplexers
    # ------------------------------------------------------------------
    def _input_mux_code(self, stage: int, kind: str, slot: int, operand: int, module: ir.Module) -> str:
        width = self.spec.width
        pair_name = naming.input_mux_name(stage, kind, slot, operand)
        function_name = input_mux_function_name(stage, kind, slot, operand)

        if self.opt_level == OPT_UNOPTIMIZED:
            module.functions.append(
                ir.FunctionDef(
                    name=function_name,
                    params=["phv", "opcode"],
                    body=[ir.Return(f"phv[opcode % {width}]")],
                )
            )
            return f'{function_name}(phv, values["{pair_name}"])'

        selected = self._mc_value(pair_name) % width
        if self.opt_level == OPT_SCC:
            module.functions.append(
                ir.FunctionDef(
                    name=function_name,
                    params=["phv"],
                    body=[ir.Return(f"phv[{selected}]")],
                )
            )
            return f"{function_name}(phv)"
        return f"phv[{selected}]"

    def _output_mux_code(
        self,
        stage: int,
        container: int,
        stateless_outputs: List[str],
        stateful_outputs: List[str],
        module: ir.Module,
    ) -> str:
        spec = self.spec
        width = spec.width
        choices = spec.output_mux_choices
        pair_name = naming.output_mux_name(stage, container)
        function_name = output_mux_function_name(stage, container)
        candidate_params = (
            [f"stateless_{i}" for i in range(width)]
            + [f"stateful_{i}" for i in range(width)]
            + ["passthrough"]
        )
        call_args = list(stateless_outputs) + list(stateful_outputs) + [f"phv[{container}]"]

        if self.opt_level == OPT_UNOPTIMIZED:
            branches = [
                (f"opcode % {choices} == {value}", [ir.Return(candidate_params[value])])
                for value in range(choices - 1)
            ]
            module.functions.append(
                ir.FunctionDef(
                    name=function_name,
                    params=candidate_params + ["opcode"],
                    body=[ir.If(branches=branches, orelse=[ir.Return(candidate_params[-1])])],
                )
            )
            return f'{function_name}({", ".join(call_args)}, values["{pair_name}"])'

        selected = self._mc_value(pair_name) % choices
        if self.opt_level == OPT_SCC:
            module.functions.append(
                ir.FunctionDef(
                    name=function_name,
                    params=candidate_params,
                    body=[ir.Return(candidate_params[selected])],
                )
            )
            return f'{function_name}({", ".join(call_args)})'
        return call_args[selected]

    def _mc_value(self, pair_name: str) -> int:
        assert self.machine_code is not None
        try:
            return int(self.machine_code[pair_name])
        except KeyError:
            raise MissingMachineCodeError(pair_name) from None
