"""ALU-level code generation.

This module lowers one analysed ALU DSL specification into the Python
functions of the pipeline description, at one of the three optimisation
levels of the paper (Figure 6):

* **level 0** (version 1, unoptimised): every hole-controlled primitive call
  site becomes a per-site helper function that takes its operands *and* an
  opcode argument and dispatches on the opcode with an ``if``/``elif`` chain;
  the ALU function fetches the opcodes from the ``values`` hash table of
  machine-code pairs at simulation time.
* **level 1** (version 2, SCC propagation): machine-code values are known at
  generation time, so each helper collapses to a single ``return`` of the
  behaviour its opcode selects, the opcode parameters disappear, and ``if``
  statements in the ALU body whose conditions fold to constants are pruned.
* **level 2** (version 3, SCC propagation + function inlining): the helper
  functions disappear entirely; their specialised bodies are inlined into the
  ALU function, which typically collapses to a handful of assignments.
* **level 3** (fused pipeline): ALU-level code is identical to level 2, but
  the pipeline builder additionally emits a generated ``run_trace`` function
  that loops over the whole input trace inline — one more rung on the paper's
  specialization ladder, moving the simulation driver itself into the
  generated code (see :mod:`repro.dgen.pipeline_builder`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..alu_dsl import semantics
from ..alu_dsl.ast_nodes import (
    ALUSpec,
    ArithOpExpr,
    Assign,
    BinaryOp,
    BoolOpExpr,
    ConstExpr,
    Expr,
    If,
    MuxExpr,
    Number,
    OptExpr,
    RelOpExpr,
    Return,
    Stmt,
    UnaryOp,
    Var,
)
from ..errors import CodegenError
from ..ir import nodes as ir
from ..machine_code import naming
from .optimize.constant_propagation import (
    specialize_expr,
    specialize_primitive_template,
    specialize_spec,
)
from .optimize.inlining import inline_call

#: Optimisation levels accepted throughout dgen.
OPT_UNOPTIMIZED = 0
OPT_SCC = 1
OPT_SCC_INLINE = 2
OPT_FUSED = 3
OPT_LEVELS = (OPT_UNOPTIMIZED, OPT_SCC, OPT_SCC_INLINE, OPT_FUSED)
OPT_LEVEL_NAMES = {
    OPT_UNOPTIMIZED: "unoptimized",
    OPT_SCC: "scc_propagation",
    OPT_SCC_INLINE: "scc_propagation_and_inlining",
    OPT_FUSED: "fused_pipeline",
}
#: Levels at which helper functions are inlined into the ALU functions.
_INLINE_LEVELS = (OPT_SCC_INLINE, OPT_FUSED)


def alu_function_name(stage: int, kind: str, slot: int) -> str:
    """Name of the generated function implementing one ALU instance."""
    return f"stage_{stage}_{kind}_alu_{slot}"


def helper_function_name(stage: int, kind: str, slot: int, hole: str) -> str:
    """Name of the generated helper function for one primitive call site."""
    return f"stage_{stage}_{kind}_alu_{slot}_{hole}"


def input_mux_function_name(stage: int, kind: str, slot: int, operand: int) -> str:
    """Name of the generated input-multiplexer helper function."""
    return f"stage_{stage}_{kind}_alu_{slot}_input_mux_{operand}"


def output_mux_function_name(stage: int, container: int) -> str:
    """Name of the generated output-multiplexer helper function."""
    return f"stage_{stage}_output_mux_phv_{container}"


@dataclass
class ALUCode:
    """Generated code for one ALU instance.

    ``helpers`` are the per-primitive-site helper functions (empty at the
    inlined level) and ``function`` is the ALU function itself.  ``call``
    renders a call to the ALU function given operand source fragments.
    """

    stage: int
    kind: str
    slot: int
    spec: ALUSpec
    opt_level: int
    helpers: List[ir.FunctionDef] = field(default_factory=list)
    function: Optional[ir.FunctionDef] = None

    def call(self, operand_codes: Sequence[str], state_code: str = "state") -> str:
        """Python source for invoking this ALU with the given operand fragments.

        ``state_code`` is the source fragment for the ALU's state vector
        (ignored for stateless ALUs).
        """
        if self.function is None:  # pragma: no cover - defensive
            raise CodegenError("ALU function has not been generated")
        args = list(operand_codes)
        if self.kind == naming.STATEFUL:
            args.append(state_code)
        if self.opt_level == OPT_UNOPTIMIZED:
            args.append("values")
        return f"{self.function.name}({', '.join(args)})"


class ALUFunctionGenerator:
    """Generates the helper functions and ALU function for one ALU instance."""

    def __init__(
        self,
        spec: ALUSpec,
        stage: int,
        kind: str,
        slot: int,
        opt_level: int,
        machine_code: Optional[Mapping[str, int]] = None,
    ):
        if opt_level not in OPT_LEVELS:
            raise CodegenError(f"opt_level must be one of {OPT_LEVELS}, got {opt_level}")
        if opt_level != OPT_UNOPTIMIZED and machine_code is None:
            raise CodegenError(
                "SCC propagation and inlining require machine code at generation time (paper §3.4)"
            )
        if kind != spec.kind:
            raise CodegenError(f"ALU spec {spec.name!r} is {spec.kind}, requested kind {kind}")
        self.spec = spec
        self.stage = stage
        self.kind = kind
        self.slot = slot
        self.opt_level = opt_level
        self._machine_code = machine_code
        self._helpers: Dict[str, ir.FunctionDef] = {}
        self._local_holes: Optional[Dict[str, int]] = None
        if machine_code is not None:
            self._local_holes = {}
            for hole in spec.holes:
                full = naming.alu_hole_name(stage, kind, slot, hole)
                if full in machine_code:
                    self._local_holes[hole] = int(machine_code[full])

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def generate(self) -> ALUCode:
        """Generate this ALU instance's helpers and function."""
        code = ALUCode(
            stage=self.stage,
            kind=self.kind,
            slot=self.slot,
            spec=self.spec,
            opt_level=self.opt_level,
        )
        body: List[ir.IRStmt] = []
        if self.spec.is_stateful and self.spec.state_vars:
            body.append(ir.Comment("default output: value of the first state variable before update"))
            body.append(ir.Assign("_default_output", "state[0]"))

        if self.opt_level in _INLINE_LEVELS:
            specialized = specialize_spec(self.spec, self._local_holes or {})
            body.extend(self._emit_stmts(specialized.body))
        else:
            body.extend(self._emit_stmts(self.spec.body))

        if self.spec.is_stateful and self.spec.state_vars:
            body.append(ir.Return("_default_output"))
        else:
            body.append(ir.Return("0"))

        params = list(self.spec.packet_fields)
        if self.spec.is_stateful:
            params.append("state")
        if self.opt_level == OPT_UNOPTIMIZED:
            params.append("values")

        code.function = ir.FunctionDef(
            name=alu_function_name(self.stage, self.kind, self.slot),
            params=params,
            body=body,
            docstring=(
                f"{self.spec.kind} ALU {self.spec.name!r} at stage {self.stage}, slot {self.slot} "
                f"({OPT_LEVEL_NAMES[self.opt_level]})"
            ),
        )
        code.helpers = list(self._helpers.values())
        return code

    # ------------------------------------------------------------------
    # Statement emission
    # ------------------------------------------------------------------
    def _emit_stmts(self, stmts: Sequence[Stmt]) -> List[ir.IRStmt]:
        emitted: List[ir.IRStmt] = []
        for stmt in stmts:
            if isinstance(stmt, Assign):
                emitted.append(ir.Assign(self._target_code(stmt.target), self._expr_code(stmt.value)))
            elif isinstance(stmt, Return):
                emitted.append(ir.Return(self._expr_code(stmt.value)))
            elif isinstance(stmt, If):
                emitted.extend(self._emit_if(stmt))
            else:  # pragma: no cover - defensive
                raise CodegenError(f"unknown statement node {type(stmt).__name__}")
        return emitted

    def _emit_if(self, stmt: If) -> List[ir.IRStmt]:
        # At the SCC levels, conditions whose specialised form folds to a
        # constant are resolved at generation time (abstract interpretation of
        # control flow, paper §3.4).  At level 0 every branch is emitted.
        branches: List = []
        orelse_stmts: Sequence[Stmt] = stmt.orelse
        for condition, body in stmt.branches:
            if self.opt_level != OPT_UNOPTIMIZED:
                folded = specialize_expr(condition, self._local_holes or {}, self.spec.hole_vars)
                if isinstance(folded, Number):
                    if folded.value == 0:
                        continue
                    orelse_stmts = body
                    break
            branches.append((self._expr_code(condition), self._emit_stmts(body)))
        if not branches:
            return self._emit_stmts(orelse_stmts)
        return [ir.If(branches=branches, orelse=self._emit_stmts(orelse_stmts))]

    def _target_code(self, target: str) -> str:
        if target in self.spec.state_vars:
            return f"state[{self.spec.state_vars.index(target)}]"
        return target

    # ------------------------------------------------------------------
    # Expression emission
    # ------------------------------------------------------------------
    def _expr_code(self, expr: Expr) -> str:
        if isinstance(expr, Number):
            return str(expr.value)
        if isinstance(expr, Var):
            return self._var_code(expr.name)
        if isinstance(expr, UnaryOp):
            template = semantics.UNARY_OPS[expr.op][0]
            return template.format(a=self._expr_code(expr.operand))
        if isinstance(expr, BinaryOp):
            template = semantics.BINARY_OPS[expr.op][0]
            return template.format(a=self._expr_code(expr.left), b=self._expr_code(expr.right))
        if isinstance(expr, (MuxExpr, OptExpr, ConstExpr, RelOpExpr, ArithOpExpr, BoolOpExpr)):
            return self._primitive_code(expr)
        raise CodegenError(f"unknown expression node {type(expr).__name__}")

    def _var_code(self, name: str) -> str:
        if name in self.spec.packet_fields:
            return name
        if name in self.spec.state_vars:
            return f"state[{self.spec.state_vars.index(name)}]"
        if name in self.spec.hole_vars:
            full = naming.alu_hole_name(self.stage, self.kind, self.slot, name)
            if self.opt_level == OPT_UNOPTIMIZED:
                return f'values["{full}"]'
            return str(self._require_hole(name))
        return name  # local variable

    # ------------------------------------------------------------------
    # Hole-controlled primitives
    # ------------------------------------------------------------------
    def _primitive_code(self, expr) -> str:
        hole = expr.hole_name
        if hole is None:
            raise CodegenError(
                f"ALU {self.spec.name!r} has an unnamed primitive site; run analysis first"
            )
        operand_exprs = self._primitive_operands(expr)
        operand_codes = [self._expr_code(sub) for sub in operand_exprs]

        if self.opt_level == OPT_UNOPTIMIZED:
            helper = self._register_generic_helper(expr, hole, len(operand_codes))
            full = naming.alu_hole_name(self.stage, self.kind, self.slot, hole)
            args = operand_codes + [f'values["{full}"]']
            return f"{helper}({', '.join(args)})"

        template, _arity = specialize_primitive_template(expr, self._local_holes or {})
        if self.opt_level in _INLINE_LEVELS:
            return inline_call(template, operand_codes)
        # OPT_SCC: keep the helper-call structure of Figure 6 version 2, but the
        # helper body is the single specialised expression.  Immediates are an
        # exception: a constant needs no function call, it is simply propagated.
        if isinstance(expr, ConstExpr):
            return template
        helper = self._register_specialized_helper(hole, template, len(operand_codes))
        return f"{helper}({', '.join(operand_codes)})"

    @staticmethod
    def _primitive_operands(expr) -> Sequence[Expr]:
        if isinstance(expr, MuxExpr):
            return list(expr.inputs)
        if isinstance(expr, OptExpr):
            return [expr.operand]
        if isinstance(expr, ConstExpr):
            return []
        if isinstance(expr, (RelOpExpr, ArithOpExpr, BoolOpExpr)):
            return [expr.left, expr.right]
        raise CodegenError(f"{type(expr).__name__} is not a primitive")

    def _require_hole(self, hole: str) -> int:
        assert self._local_holes is not None
        if hole not in self._local_holes:
            from ..errors import MissingMachineCodeError

            raise MissingMachineCodeError(naming.alu_hole_name(self.stage, self.kind, self.slot, hole))
        return self._local_holes[hole]

    # ------------------------------------------------------------------
    # Helper-function registration
    # ------------------------------------------------------------------
    def _register_specialized_helper(self, hole: str, template: str, arity: int) -> str:
        name = helper_function_name(self.stage, self.kind, self.slot, hole)
        if name not in self._helpers:
            params = [f"op{i}" for i in range(arity)]
            body_expr = template.format(**{f"op{i}": f"op{i}" for i in range(arity)})
            self._helpers[name] = ir.FunctionDef(
                name=name,
                params=params,
                body=[ir.Return(body_expr)],
            )
        return name

    def _register_generic_helper(self, expr, hole: str, arity: int) -> str:
        name = helper_function_name(self.stage, self.kind, self.slot, hole)
        if name in self._helpers:
            return name
        params = [f"op{i}" for i in range(arity)] + ["opcode"]
        body = self._generic_helper_body(expr, arity)
        self._helpers[name] = ir.FunctionDef(name=name, params=params, body=body)
        return name

    def _generic_helper_body(self, expr, arity: int) -> List[ir.IRStmt]:
        operand_names = {f"op{i}": f"op{i}" for i in range(arity)}
        if isinstance(expr, MuxExpr):
            width = expr.width
            branches = [
                (f"opcode % {width} == {i}", [ir.Return(f"op{i}")]) for i in range(width - 1)
            ]
            return [ir.If(branches=branches, orelse=[ir.Return(f"op{width - 1}")])]
        if isinstance(expr, OptExpr):
            return [
                ir.If(
                    branches=[("opcode % 2 == 0", [ir.Return("op0")])],
                    orelse=[ir.Return("0")],
                )
            ]
        if isinstance(expr, ConstExpr):
            # The "operation" of an immediate is simply to forward its machine
            # code value.
            return [ir.Return("opcode")]
        if isinstance(expr, RelOpExpr):
            table = semantics.REL_OPS
        elif isinstance(expr, ArithOpExpr):
            table = semantics.ARITH_OPS
        elif isinstance(expr, BoolOpExpr):
            table = semantics.BOOL_OPS
        else:  # pragma: no cover - defensive
            raise CodegenError(f"{type(expr).__name__} is not a primitive")
        size = len(table)
        branches = [
            (
                f"opcode % {size} == {opcode}",
                [ir.Return(table[opcode][0].format(a="{op0}", b="{op1}").format(**operand_names))],
            )
            for opcode in range(size - 1)
        ]
        orelse = [ir.Return(table[size - 1][0].format(a="{op0}", b="{op1}").format(**operand_names))]
        return [ir.If(branches=branches, orelse=orelse)]


def generate_alu(
    spec: ALUSpec,
    stage: int,
    kind: str,
    slot: int,
    opt_level: int,
    machine_code: Optional[Mapping[str, int]] = None,
) -> ALUCode:
    """Convenience wrapper around :class:`ALUFunctionGenerator`."""
    return ALUFunctionGenerator(
        spec=spec,
        stage=stage,
        kind=kind,
        slot=slot,
        opt_level=opt_level,
        machine_code=machine_code,
    ).generate()
