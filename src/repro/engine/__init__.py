"""The unified execution-engine layer.

Both switch architectures of the paper — the RMT pipeline (§3) and dRMT's
run-to-completion processors (§4) — execute compiled programs through the
same three-driver ladder:

* **tick** — the paper's cycle-accurate interpreters (``dsim.Pipeline`` for
  RMT, the round-robin processor loop for dRMT).  Always available; the
  debugger records from this driver.
* **generic** — a sequential driver that loops over the compiled stage /
  processor functions without any per-tick machinery.  Works at every
  optimisation level (it is what speeds up opt levels 0-2 and the fuzzing
  workflow) and produces bit-for-bit the tick driver's results for
  feedforward programs.
* **fused** — the generated ``run_trace`` loop emitted by dgen (RMT opt
  level 3, and the dRMT fused program), where the driver itself is generated
  code.

:func:`repro.engine.base.resolve_engine` implements the selection rules
(``auto`` prefers fused, then generic; ``tick_accurate=True`` always forces
the tick driver), and every simulator facade —
:class:`repro.dsim.RMTSimulator`, :class:`repro.drmt.DRMTSimulator` and
:class:`repro.engine.rtc.RunToCompletionSimulator` — satisfies the
:class:`~repro.engine.base.ExecutionEngine` protocol: a common
``run(inputs, tick_accurate=False)`` contract returning a simulation result
that names the driver that produced it.
"""

from .base import (
    DEFAULT_SHARD_AUTO_THRESHOLD,
    ENGINE_AUTO,
    ENGINE_CHOICES,
    ENGINE_FUSED,
    ENGINE_GENERIC,
    ENGINE_SHARDED,
    ENGINE_TICK,
    ExecutionEngine,
    available_engines,
    resolve_engine,
)
from .result import SimulationResult, sequential_result
from .rmt import push_phv, run_stage_loop, stage_pairs
from .rtc import RunToCompletionSimulator
from .sharded import (
    ShardedDrmtDriver,
    ShardedRmtDriver,
    ShardPlan,
    ShardStateConflictError,
    plan_shards,
    stable_flow_hash,
)
from .transport import (
    TRANSPORT_CHOICES,
    TRANSPORT_PICKLE,
    TRANSPORT_SHM,
    PickleTransport,
    SharedMemoryTransport,
    ShardTransport,
    resolve_transport,
)

__all__ = [
    "ENGINE_AUTO",
    "ENGINE_TICK",
    "ENGINE_GENERIC",
    "ENGINE_FUSED",
    "ENGINE_SHARDED",
    "ENGINE_CHOICES",
    "DEFAULT_SHARD_AUTO_THRESHOLD",
    "ExecutionEngine",
    "available_engines",
    "resolve_engine",
    "SimulationResult",
    "sequential_result",
    "stage_pairs",
    "push_phv",
    "run_stage_loop",
    "RunToCompletionSimulator",
    "ShardPlan",
    "ShardStateConflictError",
    "ShardedDrmtDriver",
    "ShardedRmtDriver",
    "plan_shards",
    "stable_flow_hash",
    "TRANSPORT_CHOICES",
    "TRANSPORT_PICKLE",
    "TRANSPORT_SHM",
    "PickleTransport",
    "SharedMemoryTransport",
    "ShardTransport",
    "resolve_transport",
]
