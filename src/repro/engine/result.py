"""The unified simulation result shared by every RMT-side driver.

Every driver of a compiled pipeline description — tick, generic and fused,
whether dispatched by :class:`repro.dsim.RMTSimulator` or by the dRMT-style
:class:`repro.engine.rtc.RunToCompletionSimulator` — returns the same
:class:`SimulationResult`, so downstream consumers (equivalence checking,
fuzzing, benchmarks, the CLI) never care which driver ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..dsim.trace import Trace, TraceRecord
from ..errors import SimulationError


@dataclass
class SimulationResult:
    """Everything a simulation run produces.

    Attributes
    ----------
    input_trace:
        The PHV values fed into the pipeline, in input order.
    output_trace:
        The output trace: one record per input PHV (same order), plus the
        final per-stage state vectors.
    ticks:
        Number of simulation ticks executed (inputs + pipeline drain).
    engine:
        Name of the driver that produced this result (``tick``, ``generic``
        or ``fused``, optionally qualified by the simulator facade).
    """

    input_trace: List[List[int]]
    output_trace: Trace
    ticks: int
    engine: str = "tick"

    @property
    def outputs(self) -> List[tuple]:
        """Output container tuples in input order."""
        return self.output_trace.outputs()

    @property
    def final_state(self) -> Optional[List[List[List[int]]]]:
        """Final state vectors, indexed ``[stage][slot][state_var]``."""
        return self.output_trace.final_state


def validate_widths(inputs: Sequence[Sequence[int]], width: int) -> None:
    """Raise :class:`SimulationError` when any PHV has the wrong width."""
    for index, values in enumerate(inputs):
        if len(values) != width:
            raise SimulationError(
                f"PHV {index} has {len(values)} containers, pipeline width is {width}"
            )


def sequential_result(
    inputs: List[List[int]],
    outputs: Sequence[Sequence[int]],
    final_state: List[List[List[int]]],
    depth: int,
    engine: str,
) -> SimulationResult:
    """Assemble a :class:`SimulationResult` for a sequential (non-tick) driver.

    The tick model runs one tick per input plus ``depth`` drain ticks; the
    sequential drivers do no ticking of their own but report the equivalent
    count so results stay comparable across drivers.
    """
    trace = Trace()
    trace.records = list(
        map(TraceRecord, range(len(inputs)), map(tuple, inputs), map(tuple, outputs))
    )
    trace.final_state = final_state
    ticks = len(inputs) + depth if inputs else 0
    return SimulationResult(
        input_trace=inputs, output_trace=trace, ticks=ticks, engine=engine
    )
