"""RMT drivers: tick-accurate, generic sequential, and fused.

All three drivers execute the same compiled pipeline description and — for
the feedforward pipelines dgen generates — produce bit-for-bit identical
results: each stage's state is touched in PHV arrival order under every
driver.  They differ only in how much interpreter machinery sits on the hot
path:

* :func:`run_tick` drives :class:`repro.dsim.pipeline.Pipeline`, the paper's
  §3.3 per-tick model (PHV objects, read/write-half commits, slot
  shuffling);
* :func:`run_generic` loops over the description's ``STAGE_FUNCTIONS``
  sequentially, one PHV at a time — no per-tick machinery, works at every
  optimisation level (this is the driver that speeds up opt levels 0-2 and
  the fuzzing workflow);
* :func:`run_fused` hands the whole trace to the generated ``run_trace``
  loop (opt level 3), where the driver itself is generated code.

The module-level helpers :func:`stage_pairs`, :func:`push_phv` and
:func:`run_stage_loop` are the generic driver's core; the Chipmunk CEGIS
candidate evaluator reuses them so synthesis and simulation share one
sequential execution path.

:class:`RmtShardHandle` is the sharded meta-driver's picklable view of a
compiled description: a :class:`~repro.dgen.emit.PipelineDescription` itself
carries an executed module namespace (functions created by ``exec``) and
cannot cross a process boundary, but its *source text* can — a handle ships
the source plus the resolved runtime values, and every worker compiles it
once into a process-local namespace cache.  The handle is transport-neutral:
the pickle transport ships it next to each shard's trace slice, while the
shm transport (:mod:`repro.engine.transport`) ships only the handle and a
shared-buffer view, reconstructing ``work``/``state`` worker-side before
calling :meth:`RmtShardHandle.run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..dgen.emit import PipelineDescription
from ..dsim.phv import PHV
from ..dsim.pipeline import Pipeline
from ..dsim.trace import Trace
from ..errors import MissingMachineCodeError, SimulationError
from .base import ENGINE_FUSED, ENGINE_GENERIC, ENGINE_TICK
from .result import SimulationResult, sequential_result, validate_widths

#: One stage's compiled function paired with its (mutable) state vectors.
StagePair = Tuple[Callable, List[List[int]]]


# ----------------------------------------------------------------------
# Generic-driver core (shared with the Chipmunk candidate evaluator)
# ----------------------------------------------------------------------
def stage_pairs(
    stage_functions: Sequence[Callable], state: List[List[List[int]]]
) -> List[StagePair]:
    """Pair each stage function with its state vectors for fast iteration."""
    return list(zip(stage_functions, state))


def push_phv(
    pairs: Sequence[StagePair], phv: Sequence[int], values: Optional[Dict[str, int]]
) -> Sequence[int]:
    """Push one PHV through every stage sequentially and return its outputs."""
    for function, stage_state in pairs:
        phv = function(phv, stage_state, values)
    return phv


def run_stage_loop(
    stage_functions: Sequence[Callable],
    inputs: Sequence[Sequence[int]],
    state: List[List[List[int]]],
    values: Optional[Dict[str, int]],
) -> List[Sequence[int]]:
    """The generic sequential driver: all PHVs through all stages, in order.

    Mutates ``state`` in place and returns one output container list per
    input PHV.  Equivalent to the tick-accurate model for a feedforward
    pipeline, without any per-tick allocation.
    """
    pairs = stage_pairs(stage_functions, state)
    outputs: List[Sequence[int]] = []
    append = outputs.append
    try:
        for phv in inputs:
            for function, stage_state in pairs:
                phv = function(phv, stage_state, values)
            append(phv)
    except KeyError as error:
        # Unoptimised descriptions look machine code up at runtime; a missing
        # pair surfaces here (§5.2 failure class 1), as in the tick model.
        raise MissingMachineCodeError(str(error.args[0])) from error
    return outputs


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def run_tick(
    description: PipelineDescription,
    phv_values: Sequence[Sequence[int]],
    runtime_values: Optional[Dict[str, int]],
    initial_state: Optional[List[List[List[int]]]],
) -> SimulationResult:
    """Tick-accurate driver: the paper's §3.3 per-tick pipeline model."""
    pipeline = Pipeline(
        description, runtime_values=runtime_values, initial_state=initial_state
    )
    inputs = [list(values) for values in phv_values]
    exited: List[PHV] = pipeline.process(inputs)
    if len(exited) != len(inputs):
        raise SimulationError(
            f"pipeline emitted {len(exited)} PHVs for {len(inputs)} inputs"
        )
    trace = Trace()
    for phv, input_values in zip(exited, inputs):
        trace.append(phv.phv_id, input_values, phv.snapshot())
    trace.final_state = pipeline.state_snapshot()
    return SimulationResult(
        input_trace=inputs,
        output_trace=trace,
        ticks=pipeline.current_tick,
        engine=ENGINE_TICK,
    )


def prepare_inputs(
    description: PipelineDescription, phv_values: Sequence[Sequence[int]]
) -> Tuple[List[List[int]], List[List[int]]]:
    """Validate widths and coerce one working copy of the input trace."""
    inputs: List[List[int]] = [list(values) for values in phv_values]
    validate_widths(inputs, description.spec.width)
    work = [list(map(int, values)) for values in inputs]
    return inputs, work


def run_generic(
    description: PipelineDescription,
    phv_values: Sequence[Sequence[int]],
    runtime_values: Optional[Dict[str, int]],
    initial_state: Optional[List[List[List[int]]]],
) -> SimulationResult:
    """Generic sequential driver over the description's stage functions."""
    inputs, work = prepare_inputs(description, phv_values)
    state = initial_state if initial_state is not None else description.initial_state()
    values = runtime_values if runtime_values is not None else description.runtime_values()
    outputs = run_stage_loop(description.stage_functions, work, state, values)
    return sequential_result(
        inputs, outputs, state, description.spec.depth, ENGINE_GENERIC
    )


def run_fused(
    description: PipelineDescription,
    phv_values: Sequence[Sequence[int]],
    runtime_values: Optional[Dict[str, int]],
    initial_state: Optional[List[List[List[int]]]],
    observer: Optional[Callable] = None,
) -> SimulationResult:
    """Fused driver: the generated ``run_trace`` loop (opt level 3).

    With ``observer`` set, the observed variant of the loop is used instead:
    after every (PHV, stage) execution it calls
    ``observer(phv_index, stage, phv, stage_state)`` with the live output
    containers and the stage's state vectors (snapshot them if you keep
    them), which is what the debugger's fused recorder consumes.
    """
    fused = description.fused_function if observer is None else description.observed_function
    if fused is None:
        raise SimulationError(
            "description carries no fused run_trace entry point "
            f"(opt level {description.opt_level})"
        )
    inputs, work = prepare_inputs(description, phv_values)
    state = initial_state if initial_state is not None else description.initial_state()
    values = runtime_values if runtime_values is not None else description.runtime_values()
    if observer is None:
        outputs = fused(work, state, values)
    else:
        outputs = fused(work, state, values, observer)
    return sequential_result(
        inputs, outputs, state, description.spec.depth, ENGINE_FUSED
    )


# ----------------------------------------------------------------------
# Shard-local execution (the sharded meta-driver's per-shard entry point)
# ----------------------------------------------------------------------
#: Process-local cache of executed description namespaces, keyed by source
#: text.  Seeded by the parent with the already-executed namespace, so the
#: in-process path (and, on fork platforms, every pool worker) never
#: recompiles; a spawn-started worker compiles each distinct source once.
_NAMESPACE_CACHE: Dict[str, Dict[str, object]] = {}


def seed_namespace_cache(source: str, namespace: Dict[str, object]) -> None:
    """Register an already-executed description namespace for its source text."""
    _NAMESPACE_CACHE.setdefault(source, namespace)


def _namespace_for(source: str) -> Dict[str, object]:
    namespace = _NAMESPACE_CACHE.get(source)
    if namespace is None:
        namespace = {"__name__": "druzhba_shard_description"}
        exec(compile(source, "<druzhba_shard_description>", "exec"), namespace)  # noqa: S102
        _NAMESPACE_CACHE[source] = namespace
    return namespace


@dataclass(frozen=True)
class RmtShardHandle:
    """Picklable handle to one compiled pipeline description.

    ``mode`` names the sequential driver the shard runs under
    (:data:`ENGINE_GENERIC` or :data:`ENGINE_FUSED`); ``values`` is the
    resolved runtime-values dict (needed by unoptimised descriptions that
    look machine code up at runtime).
    """

    source: str
    mode: str
    values: Dict[str, int] = field(default_factory=dict)

    def run(
        self, work: List[List[int]], state: List[List[List[int]]]
    ) -> Tuple[List[Sequence[int]], List[List[List[int]]]]:
        """Run one shard's PHVs to completion; returns (outputs, final state).

        ``work`` must already be width-validated and integer-coerced (the
        parent's :func:`prepare_inputs` did both before partitioning) and
        ``state`` is the shard's private state copy, mutated in place.
        """
        namespace = _namespace_for(self.source)
        if self.mode == ENGINE_FUSED:
            fused = namespace.get("RUN_TRACE")
            if not callable(fused):  # pragma: no cover - guarded at plan time
                raise SimulationError("shard handle source carries no RUN_TRACE")
            outputs = fused(work, state, self.values)
        else:
            functions = namespace.get("STAGE_FUNCTIONS")
            if not isinstance(functions, list):  # pragma: no cover - guarded at plan time
                raise SimulationError("shard handle source carries no STAGE_FUNCTIONS")
            outputs = run_stage_loop(functions, work, state, self.values)
        return outputs, state


def shard_handle(
    description: PipelineDescription,
    mode: str,
    values: Optional[Dict[str, int]] = None,
) -> RmtShardHandle:
    """Build the picklable shard handle for a description and seed the cache."""
    if mode not in (ENGINE_GENERIC, ENGINE_FUSED):
        raise SimulationError(f"shards run under generic or fused drivers, not {mode!r}")
    if mode == ENGINE_FUSED and description.fused_function is None:
        raise SimulationError(
            "description carries no fused run_trace entry point "
            f"(opt level {description.opt_level})"
        )
    seed_namespace_cache(description.source, description.namespace)
    return RmtShardHandle(
        source=description.source,
        mode=mode,
        values=values if values is not None else description.runtime_values(),
    )
