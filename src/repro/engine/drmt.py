"""dRMT drivers: generic run-to-completion and fused.

The dRMT tick interpreter (:class:`repro.drmt.simulator.DRMTSimulator`'s
per-tick loop) scans every in-flight packet for due operations each cycle;
both drivers here remove that machinery while reusing the same shared table
store and register file:

* :class:`RunToCompletionDriver` — the generic driver: the program's
  scheduled operations are compiled once into per-operation closures
  (argument resolution, register bounds and control-flow gating resolved at
  build time), and every packet runs the closure list to completion in
  arrival order.  This reorders cross-packet register accesses relative to
  the tick model, which is invisible exactly when
  :func:`repro.drmt.fused.run_to_completion_hazard` reports no hazard — the
  driver refuses to build otherwise.
* :func:`run_fused` — hands the packet trace to the bundle's generated
  ``run_trace`` loop (see :mod:`repro.drmt.fused`), which replays the tick
  interpreter's exact interleaving and is therefore faithful for *any*
  program.

Both drivers assemble the same :class:`DrmtSimulationResult` as the tick
interpreter; arrival/completion ticks, processor assignment and operation
counts follow from the round-robin injection discipline (packet ``p`` enters
at tick ``p`` on processor ``p % N`` and completes at tick
``p + makespan - 1``), so the records match the tick model field for field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..drmt.fused import run_to_completion_hazard
from ..drmt.scheduler import ACTION_OP, MATCH_OP, Schedule
from ..drmt.simulator import DrmtPacketRecord, DrmtSimulationResult
from ..errors import SimulationError
from ..p4.program import Action, P4Program
from .rmt import seed_namespace_cache, _namespace_for

#: Closure signature of one compiled operation: (fields, matched) -> dropped?
OpClosure = Callable[[Dict[str, int], Dict[str, object]], bool]


def prepare_packets(
    packets: Sequence[Dict[str, int]]
) -> Tuple[List[Dict[str, int]], List[Dict[str, int]]]:
    """Copy the input packets and build integer-coerced working dicts."""
    inputs = [dict(packet) for packet in packets]
    work = [{name: int(value) for name, value in packet.items()} for packet in inputs]
    return inputs, work


def assemble_result(
    bundle,
    tables,
    registers,
    inputs: List[Dict[str, int]],
    work: List[Dict[str, int]],
    dropped: Sequence[bool],
    register_dump_limit: int,
    engine: str,
) -> DrmtSimulationResult:
    """Build the tick-compatible result record for a sequential dRMT run."""
    total = len(inputs)
    makespan = bundle.schedule.makespan
    num_processors = bundle.hardware.num_processors
    completion_offset = makespan - 1 if makespan else 0
    records = [
        DrmtPacketRecord(
            packet_id=packet,
            processor=packet % num_processors,
            arrival_tick=packet,
            completed_tick=packet + completion_offset,
            inputs=inputs[packet],
            outputs=work[packet],
            dropped=bool(dropped[packet]),
        )
        for packet in range(total)
    ]
    per_processor_packets = {
        processor: len(range(processor, total, num_processors))
        for processor in range(num_processors)
    }
    operations = len(bundle.schedule.start_times)
    ticks = 0
    if total:
        ticks = total + completion_offset if makespan else total
    return DrmtSimulationResult(
        records=records,
        ticks=ticks,
        per_processor_packets=per_processor_packets,
        per_processor_operations={
            processor: operations * count
            for processor, count in per_processor_packets.items()
        },
        table_hits=tables.hit_statistics(),
        register_dump={
            name: registers.dump(name, register_dump_limit)
            for name in bundle.program.registers
        },
        engine=engine,
    )


class RunToCompletionDriver:
    """Compiled run-to-completion execution of one dRMT bundle."""

    def __init__(self, bundle, tables, registers):
        hazard = run_to_completion_hazard(bundle.program, bundle.schedule)
        if hazard is not None:
            raise SimulationError(
                f"the generic dRMT driver cannot run this program bit-for-bit: {hazard}; "
                "use the fused or tick engine instead"
            )
        self._operations: List[OpClosure] = []
        #: All-exact tables probed through a dict index; refreshed per run so
        #: entries added between runs are picked up (the fused generator
        #: rebuilds its index once per ``run_trace`` call the same way).
        self._exact_probes: List[Tuple[object, List]] = []
        program = bundle.program
        conditions = {apply.table: apply for apply in program.control_flow}
        ordered = sorted(bundle.schedule.start_times.items(), key=lambda item: item[1])
        arrays = registers.arrays()
        for (table_name, kind), _start in ordered:
            condition = conditions.get(table_name)
            gate: Optional[Tuple[str, int]] = None
            if condition is not None and condition.condition_field is not None:
                gate = (condition.condition_field, condition.condition_value)
            if kind == MATCH_OP:
                self._operations.append(
                    self._compile_match(table_name, tables[table_name], gate)
                )
            elif kind == ACTION_OP:
                self._operations.append(
                    self._compile_action_op(program, table_name, arrays, gate)
                )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, work: Sequence[Dict[str, int]]) -> List[bool]:
        """Run every packet to completion in arrival order; return drop flags."""
        for table, index_cell in self._exact_probes:
            index_cell[0] = table.exact_index()
        operations = self._operations
        dropped = [False] * len(work)
        for packet, fields in enumerate(work):
            matched: Dict[str, object] = {}
            for operation in operations:
                if operation(fields, matched):
                    dropped[packet] = True
                    break
        return dropped

    # ------------------------------------------------------------------
    # Operation compilation
    # ------------------------------------------------------------------
    def _compile_match(
        self, table_name: str, table, gate: Optional[Tuple[str, int]]
    ) -> OpClosure:
        """One match operation: a dict probe for all-exact tables, else the scan.

        The dict probe shares :meth:`MatchActionTable.exact_index` with the
        fused code generator — one probe per match instead of a linear scan —
        and preserves the table's hit/miss counters exactly as
        :meth:`MatchActionTable.lookup` would have counted them.
        """
        if table.is_exact:
            field_order = tuple(table.definition.match_fields())
            index_cell: List = [None]  # refreshed at the top of every run()
            self._exact_probes.append((table, index_cell))

            def probe(fields):
                entry = index_cell[0].get(
                    tuple(int(fields.get(name, 0)) for name in field_order)
                )
                if entry is None:
                    table.miss_count += 1
                else:
                    table.hit_count += 1
                return entry

            lookup: Callable = probe
        else:
            lookup = table.lookup
        if gate is None:
            def operation(fields, matched):
                matched[table_name] = lookup(fields)
                return False
        else:
            gate_field, gate_value = gate

            def operation(fields, matched):
                if fields.get(gate_field, 0) == gate_value:
                    matched[table_name] = lookup(fields)
                else:
                    matched[table_name] = None
                return False

        return operation

    def _compile_action_op(
        self,
        program: P4Program,
        table_name: str,
        arrays: Dict[str, List[int]],
        gate: Optional[Tuple[str, int]],
    ) -> OpClosure:
        table = program.tables[table_name]
        bodies = {
            name: self._compile_action(program.actions[name], arrays)
            for name in table.actions
        }
        default_body = None
        if table.default_action is not None:
            default_body = self._compile_action(
                program.actions[table.default_action], arrays
            )
        no_args: List[int] = []

        def operation(fields, matched):
            if gate is not None and fields.get(gate[0], 0) != gate[1]:
                return False
            entry = matched.get(table_name)
            if entry is None:
                if default_body is None:
                    return False
                return default_body(fields, no_args)
            return bodies[entry.action](fields, list(entry.action_args))

        return operation

    @staticmethod
    def _compile_action(action: Action, arrays: Dict[str, List[int]]) -> Callable:
        """Compile one action body into a closure over (fields, args)."""
        params = list(action.params)

        def resolver(arg: str) -> Callable:
            if arg in params:
                position = params.index(arg)
                return lambda fields, args: args[position] if position < len(args) else 0
            if "." in arg:
                return lambda fields, args, name=arg: int(fields.get(name, 0))
            try:
                constant = int(arg, 0)
            except ValueError:
                raise SimulationError(f"cannot resolve action argument {arg!r}") from None
            return lambda fields, args: constant

        steps: List[Callable] = []
        for call in action.body:
            op = call.op
            if op == "no_op":
                continue
            if op == "drop":
                steps.append(lambda fields, args: True)
                continue
            if op in ("modify_field", "add_to_field", "subtract_from_field"):
                destination = call.args[0]
                source = resolver(call.args[1])
                if op == "modify_field":
                    def step(fields, args, destination=destination, source=source):
                        fields[destination] = source(fields, args)
                elif op == "add_to_field":
                    def step(fields, args, destination=destination, source=source):
                        fields[destination] = fields.get(destination, 0) + source(fields, args)
                else:
                    def step(fields, args, destination=destination, source=source):
                        fields[destination] = fields.get(destination, 0) - source(fields, args)
                steps.append(step)
                continue
            if op == "register_read":
                destination, register = call.args[0], call.args[1]
                index = resolver(call.args[2])
                array = arrays[register]
                size = len(array)

                def step(fields, args, destination=destination, array=array, size=size, index=index):
                    fields[destination] = array[index(fields, args) % size]

                steps.append(step)
                continue
            if op == "register_write":
                register = call.args[0]
                index = resolver(call.args[1])
                value = resolver(call.args[2])
                array = arrays[register]
                size = len(array)

                def step(fields, args, array=array, size=size, index=index, value=value):
                    array[index(fields, args) % size] = int(value(fields, args))

                steps.append(step)
                continue
            raise SimulationError(f"unsupported primitive {op!r}")  # pragma: no cover

        def run_action(fields, args) -> bool:
            was_dropped = False
            for step in steps:
                if step(fields, args):
                    was_dropped = True
            return was_dropped

        return run_action


def run_fused(
    bundle,
    tables,
    registers,
    work: Sequence[Dict[str, int]],
    observer: Optional[Callable] = None,
) -> List[bool]:
    """Execute the bundle's generated fused loop on prepared packet dicts."""
    fused = bundle.fused_program()
    arrays = registers.arrays()
    if observer is None:
        return fused.run_trace(work, tables.tables, arrays)
    return fused.run_trace_observed(work, tables.tables, arrays, observer)


# ----------------------------------------------------------------------
# Shard-local execution (the sharded meta-driver's per-shard entry point)
# ----------------------------------------------------------------------
def _reachable_actions(program: P4Program):
    """Every action reachable from a table (including default actions)."""
    for table in program.tables.values():
        action_names = list(table.actions)
        if table.default_action is not None:
            action_names.append(table.default_action)
        for action_name in action_names:
            action = program.actions.get(action_name)
            if action is not None:
                yield action


def written_registers(program: P4Program) -> frozenset:
    """The registers some table-reachable action can write.

    The complement — registers that are only ever *read* — cannot change
    during a run, so reads of their cells are interleaving-invariant: the
    read-set analysis excludes them from shard-key derivation entirely.
    """
    return frozenset(
        call.args[0]
        for action in _reachable_actions(program)
        for call in action.body
        if call.op == "register_write"
    )


def written_packet_fields(program: P4Program) -> frozenset:
    """The packet fields some table-reachable action can write.

    This is the shm transport's output-field universe: an output packet dict
    can only ever contain its input fields plus these destinations.
    """
    return frozenset(
        call.args[0]
        for action in _reachable_actions(program)
        for call in action.body
        if call.op in ("modify_field", "add_to_field", "subtract_from_field", "register_read")
    )


def derive_state_fields(program: P4Program) -> Optional[Tuple[str, ...]]:
    """The packet fields that index this program's *writable* stateful registers.

    These are the *state-indexing fields*: hash-partitioning a packet trace
    by their values sends every packet that can touch a given writable
    register cell to the same shard, so each shard owns its slice of the
    register arrays.  Accesses to registers no action ever writes are read
    tracked and ignored — a read-only register's cells cannot change, so
    reads of them are consistent under any partition.  Returns:

    * a (sorted, deduplicated) tuple of field names when every access to a
      writable register in every table-reachable action indexes by a packet
      field whose value arrives *with* the packet (no action rewrites it);
    * the empty tuple when the program writes no registers at all (any
      partition of the trace is then state-safe, however much it reads);
    * ``None`` when some writable register is indexed by an action
      parameter, a constant, or a field that an action rewrites before use —
      the input trace then does not determine which cell a packet touches,
      so no input-derived partition can isolate shards.
    """
    writable = written_registers(program)
    index_fields: set = set()
    written_fields: set = set()
    for action in _reachable_actions(program):
        for call in action.body:
            if call.op in ("modify_field", "add_to_field", "subtract_from_field", "register_read"):
                written_fields.add(call.args[0])
            if call.op == "register_read":
                register, index_arg = call.args[1], call.args[2]
            elif call.op == "register_write":
                register, index_arg = call.args[0], call.args[1]
            else:
                continue
            if register not in writable:
                continue  # read-only register: its cells cannot change
            if "." not in index_arg or index_arg in action.params:
                return None
            index_fields.add(index_arg)
    if index_fields & written_fields:
        return None
    return tuple(sorted(index_fields))


def derive_auto_shard_key(program: P4Program) -> Optional[Tuple[Tuple[str, ...], Optional[int]]]:
    """The shard key the driver may adopt *without* a caller contract.

    Returns ``(fields, modulus)`` or ``None`` when no provably safe key
    exists.  ``((), None)`` means the program writes no registers (any
    partition is state-safe — read-only registers cannot change, so this
    covers register-free programs *and* pure-configuration readers).  A
    keyed result is restricted to the one case where input-hash partitioning
    provably gives shards exclusive cell ownership: a *single* index field
    shared by every access to a writable register, with every writable
    register array the same ``instance_count`` — the key is then the field
    value reduced modulo that count, so two packets that can touch the same
    cell (equal index modulo the array size) always share a key.  Read-only
    registers are excluded by the read tracking in
    :func:`derive_state_fields` and do not constrain the field or size rule.
    Multi-field or mixed-size programs get no auto key: a tuple hash would
    split packets that collide on one register's cells across shards, where
    a cross-shard read evades the write-based conflict check.  An explicit
    ``shard_key`` remains available for callers who can assert flow
    ownership themselves.
    """
    fields = derive_state_fields(program)
    if fields is None:
        return None
    if not fields:
        return (), None
    if len(fields) > 1:
        return None
    writable = written_registers(program)
    if any(name not in program.registers for name in writable):
        return None
    sizes = {program.registers[name].instance_count for name in writable}
    if len(sizes) != 1:
        return None
    return fields, sizes.pop()


def clone_tables(tables: Dict[str, "object"]) -> Dict[str, "object"]:
    """Shard-private table views: shared (read-only) entries, fresh counters."""
    clones = {}
    for name, table in tables.items():
        clone = type(table)(table.definition, table.program)
        clone.entries = table.entries
        clones[name] = clone
    return clones


class _ShardBundle(NamedTuple):
    """The slice of a program bundle the run-to-completion driver consumes."""

    program: P4Program
    schedule: Schedule


class _ShardRegisters:
    """Register-file stand-in handing the driver a shard's private arrays."""

    def __init__(self, arrays: Dict[str, List[int]]):
        self._arrays = arrays

    def arrays(self) -> Dict[str, List[int]]:
        return self._arrays


@dataclass(frozen=True)
class DrmtShardHandle:
    """Picklable handle to one compiled dRMT program.

    For the fused mode only the generated module's *source text* crosses the
    process boundary (the executed namespace cannot); workers compile it once
    into the process-local namespace cache.  The generic mode rebuilds the
    run-to-completion closures from the program and schedule in each worker.
    """

    mode: str
    program: P4Program
    schedule: Schedule
    fused_source: Optional[str] = None

    def run(
        self,
        work: List[Dict[str, int]],
        tables: Dict[str, "object"],
        arrays: Dict[str, List[int]],
    ) -> Tuple[List[Dict[str, int]], List[bool], Dict[str, List[int]], Dict[str, Tuple[int, int]]]:
        """Run one shard of packets; returns (fields, dropped, arrays, hits).

        ``tables`` must be shard-private clones (fresh counters) and
        ``arrays`` a shard-private copy of the register arrays; both are
        mutated in place and handed back so the pool path can ship them home.
        """
        if self.mode == "fused":
            namespace = _namespace_for(self.fused_source)
            dropped = namespace["RUN_TRACE"](work, tables, arrays)
        else:
            driver = RunToCompletionDriver(
                _ShardBundle(self.program, self.schedule),
                tables,
                _ShardRegisters(arrays),
            )
            dropped = driver.run(work)
        hits = {name: (table.hit_count, table.miss_count) for name, table in tables.items()}
        return work, dropped, arrays, hits


def drmt_shard_handle(bundle, mode: str) -> DrmtShardHandle:
    """Build the picklable shard handle for a bundle and seed the cache."""
    if mode not in ("generic", "fused"):
        raise SimulationError(f"dRMT shards run under generic or fused drivers, not {mode!r}")
    fused_source = None
    if mode == "fused":
        fused = bundle.fused_program()
        fused_source = fused.source
        seed_namespace_cache(fused_source, fused.namespace)
    return DrmtShardHandle(
        mode=mode,
        program=bundle.program,
        schedule=bundle.schedule,
        fused_source=fused_source,
    )
