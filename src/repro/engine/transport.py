"""Shard transports: how shard inputs, outputs and state cross process lines.

The sharded meta-driver (:mod:`repro.engine.sharded`) fans shards across a
``multiprocessing`` pool.  *How* each shard's trace slice and state copy
reach the worker — and how the results come home — is the transport's job:

``pickle``
    The default and the PR-3 behaviour: the pool pickles every payload
    (handle + trace slice + state copy) on the way out and every result on
    the way back.  Works for any value the drivers produce, but a >1M-PHV
    trace pays a serialize/deserialize round trip proportional to its size,
    all of it on the parent's single thread.
``shm``
    A ``multiprocessing.shared_memory`` transport: the parent packs the
    integer trace into one flat int64 buffer *once*, hands each worker a
    (name, offset, count) view, and workers write outputs and final state
    back in place — the parent reads the merged buffers directly, so no
    per-shard result pickling happens at all, and the per-shard
    deserialization cost moves into the workers where it runs in parallel.

The shm transport only fits *flat-packable* shards: every value an int64,
every RMT PHV the same width, every dRMT packet the same field set (plus at
most 63 statically-written extra fields).  When a trace does not fit — or
numpy is unavailable — the transport falls back to the pickle path
automatically and records why in :attr:`SharedMemoryTransport.last_fallback_reason`.

Both transports produce bit-for-bit the same results as the in-process shard
loop; the transport is a wire-format choice, never a semantics choice.
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import SimulationError

try:  # numpy backs the flat buffer views; without it shm degrades to pickle.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

TRANSPORT_PICKLE = "pickle"
TRANSPORT_SHM = "shm"
TRANSPORT_CHOICES = (TRANSPORT_PICKLE, TRANSPORT_SHM)

__all__ = [
    "TRANSPORT_CHOICES",
    "TRANSPORT_PICKLE",
    "TRANSPORT_SHM",
    "PickleTransport",
    "SharedMemoryTransport",
    "ShardTransport",
    "ShardTransportError",
    "resolve_transport",
]


class ShardTransportError(SimulationError):
    """A shard's values did not fit the transport's wire format mid-run.

    Raised by shm workers when an *output* value falls outside int64 (inputs
    are checked before the pool engages); the parent catches it and reruns
    the shards over the pickle transport.
    """


class _NotFlatPackable(Exception):
    """Parent-side verdict: this trace cannot use the flat shm layout."""


def _picklable(handle) -> bool:
    try:
        pickle.dumps(handle)
        return True
    except Exception:
        return False


def _pool_map(function, payloads: Sequence, workers: int) -> List:
    """Run ``function`` over ``payloads`` across a fork-preferred pool."""
    methods = multiprocessing.get_all_start_methods()
    # Fork inherits the parent's compiled-namespace caches, sparing every
    # worker the per-process recompilation that spawn pays once per source.
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    with context.Pool(processes=min(workers, len(payloads))) as pool:
        return pool.map(function, payloads, chunksize=1)


def _attach_shared_memory(name: str):
    """Attach to an existing segment without registering it for cleanup.

    The resource tracker unlinks every segment a process *registered* when
    that process exits; a worker that merely attaches must not register, or
    the tracker tears the parent's segment down (and warns) behind its back.
    Python 3.13 grew ``track=False`` for exactly this; earlier versions need
    the registration suppressed around the attach.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python <= 3.12
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


# ----------------------------------------------------------------------
# Transport base
# ----------------------------------------------------------------------
class ShardTransport:
    """Common pool-engagement policy shared by every transport.

    The pool engages only when more than one shard and worker are available,
    the trace is at least ``pool_threshold`` inputs long and the program
    handle is picklable; otherwise the shards run sequentially in process —
    same partition, same merge, bit-for-bit the same result, and the
    transport choice is irrelevant.
    """

    name = "?"

    def _pool_eligible(
        self, shard_count: int, workers: int, total: int, pool_threshold: int, handle
    ) -> bool:
        return (
            shard_count > 1
            and workers > 1
            and total >= pool_threshold
            and _picklable(handle)
        )

    def run_rmt_shards(
        self,
        handle,
        works: Sequence[List[List[int]]],
        states: Sequence[List[List[List[int]]]],
        workers: int,
        total: int,
        pool_threshold: int,
    ) -> List[Tuple]:
        """Run every RMT shard; returns one ``(outputs, final_state)`` per shard."""
        if not self._pool_eligible(len(works), workers, total, pool_threshold, handle):
            return [handle.run(work, state) for work, state in zip(works, states)]
        return self._pool_rmt_shards(handle, works, states, workers)

    def run_drmt_shards(
        self,
        handle,
        works: Sequence[List[Dict[str, int]]],
        tables: Sequence[Dict[str, object]],
        arrays: Sequence[Dict[str, List[int]]],
        workers: int,
        total: int,
        pool_threshold: int,
    ) -> List[Tuple]:
        """Run every dRMT shard; returns ``(fields, dropped, arrays, hits)`` per shard."""
        if not self._pool_eligible(len(works), workers, total, pool_threshold, handle):
            return [
                handle.run(work, shard_tables, shard_arrays)
                for work, shard_tables, shard_arrays in zip(works, tables, arrays)
            ]
        return self._pool_drmt_shards(handle, works, tables, arrays, workers)

    def _pool_rmt_shards(self, handle, works, states, workers):  # pragma: no cover
        raise NotImplementedError

    def _pool_drmt_shards(self, handle, works, tables, arrays, workers):  # pragma: no cover
        raise NotImplementedError


# ----------------------------------------------------------------------
# Pickle transport (the default)
# ----------------------------------------------------------------------
def _execute_pickled_shard(payload: Tuple) -> Tuple:
    """Pool entry point: run one shard through its handle."""
    handle, args = payload
    return handle.run(*args)


class PickleTransport(ShardTransport):
    """Ship every shard payload and result through the pool's pickle channel."""

    name = TRANSPORT_PICKLE

    def _pool_rmt_shards(self, handle, works, states, workers):
        payloads = [(handle, (work, state)) for work, state in zip(works, states)]
        return _pool_map(_execute_pickled_shard, payloads, workers)

    def _pool_drmt_shards(self, handle, works, tables, arrays, workers):
        payloads = [
            (handle, (work, shard_tables, shard_arrays))
            for work, shard_tables, shard_arrays in zip(works, tables, arrays)
        ]
        return _pool_map(_execute_pickled_shard, payloads, workers)


# ----------------------------------------------------------------------
# Shared-memory transport
# ----------------------------------------------------------------------
def _pack_int64(rows, context: str):
    """Flatten nested int rows into an int64 ndarray or rule the trace out."""
    try:
        return _np.asarray(rows, dtype=_np.int64)
    except (OverflowError, ValueError, TypeError) as error:
        raise _NotFlatPackable(f"{context}: {error}") from error


def _flatten_state(state: List[List[List[int]]]) -> List[int]:
    return [value for vectors in state for variables in vectors for value in variables]


def _unflatten_state(flat: Sequence[int], dims: Tuple[int, int, int]) -> List[List[List[int]]]:
    depth, slots, variables = dims
    iterator = iter(flat)
    return [
        [[next(iterator) for _ in range(variables)] for _ in range(slots)]
        for _ in range(depth)
    ]


def _close_segment(shm, unlink: bool = False) -> None:
    """Release a segment, tolerating still-live buffer exports.

    A ``close()`` while a numpy view of ``shm.buf`` is still referenced (for
    example by the traceback of a propagating exception) raises
    ``BufferError``; the mapping is then released when the view is collected,
    and ``unlink`` — which does not need the mapping closed — still removes
    the name, so neither failure may mask the original exception.
    """
    try:
        shm.close()
    except BufferError:  # a view outlives us; the GC closes the mapping later
        pass
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already removed
            pass


def _rmt_shm_worker(payload: Tuple) -> int:
    """Pool entry point: run one RMT shard against the shared buffer."""
    handle, name, start, count, width, state_offset, state_dims, shard = payload
    state_length = state_dims[0] * state_dims[1] * state_dims[2]
    shm = _attach_shared_memory(name)
    flat = None
    try:
        flat = _np.frombuffer(shm.buf, dtype=_np.int64)
        work = flat[start * width : (start + count) * width].reshape(count, width).tolist()
        state = _unflatten_state(
            flat[state_offset : state_offset + state_length].tolist(), state_dims
        )
        outputs, final_state = handle.run(work, state)
        try:
            flat[start * width : (start + count) * width] = _np.asarray(
                outputs, dtype=_np.int64
            ).reshape(count * width)
            flat[state_offset : state_offset + state_length] = _np.asarray(
                _flatten_state(final_state), dtype=_np.int64
            )
        except (OverflowError, ValueError, TypeError) as error:
            raise ShardTransportError(
                f"shard {shard} produced values outside the shm transport's int64 "
                f"wire format ({error}); rerunning over the pickle transport"
            ) from error
    finally:
        flat = None  # release the buffer export before closing the mapping
        _close_segment(shm)
    return shard


def _drmt_shm_worker(payload: Tuple) -> int:
    """Pool entry point: run one dRMT shard against the shared buffer."""
    (
        handle,
        tables,
        name,
        start,
        count,
        in_fields,
        extra_fields,
        n_total,
        presence_offset,
        dropped_offset,
        arrays_offset,
        hits_offset,
        array_layout,
        table_names,
        shard,
    ) = payload
    n_in = len(in_fields)
    shm = _attach_shared_memory(name)
    flat = None
    try:
        flat = _np.frombuffer(shm.buf, dtype=_np.int64)
        rows = (
            flat[start * n_total : (start + count) * n_total]
            .reshape(count, n_total)[:, :n_in]
            .tolist()
        )
        work = [dict(zip(in_fields, row)) for row in rows]
        arrays: Dict[str, List[int]] = {}
        cursor = arrays_offset
        for array_name, size in array_layout:
            arrays[array_name] = flat[cursor : cursor + size].tolist()
            cursor += size
        fields, dropped, arrays, hits = handle.run(work, tables, arrays)
        out_rows = []
        presence = []
        for packet in fields:
            row = [packet[field] for field in in_fields]
            bits = 0
            for position, field in enumerate(extra_fields):
                if field in packet:
                    bits |= 1 << position
                    row.append(packet[field])
                else:
                    row.append(0)
            out_rows.append(row)
            presence.append(bits)
        try:
            flat[start * n_total : (start + count) * n_total] = _np.asarray(
                out_rows, dtype=_np.int64
            ).reshape(count * n_total)
            flat[presence_offset + start : presence_offset + start + count] = presence
            flat[dropped_offset + start : dropped_offset + start + count] = [
                1 if flag else 0 for flag in dropped
            ]
            cursor = arrays_offset
            for array_name, size in array_layout:
                flat[cursor : cursor + size] = _np.asarray(
                    arrays[array_name], dtype=_np.int64
                )
                cursor += size
            hit_values = []
            for table_name in table_names:
                hit_count, miss_count = hits[table_name]
                hit_values.extend((hit_count, miss_count))
            flat[hits_offset : hits_offset + 2 * len(table_names)] = hit_values
        except (OverflowError, ValueError, TypeError, KeyError) as error:
            raise ShardTransportError(
                f"shard {shard} produced values outside the shm transport's flat "
                f"wire format ({error}); rerunning over the pickle transport"
            ) from error
    finally:
        flat = None  # release the buffer export before closing the mapping
        _close_segment(shm)
    return shard


class SharedMemoryTransport(ShardTransport):
    """Lay shard traces and state out in ``multiprocessing.shared_memory``.

    Inputs are packed once by the parent; workers receive buffer views, write
    outputs and final state in place, and the parent merges straight out of
    the buffer — no per-shard result pickling.  Falls back to the pickle
    transport when the trace is not flat-packable (non-int64 values, ragged
    dRMT field sets, more than 63 statically-written extra fields, or numpy
    missing); :attr:`last_fallback_reason` records why.
    """

    name = TRANSPORT_SHM

    def __init__(self):
        self.last_fallback_reason: Optional[str] = None
        self._pickle = PickleTransport()

    # ------------------------------------------------------------------
    # RMT
    # ------------------------------------------------------------------
    def _pool_rmt_shards(self, handle, works, states, workers):
        self.last_fallback_reason = None  # this run's verdict, not a stale one
        try:
            return self._shm_rmt_shards(handle, works, states, workers)
        except _NotFlatPackable as verdict:
            self.last_fallback_reason = str(verdict)
            return self._pickle._pool_rmt_shards(handle, works, states, workers)
        except ShardTransportError as error:
            self.last_fallback_reason = str(error)
            return self._pickle._pool_rmt_shards(handle, works, states, workers)

    def _shm_rmt_shards(self, handle, works, states, workers):
        if _np is None:
            raise _NotFlatPackable("numpy is unavailable")
        from multiprocessing import shared_memory

        counts = [len(work) for work in works]
        rows = [row for work in works for row in work]
        widths = {len(row) for row in rows}
        if len(widths) != 1:
            raise _NotFlatPackable(f"PHV widths vary across the trace: {sorted(widths)}")
        width = widths.pop()
        if width == 0:
            raise _NotFlatPackable("zero-width PHVs cannot be flat-packed")
        matrix = _pack_int64(rows, "input PHVs are not int64-packable")

        dims = (
            len(states[0]),
            len(states[0][0]) if states[0] else 0,
            len(states[0][0][0]) if states[0] and states[0][0] else 0,
        )
        state_length = dims[0] * dims[1] * dims[2]
        state_rows = []
        for state in states:
            flat_state = _flatten_state(state)
            if len(flat_state) != state_length:
                raise _NotFlatPackable("ragged pipeline state vectors")
            state_rows.append(flat_state)
        packed_states = _pack_int64(state_rows, "pipeline state is not int64-packable")

        total_rows = len(rows)
        # The segment can be page-rounded above the requested size, so every
        # buffer access below uses exact [offset : offset + length] slices.
        cells = total_rows * width + len(works) * state_length
        shm = shared_memory.SharedMemory(create=True, size=max(cells, 1) * 8)
        flat = None
        try:
            flat = _np.frombuffer(shm.buf, dtype=_np.int64)
            flat[: total_rows * width] = matrix.reshape(total_rows * width)
            states_offset = total_rows * width
            if state_length:
                flat[states_offset : states_offset + len(works) * state_length] = (
                    packed_states.reshape(len(works) * state_length)
                )
            payloads = []
            start = 0
            for shard, count in enumerate(counts):
                payloads.append(
                    (
                        handle,
                        shm.name,
                        start,
                        count,
                        width,
                        states_offset + shard * state_length,
                        dims,
                        shard,
                    )
                )
                start += count
            _pool_map(_rmt_shm_worker, payloads, workers)
            results = []
            start = 0
            for shard, count in enumerate(counts):
                outputs = (
                    flat[start * width : (start + count) * width]
                    .reshape(count, width)
                    .tolist()
                )
                state_offset = states_offset + shard * state_length
                final_state = _unflatten_state(
                    flat[state_offset : state_offset + state_length].tolist(), dims
                )
                results.append((outputs, final_state))
                start += count
            return results
        finally:
            flat = None  # release the buffer export before closing the mapping
            _close_segment(shm, unlink=True)

    # ------------------------------------------------------------------
    # dRMT
    # ------------------------------------------------------------------
    def _pool_drmt_shards(self, handle, works, tables, arrays, workers):
        self.last_fallback_reason = None  # this run's verdict, not a stale one
        try:
            return self._shm_drmt_shards(handle, works, tables, arrays, workers)
        except _NotFlatPackable as verdict:
            self.last_fallback_reason = str(verdict)
            return self._pickle._pool_drmt_shards(handle, works, tables, arrays, workers)
        except ShardTransportError as error:
            self.last_fallback_reason = str(error)
            return self._pickle._pool_drmt_shards(handle, works, tables, arrays, workers)

    def _shm_drmt_shards(self, handle, works, tables, arrays, workers):
        if _np is None:
            raise _NotFlatPackable("numpy is unavailable")
        from multiprocessing import shared_memory

        from .drmt import written_packet_fields

        counts = [len(work) for work in works]
        packets = [packet for work in works for packet in work]
        in_fields = list(packets[0])
        n_in = len(in_fields)
        if n_in == 0:
            raise _NotFlatPackable("packets carry no fields")
        extra_fields = sorted(written_packet_fields(handle.program) - set(in_fields))
        if len(extra_fields) > 63:
            raise _NotFlatPackable(
                f"{len(extra_fields)} statically-written extra fields exceed the "
                "presence bitmask (63)"
            )
        n_total = n_in + len(extra_fields)
        try:
            rows = []
            for packet in packets:
                if len(packet) != n_in:
                    raise _NotFlatPackable(
                        "packet field sets vary across the trace"
                    )
                rows.append(
                    [packet[field] for field in in_fields] + [0] * len(extra_fields)
                )
        except KeyError as error:
            raise _NotFlatPackable(
                f"packet field sets vary across the trace (missing {error})"
            ) from error
        matrix = _pack_int64(rows, "packet fields are not int64-packable")

        array_layout = [(name, len(array)) for name, array in sorted(arrays[0].items())]
        arrays_length = sum(size for _name, size in array_layout)
        array_rows = []
        for shard_arrays in arrays:
            row = []
            for name, size in array_layout:
                values = shard_arrays.get(name)
                if values is None or len(values) != size:
                    raise _NotFlatPackable("register array layouts vary across shards")
                row.extend(values)
            array_rows.append(row)
        packed_arrays = _pack_int64(array_rows, "register arrays are not int64-packable")
        table_names = sorted(tables[0])

        total_rows = len(packets)
        shard_count = len(works)
        presence_offset = total_rows * n_total
        dropped_offset = presence_offset + total_rows
        arrays_offset = dropped_offset + total_rows
        hits_offset = arrays_offset + shard_count * arrays_length
        # The segment can be page-rounded above the requested size, so every
        # buffer access below uses exact [offset : offset + length] slices.
        cells = hits_offset + shard_count * 2 * len(table_names)
        shm = shared_memory.SharedMemory(create=True, size=max(cells, 1) * 8)
        flat = None
        try:
            flat = _np.frombuffer(shm.buf, dtype=_np.int64)
            flat[: total_rows * n_total] = matrix.reshape(total_rows * n_total)
            flat[presence_offset : arrays_offset] = 0
            if arrays_length:
                flat[arrays_offset : hits_offset] = packed_arrays.reshape(
                    shard_count * arrays_length
                )
            if table_names:
                flat[hits_offset : cells] = 0
            payloads = []
            start = 0
            for shard, count in enumerate(counts):
                payloads.append(
                    (
                        handle,
                        tables[shard],
                        shm.name,
                        start,
                        count,
                        in_fields,
                        extra_fields,
                        n_total,
                        presence_offset,
                        dropped_offset,
                        arrays_offset + shard * arrays_length,
                        hits_offset + shard * 2 * len(table_names),
                        array_layout,
                        table_names,
                        shard,
                    )
                )
                start += count
            _pool_map(_drmt_shm_worker, payloads, workers)
            results = []
            start = 0
            for shard, count in enumerate(counts):
                block = flat[start * n_total : (start + count) * n_total].reshape(
                    count, n_total
                )
                presence = flat[
                    presence_offset + start : presence_offset + start + count
                ].tolist()
                fields = []
                for row, bits in zip(block.tolist(), presence):
                    packet = dict(zip(in_fields, row[:n_in]))
                    for position, field in enumerate(extra_fields):
                        if bits & (1 << position):
                            packet[field] = row[n_in + position]
                    fields.append(packet)
                dropped = [
                    bool(flag)
                    for flag in flat[
                        dropped_offset + start : dropped_offset + start + count
                    ].tolist()
                ]
                shard_arrays: Dict[str, List[int]] = {}
                cursor = arrays_offset + shard * arrays_length
                for name, size in array_layout:
                    shard_arrays[name] = flat[cursor : cursor + size].tolist()
                    cursor += size
                hits_cursor = hits_offset + shard * 2 * len(table_names)
                hit_values = flat[
                    hits_cursor : hits_cursor + 2 * len(table_names)
                ].tolist()
                hits = {
                    name: (hit_values[2 * index], hit_values[2 * index + 1])
                    for index, name in enumerate(table_names)
                }
                results.append((fields, dropped, shard_arrays, hits))
                block = None
                start += count
            return results
        finally:
            flat = None  # release the buffer exports before closing the mapping
            _close_segment(shm, unlink=True)


def resolve_transport(
    transport: Union[str, ShardTransport, None]
) -> ShardTransport:
    """Resolve a transport name (or pass an instance through) to a transport.

    ``None`` selects the default pickle transport; unknown names raise
    :class:`SimulationError` listing the valid choices.
    """
    if transport is None:
        return PickleTransport()
    if isinstance(transport, ShardTransport):
        return transport
    if transport == TRANSPORT_PICKLE:
        return PickleTransport()
    if transport == TRANSPORT_SHM:
        return SharedMemoryTransport()
    raise SimulationError(
        f"unknown shard transport {transport!r}; choose one of "
        f"{', '.join(TRANSPORT_CHOICES)}"
    )
