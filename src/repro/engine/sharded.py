"""The sharded meta-driver: per-flow partitioning for very large traces.

``run_trace`` — under every sequential driver — is single-threaded, so a
>1M-PHV workload is bounded by one core.  This module adds the scaling seam
the ROADMAP calls for: a driver satisfying the :class:`ExecutionEngine`
contract that

1. **partitions** the input trace into shards — by a stable hash of the
   *state-indexing fields* (the flow key) so each shard owns its slice of
   the program state, or into contiguous blocks when no key applies;
2. **fans the shards out** across a ``multiprocessing`` pool, each shard
   running under any wrapped sequential driver (generic or fused, RMT or
   dRMT) on a private copy of the program state — with a sequential
   in-process fallback for unpicklable programs and for traces below a
   configurable size threshold, where pool overhead would dominate;
3. **deterministically merges** the per-shard results: output PHVs/packets
   are restored to input order, and the per-stage / per-register state is
   merged cell by cell under a conflict check.

The conflict check is the driver's safety net against common contract
violations, not a proof: it compares every shard's *final* state against
the initial state, so it observes neither reads nor writes that net back to
a cell's initial value (a shard that writes 7 and later restores 0 looks
untouched).  A flow key therefore carries a real contract — every read and
write of a state cell happens in the cell's owner flow — and the merge
rules below reject the violations that final values can reveal.

* Under a **flow key**, a cell changed by two different shards means two
  flows share that state — their tick/generic interleaving cannot be
  reproduced shard-locally, so the merge raises
  :class:`ShardStateConflictError` (or falls back to the unsharded driver
  when the facade runs under ``engine="auto"``).
* A shard that merely *reads* state another shard wrote is invisible to a
  write-based check, so on the RMT side the merge consults the static
  read-set analysis (:mod:`repro.machine_code.readsets`): a state cell whose
  value the machine code routes into a PHV container is read by *every*
  packet, and any write to such an exposed cell by any shard is a conflict.
  Cells the machine code never exposes keep the one-writer flow rule — this
  per-cell refinement (PR 4) is what lets programs that expose only
  read-only cells (configuration thresholds) shard legally where PR 3's
  whole-state strict rule forced a fallback.  On the dRMT side the read-set
  analysis lives in shard-key derivation: accesses to registers no action
  writes are ignored (read-only cells cannot change), and an *explicit*
  ``shard_key`` carries the contract that register cells are flow-owned for
  reads as well as writes; the automatically derived key needs no contract
  at all — it is restricted to the single-field, uniform-size case where
  cell-sharing packets co-shard by construction.
* Under **block partitioning** (no key), there is no ownership contract at
  all, so *any* state write is a conflict: only programs whose state
  provably never changes (stateless workloads) may be split blindly.

A shard of one — or an empty trace — degrades to the wrapped driver running
in process, so ``sharded`` is always safe to request explicitly.

How shard data crosses the process boundary is the *transport*'s concern
(:mod:`repro.engine.transport`): the default ``pickle`` transport ships
every payload through the pool's pickle channel, while the ``shm`` transport
lays traces and per-shard state out in ``multiprocessing.shared_memory``
flat buffers, with outputs written in place and merged without a second
copy.  Both drivers accept ``transport=`` (a name or a transport instance).
"""

from __future__ import annotations

import math
import os
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ..errors import SimulationError
from ..machine_code import readsets
from .base import ENGINE_FUSED, ENGINE_GENERIC, ENGINE_SHARDED
from . import drmt as drmt_drivers
from . import rmt as rmt_drivers
from .result import SimulationResult, sequential_result
from .transport import ShardTransport, resolve_transport

__all__ = [
    "DEFAULT_POOL_THRESHOLD",
    "DEFAULT_SHARDS",
    "ShardPlan",
    "ShardStateConflictError",
    "ShardedRmtDriver",
    "ShardedDrmtDriver",
    "plan_shards",
    "stable_flow_hash",
]

#: Below this many inputs the pool is never engaged: shards run in process
#: (same partition, same merge — bit-for-bit the pool path's result).
DEFAULT_POOL_THRESHOLD = 100_000

#: Shard count used when a facade enables sharding without choosing one.
DEFAULT_SHARDS = 4

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def stable_flow_hash(values: Sequence[int]) -> int:
    """FNV-1a over the flow-key values, stable across processes and runs.

    ``hash()`` is salted per interpreter (``PYTHONHASHSEED``), which would
    make the shard assignment — and therefore any conflict diagnostics —
    irreproducible; this fold is deterministic everywhere.
    """
    folded = _FNV_OFFSET
    for value in values:
        value = int(value) & _MASK64
        while True:
            folded = ((folded ^ (value & 0xFF)) * _FNV_PRIME) & _MASK64
            value >>= 8
            if not value:
                break
    return folded


class ShardStateConflictError(SimulationError):
    """Two shards touched the same state cell (or a blind partition saw a write).

    ``key`` addresses the conflicting cell (``(stage, slot, var)`` on the RMT
    side, ``(register, index)`` on the dRMT side); ``shards`` are the shard
    indices involved.
    """

    def __init__(self, message: str, key: Tuple = (), shards: Tuple[int, ...] = ()):
        super().__init__(message)
        self.key = key
        self.shards = shards


class ShardPlan:
    """One partitioning decision: which original indices each shard owns."""

    def __init__(self, mode: str, assignments: Sequence[Sequence[int]]):
        self.mode = mode  # "flow" (keyed) or "block" (contiguous)
        self.assignments: List[Tuple[int, ...]] = [
            tuple(assignment) for assignment in assignments if assignment
        ]

    def __len__(self) -> int:
        return len(self.assignments)

    def scatter(self, items: Sequence) -> List[List]:
        """Per-shard item lists, preserving each shard's original order."""
        return [[items[index] for index in assignment] for assignment in self.assignments]

    def gather(self, total: int, per_shard: Sequence[Sequence]) -> List:
        """Restore per-shard outputs to original input order."""
        merged: List = [None] * total
        for assignment, outputs in zip(self.assignments, per_shard):
            if len(assignment) != len(outputs):
                raise SimulationError(
                    f"shard returned {len(outputs)} outputs for {len(assignment)} inputs"
                )
            for index, output in zip(assignment, outputs):
                merged[index] = output
        return merged


def plan_shards(
    total: int, shards: int, keys: Optional[Sequence[int]] = None
) -> ShardPlan:
    """Partition ``total`` inputs into at most ``shards`` shards.

    With ``keys`` (one stable hash per input), inputs bucket by
    ``key % shards`` — every input of one flow lands in one shard, in trace
    order, however its packets interleave with other flows.  Without keys
    the trace splits into contiguous blocks.
    """
    if shards < 1:
        raise SimulationError(f"shard count must be at least 1, got {shards}")
    if keys is None:
        block = max(1, math.ceil(total / shards))
        return ShardPlan(
            "block", [range(start, min(start + block, total)) for start in range(0, total, block)]
        )
    if len(keys) != total:
        raise SimulationError("one flow key per input is required")
    buckets: List[List[int]] = [[] for _ in range(shards)]
    for index, key in enumerate(keys):
        buckets[key % shards].append(index)
    return ShardPlan("flow", buckets)


# ----------------------------------------------------------------------
# State merging
# ----------------------------------------------------------------------
def _merge_cells(
    initial_cells: Dict[Tuple, int],
    shard_cells: Sequence[Dict[Tuple, int]],
    strict_reason: Optional[str],
    context: str,
    exposed_slots: FrozenSet[Tuple[int, int]] = frozenset(),
) -> Dict[Tuple, int]:
    """Merge per-shard final cell values under the conflict check.

    With ``strict_reason`` set, *any* changed cell is a conflict (the reason
    explains why other shards may have observed the cell).  Otherwise the
    read-tracked flow-key rule applies per cell: a cell whose ``key[:2]``
    prefix appears in ``exposed_slots`` (the static read set — its value is
    routed into packet outputs, so every shard reads it) must not change at
    all, and every other cell may change in at most one shard.
    """
    merged = dict(initial_cells)
    owners: Dict[Tuple, int] = {}
    for shard, cells in enumerate(shard_cells):
        for key, value in cells.items():
            if value == initial_cells[key]:
                continue
            if strict_reason is not None:
                raise ShardStateConflictError(
                    f"shard {shard} changed {context} state cell {key}, but "
                    f"{strict_reason}; run unsharded (engine='auto' falls back "
                    "automatically)",
                    key=key,
                    shards=(shard,),
                )
            if key[:2] in exposed_slots:
                raise ShardStateConflictError(
                    f"shard {shard} changed {context} state cell {key}, but the "
                    "machine code routes stateful ALU outputs of that cell into a "
                    "PHV container, so packets in every shard read it into their "
                    "outputs; run unsharded (engine='auto' falls back "
                    "automatically)",
                    key=key,
                    shards=(shard,),
                )
            owner = owners.get(key)
            if owner is not None:
                raise ShardStateConflictError(
                    f"{context} state cell {key} was written by shards {owner} and "
                    f"{shard}: the flow key does not partition this program's "
                    "state, so a sharded run cannot reproduce the sequential "
                    "interleaving; run unsharded (engine='auto' falls back "
                    "automatically)",
                    key=key,
                    shards=(owner, shard),
                )
            owners[key] = shard
            merged[key] = value
    return merged


#: Strict-merge reason used when the trace was split without a flow key.
BLOCK_PARTITION_REASON = (
    "block partitioning (no flow key) gives no shard ownership of state, so "
    "other shards may have read the cell"
)


def _pipeline_cells(state: Sequence[Sequence[Sequence[int]]]) -> Dict[Tuple, int]:
    """Flatten ``[stage][slot][var]`` pipeline state into addressed cells."""
    return {
        (stage, slot, var): value
        for stage, vectors in enumerate(state)
        for slot, variables in enumerate(vectors)
        for var, value in enumerate(variables)
    }


def merge_pipeline_states(
    initial: List[List[List[int]]],
    shard_states: Sequence[Sequence[Sequence[Sequence[int]]]],
    strict_reason: Optional[str],
    exposed_slots: FrozenSet[Tuple[int, int]] = frozenset(),
) -> List[List[List[int]]]:
    """Merge RMT per-stage state vectors; raises on a shard conflict.

    ``exposed_slots`` is the static read set (:mod:`repro.machine_code.readsets`):
    ``(stage, slot)`` cells whose state the machine code routes into PHV
    containers.  Writes to them conflict regardless of the flow key.
    """
    merged_cells = _merge_cells(
        _pipeline_cells(initial), [_pipeline_cells(state) for state in shard_states],
        strict_reason, "pipeline", exposed_slots,
    )
    return [
        [
            [merged_cells[(stage, slot, var)] for var in range(len(variables))]
            for slot, variables in enumerate(vectors)
        ]
        for stage, vectors in enumerate(initial)
    ]


def _register_cells(arrays: Dict[str, Sequence[int]]) -> Dict[Tuple, int]:
    """Flatten register arrays into addressed cells."""
    return {
        (name, index): value
        for name, array in arrays.items()
        for index, value in enumerate(array)
    }


def merge_register_states(
    initial: Dict[str, List[int]],
    shard_arrays: Sequence[Dict[str, Sequence[int]]],
    strict_reason: Optional[str],
) -> Dict[str, List[int]]:
    """Merge dRMT register arrays; raises on a shard conflict."""
    merged_cells = _merge_cells(
        _register_cells(initial), [_register_cells(arrays) for arrays in shard_arrays],
        strict_reason, "register",
    )
    return {
        name: [merged_cells[(name, index)] for index in range(len(array))]
        for name, array in initial.items()
    }


def routes_stateful_output(description, values: Dict[str, int]) -> bool:
    """True when any output multiplexer selects a stateful ALU's output.

    A routed stateful output copies the ALU's pre-update state value into a
    PHV container, so downstream outputs *read* state.  The per-cell form of
    this predicate — which cells, not whether — lives in
    :func:`repro.machine_code.readsets.exposed_state_slots` and is what the
    merge actually consults; this boolean stays for callers that only need
    the coarse answer.
    """
    return readsets.routes_stateful_output(description.spec, values)


# ----------------------------------------------------------------------
# Shard execution (pool or in-process; see repro.engine.transport)
# ----------------------------------------------------------------------
def resolve_workers(workers: Optional[int], shards: int) -> int:
    """Effective worker count: never more than shards or available cores."""
    if workers is not None:
        if workers < 1:
            raise SimulationError(f"worker count must be at least 1, got {workers}")
        return min(workers, shards)
    return max(1, min(shards, os.cpu_count() or 1))


# ----------------------------------------------------------------------
# RMT sharded driver
# ----------------------------------------------------------------------
class ShardedRmtDriver:
    """Sharded execution of a compiled pipeline description.

    Satisfies the :class:`~repro.engine.base.ExecutionEngine` contract and
    wraps the fastest sequential driver available for the description (the
    fused ``run_trace`` at opt level 3, else the generic stage loop).

    ``key`` names the PHV containers whose values identify a flow (the
    state-indexing fields); ``key=None`` selects contiguous block
    partitioning, valid only for workloads that never write state (the merge
    enforces this).  ``on_conflict`` is ``"raise"`` (explicit
    ``engine="sharded"``) or ``"fallback"`` (``engine="auto"``: rerun the
    whole trace under the wrapped driver).  ``transport`` selects how shard
    data crosses the pool boundary (``"pickle"``, ``"shm"`` or a
    :class:`~repro.engine.transport.ShardTransport` instance).
    """

    def __init__(
        self,
        description,
        runtime_values: Optional[Dict[str, int]] = None,
        initial_state: Optional[List[List[List[int]]]] = None,
        shards: int = DEFAULT_SHARDS,
        workers: Optional[int] = None,
        key: Optional[Sequence[int]] = None,
        on_conflict: str = "raise",
        pool_threshold: int = DEFAULT_POOL_THRESHOLD,
        transport: Union[str, ShardTransport, None] = None,
    ):
        if on_conflict not in ("raise", "fallback"):
            raise SimulationError(
                f"on_conflict must be 'raise' or 'fallback', got {on_conflict!r}"
            )
        self.description = description
        self.shards = shards
        self.workers = resolve_workers(workers, shards)
        self.on_conflict = on_conflict
        self.pool_threshold = pool_threshold
        self.transport = resolve_transport(transport)
        self._values = (
            runtime_values if runtime_values is not None else description.runtime_values()
        )
        # The exposure check must see the machine code that actually executes:
        # baked-in pairs at opt levels 1+, the runtime dict at level 0.
        self._exposure_values = dict(description.runtime_values())
        self._exposure_values.update(self._values or {})
        self._initial_state = initial_state
        self.inner_mode = (
            ENGINE_FUSED if description.fused_function is not None else ENGINE_GENERIC
        )
        width = description.spec.width
        if key is not None:
            key = tuple(int(container) for container in key)
            for container in key:
                if not 0 <= container < width:
                    raise SimulationError(
                        f"flow-key container {container} out of range for width {width}"
                    )
            if not key:
                raise SimulationError("an explicit flow key needs at least one container")
        self.key = key

    @property
    def engine_name(self) -> str:
        """The driver name reported on results (``sharded[<inner>]``)."""
        return f"{ENGINE_SHARDED}[{self.inner_mode}]"

    def _run_unsharded(self, phv_values, initial_state) -> SimulationResult:
        runner = (
            rmt_drivers.run_fused
            if self.inner_mode == ENGINE_FUSED
            else rmt_drivers.run_generic
        )
        return runner(self.description, phv_values, self._values, initial_state)

    def run(
        self, phv_values: Sequence[Sequence[int]], tick_accurate: bool = False
    ) -> SimulationResult:
        """Simulate the trace sharded; bit-for-bit the wrapped driver's result."""
        if tick_accurate:
            raise SimulationError(
                "the sharded driver has no tick-accurate mode; request the tick engine"
            )
        description = self.description
        inputs, work = rmt_drivers.prepare_inputs(description, phv_values)
        base_state = (
            self._initial_state
            if self._initial_state is not None
            else description.initial_state()
        )
        keys = None
        if self.key is not None:
            keys = [
                stable_flow_hash([phv[container] for container in self.key])
                for phv in work
            ]
        plan = plan_shards(len(work), self.shards, keys)
        if len(plan) <= 1:
            result = self._run_unsharded(inputs, _copy_state(base_state))
            result.engine = self.engine_name
            return result

        handle = rmt_drivers.shard_handle(description, self.inner_mode, self._values)
        shard_works = plan.scatter(work)
        shard_states = [_copy_state(base_state) for _ in range(len(plan))]
        results = self.transport.run_rmt_shards(
            handle, shard_works, shard_states, self.workers, len(work), self.pool_threshold
        )
        if keys is None:
            strict_reason: Optional[str] = BLOCK_PARTITION_REASON
            exposed_slots: FrozenSet[Tuple[int, int]] = frozenset()
        else:
            strict_reason = None
            # The static read set: cells whose state the machine code routes
            # into packet outputs.  Writes to them conflict under any key.
            exposed_slots = readsets.exposed_state_slots(
                description.spec, self._exposure_values
            )
        try:
            merged_state = merge_pipeline_states(
                base_state,
                [state for _outputs, state in results],
                strict_reason,
                exposed_slots,
            )
        except ShardStateConflictError:
            if self.on_conflict == "fallback":
                return self._run_unsharded(inputs, _copy_state(base_state))
            raise
        outputs = plan.gather(len(work), [outputs for outputs, _state in results])
        return sequential_result(
            inputs, outputs, merged_state, description.spec.depth, self.engine_name
        )


def _copy_state(state: List[List[List[int]]]) -> List[List[List[int]]]:
    return [[list(variables) for variables in vectors] for vectors in state]


# ----------------------------------------------------------------------
# dRMT sharded driver
# ----------------------------------------------------------------------
class ShardedDrmtDriver:
    """Sharded execution of one dRMT bundle's packet trace.

    The flow key defaults to the program's provably safe derived key
    (:func:`repro.engine.drmt.derive_auto_shard_key`): a single
    input-determined register-index field, reduced modulo the uniform
    register size so packets that can touch the same cell always land in
    one shard.  A program with no such key (parameter/constant/rewritten
    indices, several index fields, mixed register sizes) runs as one shard
    unless the caller supplies an explicit ``shard_key`` — which carries
    the caller's contract that register cells are flow-owned for reads as
    well as writes.

    ``run`` executes the shards and **applies** the merged state: register
    arrays and table hit/miss counters are folded back into the caller's
    ``registers``/``tables`` (exactly what a sequential run would have left
    behind), and the mutated packet field dicts plus drop flags are returned
    for the facade to assemble into its result record.  On a merge conflict
    nothing is applied.  ``transport`` selects how shard data crosses the
    pool boundary (``"pickle"``, ``"shm"`` or a transport instance).
    """

    def __init__(
        self,
        bundle,
        tables,
        registers,
        shards: int = DEFAULT_SHARDS,
        workers: Optional[int] = None,
        key: Optional[Sequence[str]] = None,
        pool_threshold: int = DEFAULT_POOL_THRESHOLD,
        transport: Union[str, ShardTransport, None] = None,
    ):
        self.bundle = bundle
        self.tables = tables
        self.registers = registers
        self.shards = shards
        self.workers = resolve_workers(workers, shards)
        self.pool_threshold = pool_threshold
        self.transport = resolve_transport(transport)
        self.key: Optional[Tuple[str, ...]]
        #: Reduce key values modulo the register size before hashing (set only
        #: for the derived single-field key, where it makes cell sharing
        #: across shards impossible — see derive_auto_shard_key).
        self.key_modulus: Optional[int] = None
        if key is not None:
            self.key = tuple(key)
        else:
            derived = drmt_drivers.derive_auto_shard_key(bundle.program)
            if derived is None:
                self.key = None
            else:
                self.key, self.key_modulus = derived
        try:
            bundle.fused_program()
            self.inner_mode = "fused"
        except Exception:
            hazard = drmt_drivers.run_to_completion_hazard(bundle.program, bundle.schedule)
            if hazard is not None:
                raise SimulationError(
                    "the sharded dRMT driver needs a sequential inner driver, but "
                    f"fused generation failed and run-to-completion is unsafe: {hazard}"
                )
            self.inner_mode = "generic"

    @property
    def engine_name(self) -> str:
        """The driver name reported on results (``sharded[<inner>]``)."""
        return f"{ENGINE_SHARDED}[{self.inner_mode}]"

    def run(
        self, work: List[Dict[str, int]]
    ) -> Tuple[List[Dict[str, int]], List[bool]]:
        """Run prepared packet dicts sharded; returns (fields, drop flags)."""
        keys = None
        if self.key:  # an empty derived key means "stateless": block partition
            key_fields = self.key
            modulus = self.key_modulus
            if modulus is not None:
                keys = [
                    stable_flow_hash(
                        [packet.get(field, 0) % modulus for field in key_fields]
                    )
                    for packet in work
                ]
            else:
                keys = [
                    stable_flow_hash([packet.get(field, 0) for field in key_fields])
                    for packet in work
                ]
        shard_count = self.shards if self.key is not None else 1
        plan = plan_shards(len(work), shard_count, keys)
        handle = drmt_drivers.drmt_shard_handle(self.bundle, self.inner_mode)
        base_arrays = {
            name: list(array) for name, array in self.registers.arrays().items()
        }
        shard_works = plan.scatter(work)
        shard_tables = [
            drmt_drivers.clone_tables(self.tables.tables) for _ in range(len(plan))
        ]
        shard_arrays = [
            {name: list(array) for name, array in base_arrays.items()}
            for _ in range(len(plan))
        ]
        results = self.transport.run_drmt_shards(
            handle,
            shard_works,
            shard_tables,
            shard_arrays,
            self.workers,
            len(work),
            self.pool_threshold,
        )
        # A single shard is exactly the sequential run: nothing to prove.
        strict_reason = None if (keys or len(plan) <= 1) else BLOCK_PARTITION_REASON
        merged_arrays = merge_register_states(
            base_arrays,
            [arrays for _work, _dropped, arrays, _hits in results],
            strict_reason=strict_reason,
        )
        # Conflict-free: fold the merged state back into the live simulator.
        live_arrays = self.registers.arrays()
        for name, merged in merged_arrays.items():
            live_arrays[name][:] = merged
        for _work, _dropped, _arrays, hits in results:
            for name, (hit_count, miss_count) in hits.items():
                table = self.tables.tables[name]
                table.hit_count += hit_count
                table.miss_count += miss_count
        fields = plan.gather(len(work), [shard_work for shard_work, _d, _a, _h in results])
        dropped = plan.gather(len(work), [flags for _w, flags, _a, _h in results])
        return fields, dropped
