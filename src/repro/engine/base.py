"""Execution-engine protocol and driver-selection rules.

An *execution engine* runs a compiled program on an input trace.  The layer
recognises four drivers, forming a ladder from most faithful to fastest:

``tick``
    The cycle-accurate interpreter of the paper (§3.3 for RMT, §4.2 for
    dRMT).  Always available; the only driver the time-travel debugger's
    per-tick recorder can follow.
``generic``
    A sequential driver that loops over the compiled per-stage /
    per-operation functions with no per-tick bookkeeping.  Available at
    every optimisation level.
``fused``
    The generated ``run_trace`` loop (the driver itself is generated code).
    Available when the program was generated with a fused entry point.
``sharded``
    A meta-driver (:mod:`repro.engine.sharded`) that partitions the input
    trace into per-flow shards, runs every shard under the fastest
    sequential driver (fused, else generic) — across a ``multiprocessing``
    pool when the trace is large enough and the program picklable — and
    deterministically merges the per-shard results under the read-tracked
    state-conflict rule.  How shard data crosses the pool boundary is a
    *transport* choice (:mod:`repro.engine.transport`): the default pickle
    channel, or flat shared-memory buffers (``transport="shm"``).
    Available when the simulator facade was configured with sharding knobs.

``auto`` resolves to the fastest available driver (sharded when configured
and the trace is at least :data:`DEFAULT_SHARD_AUTO_THRESHOLD` inputs long,
else fused, else generic); ``tick_accurate=True`` on a ``run`` call always
forces the tick driver, no matter which engine the simulator was configured
with.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence, runtime_checkable

from ..errors import SimulationError

#: Engine names accepted by every simulator facade.
ENGINE_AUTO = "auto"
ENGINE_TICK = "tick"
ENGINE_GENERIC = "generic"
ENGINE_FUSED = "fused"
ENGINE_SHARDED = "sharded"
ENGINE_CHOICES = (ENGINE_AUTO, ENGINE_TICK, ENGINE_GENERIC, ENGINE_FUSED, ENGINE_SHARDED)

#: ``auto`` only reaches for the sharded meta-driver at or above this many
#: inputs: below it the partition/merge overhead (and, across a pool, the
#: per-worker program compilation) dominates any win.
DEFAULT_SHARD_AUTO_THRESHOLD = 200_000


@runtime_checkable
class ExecutionEngine(Protocol):
    """The common contract every simulator facade satisfies.

    ``run`` takes the architecture's input trace (PHV container lists for
    RMT, packet field dicts for dRMT) and returns a simulation result whose
    ``engine`` attribute names the driver that actually executed the trace.
    """

    def run(self, inputs: Sequence, tick_accurate: bool = False):  # pragma: no cover - protocol
        """Simulate ``inputs``; ``tick_accurate=True`` forces the tick driver."""
        ...


def auto_shard_eligible(
    sharded_available: bool,
    input_size: Optional[int],
    shard_threshold: int = DEFAULT_SHARD_AUTO_THRESHOLD,
) -> bool:
    """The one auto-selection rule for the sharded meta-driver.

    Shared by every facade so the policy cannot drift: ``auto`` reaches for
    sharding only when the facade carries a sharding configuration and the
    trace is known to hold at least ``shard_threshold`` inputs.
    """
    return (
        sharded_available and input_size is not None and input_size >= shard_threshold
    )


def available_engines(
    fused_available: bool, sharded_available: bool = False
) -> tuple:
    """The drivers a compiled program can actually run under, in ladder order."""
    available = [ENGINE_TICK, ENGINE_GENERIC]
    if fused_available:
        available.append(ENGINE_FUSED)
    if sharded_available:
        available.append(ENGINE_SHARDED)
    return tuple(available)


def resolve_engine(
    requested: str,
    fused_available: bool,
    tick_accurate: bool = False,
    context: str = "pipeline",
    sharded_available: bool = False,
    input_size: Optional[int] = None,
    shard_threshold: int = DEFAULT_SHARD_AUTO_THRESHOLD,
) -> str:
    """Resolve a requested engine name to a concrete driver.

    Selection rules:

    * ``tick_accurate=True`` always wins and selects ``tick``;
    * ``auto`` selects ``sharded`` when the facade carries a sharding
      configuration (``sharded_available``) and the trace is known to hold at
      least ``shard_threshold`` inputs, else ``fused`` when the compiled
      program carries a fused entry point, otherwise ``generic``;
    * ``fused`` or ``sharded`` requested explicitly raises
      :class:`SimulationError` when unavailable (instead of silently
      degrading), naming the drivers that *are* available for the program.
    """
    if requested not in ENGINE_CHOICES:
        raise SimulationError(
            f"unknown engine {requested!r}; choose one of {', '.join(ENGINE_CHOICES)}"
        )
    if tick_accurate:
        return ENGINE_TICK
    available = available_engines(fused_available, sharded_available)
    if requested == ENGINE_AUTO:
        if auto_shard_eligible(sharded_available, input_size, shard_threshold):
            return ENGINE_SHARDED
        return ENGINE_FUSED if fused_available else ENGINE_GENERIC
    if requested not in available:
        hint = (
            "generate at opt level 3, or use engine='auto'"
            if requested == ENGINE_FUSED
            else "configure the simulator with shards=/workers=, or use engine='auto'"
        )
        reason = (
            "carries no fused run_trace entry point"
            if requested == ENGINE_FUSED
            else "has no sharding configuration"
        )
        raise SimulationError(
            f"the {requested} engine was requested but this {context} {reason} "
            f"({hint}); available drivers for this {context}: {', '.join(available)}"
        )
    return requested
