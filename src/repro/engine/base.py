"""Execution-engine protocol and driver-selection rules.

An *execution engine* runs a compiled program on an input trace.  The layer
recognises three drivers, forming a ladder from most faithful to fastest:

``tick``
    The cycle-accurate interpreter of the paper (§3.3 for RMT, §4.2 for
    dRMT).  Always available; the only driver the time-travel debugger's
    per-tick recorder can follow.
``generic``
    A sequential driver that loops over the compiled per-stage /
    per-operation functions with no per-tick bookkeeping.  Available at
    every optimisation level.
``fused``
    The generated ``run_trace`` loop (the driver itself is generated code).
    Available when the program was generated with a fused entry point.

``auto`` resolves to the fastest available driver (fused, else generic);
``tick_accurate=True`` on a ``run`` call always forces the tick driver, no
matter which engine the simulator was configured with.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from ..errors import SimulationError

#: Engine names accepted by every simulator facade.
ENGINE_AUTO = "auto"
ENGINE_TICK = "tick"
ENGINE_GENERIC = "generic"
ENGINE_FUSED = "fused"
ENGINE_CHOICES = (ENGINE_AUTO, ENGINE_TICK, ENGINE_GENERIC, ENGINE_FUSED)


@runtime_checkable
class ExecutionEngine(Protocol):
    """The common contract every simulator facade satisfies.

    ``run`` takes the architecture's input trace (PHV container lists for
    RMT, packet field dicts for dRMT) and returns a simulation result whose
    ``engine`` attribute names the driver that actually executed the trace.
    """

    def run(self, inputs: Sequence, tick_accurate: bool = False):  # pragma: no cover - protocol
        """Simulate ``inputs``; ``tick_accurate=True`` forces the tick driver."""
        ...


def resolve_engine(
    requested: str,
    fused_available: bool,
    tick_accurate: bool = False,
    context: str = "pipeline",
) -> str:
    """Resolve a requested engine name to a concrete driver.

    Selection rules:

    * ``tick_accurate=True`` always wins and selects ``tick``;
    * ``auto`` selects ``fused`` when the compiled program carries a fused
      entry point, otherwise ``generic``;
    * ``fused`` requested explicitly raises :class:`SimulationError` when the
      program has no fused entry point (instead of silently degrading).
    """
    if requested not in ENGINE_CHOICES:
        raise SimulationError(
            f"unknown engine {requested!r}; choose one of {', '.join(ENGINE_CHOICES)}"
        )
    if tick_accurate:
        return ENGINE_TICK
    if requested == ENGINE_AUTO:
        return ENGINE_FUSED if fused_available else ENGINE_GENERIC
    if requested == ENGINE_FUSED and not fused_available:
        raise SimulationError(
            f"the fused engine was requested but this {context} carries no fused "
            "run_trace entry point (generate at opt level 3, or use engine='auto')"
        )
    return requested
