"""dRMT-style run-to-completion execution of compiled pipeline descriptions.

The paper's two architectures differ in *where* a program executes, not in
*what* it computes: RMT lays the stages out as a feedforward pipeline, while
dRMT "moves the match+action processing into run-to-completion processors"
that each execute the whole program for the packets assigned to them
round-robin, against shared memories (§4).  This module runs the *same*
compiled pipeline description under the dRMT execution model, which is what
makes cross-architecture equivalence testable: for a feedforward program,
every stage's state is touched in packet arrival order under both models, so
outputs and final state are bit-for-bit identical.

Drivers (the same ladder as everywhere else in the engine layer):

* **tick** — each processor advances each of its in-flight packets one stage
  per tick (a packet injected at tick ``p`` executes stage ``s`` at tick
  ``p + s``, exactly the pipeline's skew);
* **generic** — each packet runs to completion through all stage functions
  in arrival order (the per-processor split only affects bookkeeping);
* **fused** — the description's generated ``run_trace`` loop executes the
  arrival-order trace (available at opt level 3).

The per-stage state vectors play the role of dRMT's centralised register
memories: one shared copy, not per-processor copies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..dgen.emit import PipelineDescription
from ..errors import SimulationError
from .base import ENGINE_GENERIC, ENGINE_TICK, resolve_engine
from .rmt import prepare_inputs, run_stage_loop
from .result import SimulationResult, sequential_result


class RunToCompletionSimulator:
    """Runs a compiled pipeline description on dRMT-style processors."""

    def __init__(
        self,
        description: PipelineDescription,
        num_processors: int = 4,
        runtime_values: Optional[Dict[str, int]] = None,
        initial_state: Optional[List[List[List[int]]]] = None,
        engine: str = "auto",
    ):
        if num_processors < 1:
            raise SimulationError("run-to-completion execution needs at least one processor")
        self.description = description
        self.num_processors = num_processors
        self.engine = engine
        self._runtime_values = runtime_values
        self._initial_state = initial_state

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self, phv_values: Sequence[Sequence[int]], tick_accurate: bool = False
    ) -> SimulationResult:
        """Simulate an explicit input trace under the run-to-completion model."""
        mode = resolve_engine(
            self.engine,
            fused_available=self.description.fused_function is not None,
            tick_accurate=tick_accurate,
            context="pipeline description",
        )
        state = self._initial_state_copy()
        if state is None:
            state = self.description.initial_state()
        values = self._runtime_values
        if values is None:
            values = self.description.runtime_values()

        if mode == ENGINE_TICK:
            result = self._run_tick(phv_values, state, values)
        elif mode == ENGINE_GENERIC:
            inputs, work = prepare_inputs(self.description, phv_values)
            outputs = run_stage_loop(self.description.stage_functions, work, state, values)
            result = sequential_result(
                inputs, outputs, state, self.description.spec.depth, mode
            )
        else:  # fused
            inputs, work = prepare_inputs(self.description, phv_values)
            outputs = self.description.fused_function(work, state, values)
            result = sequential_result(
                inputs, outputs, state, self.description.spec.depth, mode
            )
        result.engine = f"rtc-{mode}"
        # Run-to-completion latency: the last packet (injected at tick n-1)
        # finishes its final stage at tick n+depth-2, one tick earlier than
        # the pipeline's exit-after-commit model.
        depth = self.description.spec.depth
        result.ticks = len(result.input_trace) + depth - 1 if result.input_trace else 0
        return result

    def processor_of(self, packet_index: int) -> int:
        """Round-robin processor assignment of one packet."""
        return packet_index % self.num_processors

    # ------------------------------------------------------------------
    # Tick-accurate run-to-completion model
    # ------------------------------------------------------------------
    def _run_tick(
        self,
        phv_values: Sequence[Sequence[int]],
        state: List[List[List[int]]],
        values: Optional[Dict[str, int]],
    ) -> SimulationResult:
        """Per-tick model: every processor advances its packets one stage per tick.

        A packet injected at tick ``p`` executes stage ``s`` at tick
        ``p + s`` — the same (tick, stage) schedule as the RMT pipeline, so
        the shared per-stage state is touched in an identical order and the
        results match the other drivers bit for bit.
        """
        inputs, work = prepare_inputs(self.description, phv_values)
        stage_functions = self.description.stage_functions
        depth = self.description.spec.depth
        total = len(work)

        # Per-processor queues of (packet index, current containers, next stage).
        in_flight: List[List[Tuple[int, Sequence[int], int]]] = [
            [] for _ in range(self.num_processors)
        ]
        outputs: List[Optional[Sequence[int]]] = [None] * total
        injected = 0
        while injected < total or any(in_flight):
            if injected < total:
                in_flight[self.processor_of(injected)].append((injected, work[injected], 0))
                injected += 1
            for queue in in_flight:
                retained: List[Tuple[int, Sequence[int], int]] = []
                for packet, phv, stage in queue:
                    phv = stage_functions[stage](phv, state[stage], values)
                    if stage + 1 == depth:
                        outputs[packet] = phv
                    else:
                        retained.append((packet, phv, stage + 1))
                queue[:] = retained

        return sequential_result(inputs, outputs, state, depth, ENGINE_TICK)

    def _initial_state_copy(self) -> Optional[List[List[List[int]]]]:
        if self._initial_state is None:
            return None
        return [[list(alu) for alu in stage] for stage in self._initial_state]
