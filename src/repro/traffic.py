"""Unified traffic generation for both execution engines.

Both switch architectures are fed by seeded random workload generators:

* the RMT engine consumes *PHV traces* — "the traffic generator creates a
  sequence of PHVs where every PHV consists of random unsigned integers"
  (paper §3.3);
* the dRMT engine consumes *packet traces* — "the dRMT dsim traffic generator
  generates packets with randomly initialized packet field values based on
  the fields specified in the P4 file instead of PHVs" (paper §4.2).

Historically the two generators lived in separate copies under ``dsim`` and
``drmt`` and drifted (different laziness, duplicated field-override helpers,
diverging seed plumbing).  This module is the single home for both; the old
``repro.dsim.traffic`` and ``repro.drmt.traffic`` modules re-export from here
for compatibility.  Seed handling is shared: every generator owns one integer
``seed``, builds a fresh :class:`random.Random` per ``generate``/``iter_*``
call, and is therefore replayable — the fuzzing workflow relies on this to
reproduce counterexamples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from .errors import SimulationError
from .p4.program import P4Program

#: Default maximum container value: 10-bit unsigned integers (paper §5.2).
DEFAULT_MAX_VALUE = (1 << 10) - 1

#: Field widths above this many bits are capped when drawing random values.
MAX_RANDOM_BITS = 16

#: Signature of a per-field/per-container override: PRNG -> value.
FieldGenerator = Callable[[random.Random], int]


class SeededGenerator:
    """Mixin providing the shared seed handling of both traffic generators.

    Subclasses store an integer ``seed`` attribute; :meth:`fresh_rng` returns
    a new PRNG seeded with it, so repeated ``generate`` calls on one
    generator produce identical sequences (replayability), and two generators
    built with the same parameters agree item for item.
    """

    seed: int

    def fresh_rng(self) -> random.Random:
        """A new PRNG positioned at the start of this generator's sequence."""
        return random.Random(self.seed)

    @staticmethod
    def check_count(count: int) -> None:
        """Validate a requested item count."""
        if count < 0:
            raise SimulationError("count must be non-negative")


@dataclass
class TrafficGenerator(SeededGenerator):
    """Deterministic random PHV generator (RMT engine input).

    Parameters
    ----------
    num_containers:
        Containers per PHV (the pipeline width).
    seed:
        PRNG seed; two generators built with the same parameters produce the
        same sequence, which the fuzzing workflow relies on to replay
        counterexamples.
    min_value, max_value:
        Inclusive bounds of the uniform distribution each container value is
        drawn from.
    field_generators:
        Optional per-container override: a callable taking the PRNG and
        returning the value for that container.  Used by the benchmark
        programs to generate realistic field distributions (e.g. a small set
        of flow identifiers for the flowlet workload).
    """

    num_containers: int
    seed: int = 0
    min_value: int = 0
    max_value: int = DEFAULT_MAX_VALUE
    field_generators: Optional[Sequence[Optional[FieldGenerator]]] = None

    def __post_init__(self) -> None:
        if self.num_containers < 1:
            raise SimulationError("traffic generator needs at least one container")
        if self.min_value > self.max_value:
            raise SimulationError(
                f"invalid value range [{self.min_value}, {self.max_value}]"
            )
        if self.field_generators is not None and len(self.field_generators) != self.num_containers:
            raise SimulationError(
                "field_generators must provide one entry (or None) per container"
            )

    def generate(self, count: int) -> List[List[int]]:
        """Generate ``count`` PHVs worth of container values."""
        return list(self.iter_phvs(count))

    def iter_phvs(self, count: int) -> Iterator[List[int]]:
        """Yield ``count`` PHVs lazily (useful for very long simulations)."""
        self.check_count(count)
        rng = self.fresh_rng()
        for _ in range(count):
            yield self._one_phv(rng)

    def _one_phv(self, rng: random.Random) -> List[int]:
        values: List[int] = []
        for container in range(self.num_containers):
            generator = None
            if self.field_generators is not None:
                generator = self.field_generators[container]
            if generator is not None:
                values.append(int(generator(rng)))
            else:
                values.append(rng.randint(self.min_value, self.max_value))
        return values


@dataclass
class PacketGenerator(SeededGenerator):
    """Deterministic random packet generator driven by a P4 program's fields
    (dRMT engine input).

    ``field_overrides`` maps a fully qualified field name to a callable
    ``rng -> value`` so workloads can constrain specific fields (e.g. a small
    set of destination addresses that actually hit installed table entries).
    Metadata fields start at ``metadata_default`` without consuming a PRNG
    draw, like a freshly initialised PHV's metadata containers.
    """

    program: P4Program
    seed: int = 0
    field_overrides: Dict[str, FieldGenerator] = field(default_factory=dict)
    metadata_default: int = 0

    def generate(self, count: int) -> List[Dict[str, int]]:
        """Generate ``count`` packets."""
        return list(self.iter_packets(count))

    def iter_packets(self, count: int) -> Iterator[Dict[str, int]]:
        """Yield ``count`` packets lazily (parity with :meth:`TrafficGenerator.iter_phvs`)."""
        self.check_count(count)
        rng = self.fresh_rng()
        fields = self.program.all_fields()
        for _ in range(count):
            yield self._one_packet(rng, fields)

    def _one_packet(self, rng: random.Random, fields: Sequence[str]) -> Dict[str, int]:
        packet: Dict[str, int] = {}
        for qualified in fields:
            override = self.field_overrides.get(qualified)
            if override is not None:
                packet[qualified] = int(override(rng))
                continue
            instance_name = qualified.split(".", 1)[0]
            instance = self.program.headers[instance_name]
            if instance.is_metadata:
                packet[qualified] = self.metadata_default
                continue
            width = min(self.program.field_width(qualified), MAX_RANDOM_BITS)
            packet[qualified] = rng.randint(0, (1 << width) - 1)
        return packet


# ----------------------------------------------------------------------
# Field-generator helpers (shared by both engines)
# ----------------------------------------------------------------------
def uniform_field(low: int, high: int) -> FieldGenerator:
    """Field generator drawing uniformly from ``[low, high]``."""
    return lambda rng: rng.randint(low, high)


def choice_field(choices: Sequence[int]) -> FieldGenerator:
    """Field generator drawing uniformly from an explicit set of values.

    Handy for fields such as flow identifiers or ports where a workload only
    exercises a small population (e.g. the stateful-firewall and flowlet
    benchmarks, or dRMT source addresses that hit installed table entries).
    """
    values = [int(choice) for choice in choices]
    if not values:
        raise SimulationError("choice_field needs at least one choice")
    return lambda rng: rng.choice(values)


def constant_field(value: int) -> FieldGenerator:
    """Field generator always returning ``value`` (e.g. a fixed protocol number)."""
    return lambda rng: int(value)


def values_field(values: Sequence[int]) -> FieldGenerator:
    """Alias of :func:`choice_field` kept for the dRMT engine's historical API."""
    return choice_field(values)
