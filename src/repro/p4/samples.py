"""Sample P4-14-like programs used by examples, tests and the dRMT benchmarks."""

from __future__ import annotations

from .parser import parse
from .program import P4Program

#: A small L3 forwarder: forwarding table, TTL-based ACL and a flow counter
#: kept in a register.  Exercises match, action and successor dependencies.
SIMPLE_ROUTER = """
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}

header_type ipv4_t {
    fields {
        srcAddr : 32;
        dstAddr : 32;
        ttl : 8;
        protocol : 8;
    }
}

header_type metadata_t {
    fields {
        egress_port : 16;
        flow_index : 16;
        tmp_count : 32;
        acl_drop : 8;
    }
}

header ethernet_t ethernet;
header ipv4_t ipv4;
metadata metadata_t meta;

register flow_counter {
    width : 32;
    instance_count : 64;
}

action set_nhop(port) {
    modify_field(meta.egress_port, port);
    subtract_from_field(ipv4.ttl, 1);
}

action on_miss() {
    no_op();
}

action drop_packet() {
    drop();
}

action allow() {
    modify_field(meta.acl_drop, 0);
}

action count_flow(index) {
    modify_field(meta.flow_index, index);
    register_read(meta.tmp_count, flow_counter, index);
    add_to_field(meta.tmp_count, 1);
    register_write(flow_counter, index, meta.tmp_count);
}

table forward {
    reads {
        ipv4.dstAddr : lpm;
    }
    actions { set_nhop; on_miss; }
    size : 256;
    default_action : on_miss;
}

table acl {
    reads {
        meta.egress_port : exact;
        ipv4.protocol : ternary;
    }
    actions { drop_packet; allow; }
    size : 64;
    default_action : allow;
}

table flow_stats {
    reads {
        ipv4.srcAddr : exact;
    }
    actions { count_flow; on_miss; }
    size : 64;
    default_action : on_miss;
}

control ingress {
    apply(forward);
    apply(acl);
    apply(flow_stats);
}
"""

#: Table entries for :data:`SIMPLE_ROUTER` in the dRMT configuration format.
SIMPLE_ROUTER_ENTRIES = """
# Forwarding: two /8 prefixes and one more-specific /16.
add forward ipv4.dstAddr=167772160/8    => set_nhop(1)     # 10.0.0.0/8
add forward ipv4.dstAddr=3232235520/16  => set_nhop(2)     # 192.168.0.0/16
add forward ipv4.dstAddr=0/0            => set_nhop(3)     # default route

# ACL: drop protocol 17 (UDP) leaving port 2; allow everything else explicitly on port 1.
add acl meta.egress_port=2 ipv4.protocol=17&&&255 => drop_packet()
add acl meta.egress_port=1 ipv4.protocol=0&&&0    => allow()

# Flow statistics for two tracked sources.
add flow_stats ipv4.srcAddr=42  => count_flow(1)
add flow_stats ipv4.srcAddr=77  => count_flow(2)
"""

#: A register-heavy telemetry program with a chain of dependent tables.
TELEMETRY_PIPELINE = """
header_type pkt_t {
    fields {
        flow_id : 16;
        size : 16;
        queue_depth : 16;
    }
}

header_type meta_t {
    fields {
        bucket : 16;
        total : 32;
        alarm : 8;
    }
}

header pkt_t pkt;
metadata meta_t meta;

register byte_totals {
    width : 32;
    instance_count : 16;
}

action pick_bucket(bucket) {
    modify_field(meta.bucket, bucket);
}

action accumulate() {
    register_read(meta.total, byte_totals, meta.bucket);
    add_to_field(meta.total, pkt.size);
    register_write(byte_totals, meta.bucket, meta.total);
}

action raise_alarm() {
    modify_field(meta.alarm, 1);
}

action no_alarm() {
    modify_field(meta.alarm, 0);
}

table bucketize {
    reads {
        pkt.flow_id : exact;
    }
    actions { pick_bucket; }
    size : 16;
    default_action : pick_bucket;
}

table accounting {
    reads {
        meta.bucket : exact;
    }
    actions { accumulate; }
    size : 16;
    default_action : accumulate;
}

table alarms {
    reads {
        pkt.queue_depth : ternary;
    }
    actions { raise_alarm; no_alarm; }
    size : 8;
    default_action : no_alarm;
}

control ingress {
    apply(bucketize);
    apply(accounting);
    apply(alarms);
}
"""

#: Table entries for :data:`TELEMETRY_PIPELINE`.
TELEMETRY_ENTRIES = """
add bucketize pkt.flow_id=1 => pick_bucket(1)
add bucketize pkt.flow_id=2 => pick_bucket(2)
add bucketize pkt.flow_id=3 => pick_bucket(3)
add accounting meta.bucket=1 => accumulate()
add accounting meta.bucket=2 => accumulate()
add accounting meta.bucket=3 => accumulate()
add accounting meta.bucket=0 => accumulate()
add alarms pkt.queue_depth=65280&&&65280 => raise_alarm()
"""


def simple_router() -> P4Program:
    """Parsed :data:`SIMPLE_ROUTER` program."""
    return parse(SIMPLE_ROUTER, name="simple_router")


def telemetry_pipeline() -> P4Program:
    """Parsed :data:`TELEMETRY_PIPELINE` program."""
    return parse(TELEMETRY_PIPELINE, name="telemetry_pipeline")
