"""Table-dependency DAG extraction (paper §4.1).

dRMT dgen "converts the given P4 file into a DAG representing the
match+action table dependencies".  Following the classification used by the
RMT and dRMT papers (and by p4-hlir's dependency analysis), two tables A and
B with A preceding B in the control flow have:

* a **match dependency** when an action of A writes a field that B matches
  on (B's match must wait for A's action to finish);
* an **action dependency** when an action of A and an action of B write the
  same field, or both touch the same register (B's action must follow A's
  action);
* a **successor dependency** otherwise (only the control-flow order links
  them; their operations may overlap freely except for table predication).

The DAG is a :class:`networkx.DiGraph` whose nodes are table names and whose
edges carry a ``kind`` attribute (``match`` / ``action`` / ``successor``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

import networkx as nx

from ..errors import P4SemanticError
from .program import P4Program

#: Dependency kinds, strongest first.
MATCH_DEPENDENCY = "match"
ACTION_DEPENDENCY = "action"
SUCCESSOR_DEPENDENCY = "successor"


@dataclass
class TableUsage:
    """Field and register usage summary for one table."""

    name: str
    match_fields: Set[str]
    action_reads: Set[str]
    action_writes: Set[str]
    registers: Set[str]


def table_usage(program: P4Program, table_name: str) -> TableUsage:
    """Compute the field/register usage of one table across all of its actions."""
    table = program.tables.get(table_name)
    if table is None:
        raise P4SemanticError(f"unknown table {table_name!r}")
    reads: Set[str] = set()
    writes: Set[str] = set()
    registers: Set[str] = set()
    for action_name in table.actions:
        action = program.actions[action_name]
        reads.update(action.fields_read())
        writes.update(action.fields_written())
        registers.update(action.registers_used())
    return TableUsage(
        name=table_name,
        match_fields=set(table.match_fields()),
        action_reads=reads,
        action_writes=writes,
        registers=registers,
    )


def classify_dependency(before: TableUsage, after: TableUsage) -> str:
    """Classify the dependency from ``before`` to ``after`` (control-flow order)."""
    if before.action_writes & after.match_fields:
        return MATCH_DEPENDENCY
    if (
        (before.action_writes & after.action_writes)
        or (before.action_writes & after.action_reads)
        or (before.action_reads & after.action_writes)
        or (before.registers & after.registers)
    ):
        return ACTION_DEPENDENCY
    return SUCCESSOR_DEPENDENCY


def build_dependency_graph(program: P4Program) -> nx.DiGraph:
    """Build the table-dependency DAG for ``program``.

    Nodes are table names (with a ``order`` attribute giving control-flow
    position); edges connect earlier tables to later tables and carry their
    dependency ``kind``.  Only adjacent-in-control-flow pairs *and* pairs
    with a real data dependency get edges, so independent tables remain
    unordered and the scheduler may overlap them.
    """
    order = program.table_order()
    if len(set(order)) != len(order):
        raise P4SemanticError("control flow applies a table more than once; unsupported")

    graph = nx.DiGraph()
    usages: Dict[str, TableUsage] = {}
    for position, table_name in enumerate(order):
        usages[table_name] = table_usage(program, table_name)
        graph.add_node(table_name, order=position)

    for i, earlier in enumerate(order):
        for later in order[i + 1 :]:
            kind = classify_dependency(usages[earlier], usages[later])
            if kind != SUCCESSOR_DEPENDENCY:
                graph.add_edge(earlier, later, kind=kind)

    # Conditional application: a table guarded on a field written by an
    # earlier table is control-dependent on it (treated as a match dependency
    # because the predicate must be resolved before the match is issued).
    for apply in program.control_flow:
        if apply.condition_field is None:
            continue
        for earlier in order[: order.index(apply.table)]:
            if apply.condition_field in usages[earlier].action_writes:
                graph.add_edge(earlier, apply.table, kind=MATCH_DEPENDENCY)

    if not nx.is_directed_acyclic_graph(graph):  # pragma: no cover - defensive
        raise P4SemanticError("table dependencies form a cycle; the program is not feed-forward")
    return graph


def critical_path(graph: nx.DiGraph) -> List[str]:
    """Longest dependency chain (by table count) — a lower bound on program latency."""
    if graph.number_of_nodes() == 0:
        return []
    return nx.dag_longest_path(graph)


def dependency_summary(graph: nx.DiGraph) -> Dict[str, int]:
    """Count edges per dependency kind (used in reports and tests)."""
    summary = {MATCH_DEPENDENCY: 0, ACTION_DEPENDENCY: 0, SUCCESSOR_DEPENDENCY: 0}
    for _u, _v, data in graph.edges(data=True):
        summary[data.get("kind", SUCCESSOR_DEPENDENCY)] += 1
    return summary
