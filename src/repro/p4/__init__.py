"""P4-14-like program model, parser and table-dependency analysis (paper §4.1)."""

from .dependency import (
    ACTION_DEPENDENCY,
    MATCH_DEPENDENCY,
    SUCCESSOR_DEPENDENCY,
    build_dependency_graph,
    classify_dependency,
    critical_path,
    dependency_summary,
    table_usage,
)
from .parser import P4Parser, parse
from .program import (
    Action,
    ControlApply,
    HeaderInstance,
    HeaderType,
    P4Program,
    PrimitiveCall,
    Register,
    Table,
    TableRead,
)

__all__ = [
    "P4Program",
    "HeaderType",
    "HeaderInstance",
    "Action",
    "PrimitiveCall",
    "Table",
    "TableRead",
    "Register",
    "ControlApply",
    "parse",
    "P4Parser",
    "build_dependency_graph",
    "classify_dependency",
    "table_usage",
    "critical_path",
    "dependency_summary",
    "MATCH_DEPENDENCY",
    "ACTION_DEPENDENCY",
    "SUCCESSOR_DEPENDENCY",
]
