"""Parser for the P4-14-like textual format.

The accepted syntax is a compact subset of P4-14 sufficient for dRMT dgen:

.. code-block:: none

    header_type ipv4_t { fields { srcAddr : 32; dstAddr : 32; ttl : 8; } }
    header ipv4_t ipv4;
    metadata meta_t meta;
    register flow_count { width : 32; instance_count : 1024; }
    action set_nhop(port) { modify_field(meta.egress_port, port); }
    action drop_pkt() { drop(); }
    table forward {
        reads { ipv4.dstAddr : exact; }
        actions { set_nhop; drop_pkt; }
        size : 1024;
    }
    control ingress {
        apply(forward);
        if (ipv4.ttl == 0) { apply(acl); }
    }

``//`` and ``#`` comments run to end of line.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import P4SyntaxError
from .program import (
    Action,
    ControlApply,
    HeaderInstance,
    HeaderType,
    P4Program,
    PrimitiveCall,
    Register,
    Table,
    TableRead,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|\#[^\n]*)
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)
  | (?P<eq>==)
  | (?P<punct>[{}();:,])
    """,
    re.VERBOSE,
)


def _tokenize(source: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    line = 1
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise P4SyntaxError(f"unexpected character {source[position]!r} on line {line}")
        line += match.group(0).count("\n")
        position = match.end()
        if match.lastgroup in ("ws", "comment"):
            continue
        tokens.append(match.group(0))
    return tokens


class P4Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: List[str], source: str = ""):
        self._tokens = tokens
        self._pos = 0
        self._source = source

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _peek(self) -> Optional[str]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _advance(self) -> str:
        token = self._peek()
        if token is None:
            raise P4SyntaxError("unexpected end of input")
        self._pos += 1
        return token

    def _expect(self, expected: str) -> str:
        token = self._advance()
        if token != expected:
            raise P4SyntaxError(f"expected {expected!r}, found {token!r}")
        return token

    def _expect_ident(self) -> str:
        token = self._advance()
        if not re.match(r"^[A-Za-z_]", token):
            raise P4SyntaxError(f"expected an identifier, found {token!r}")
        return token

    def _expect_number(self) -> int:
        token = self._advance()
        if not token.isdigit():
            raise P4SyntaxError(f"expected a number, found {token!r}")
        return int(token)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse(self, name: str = "p4_program") -> P4Program:
        """Parse the full program and validate cross-references."""
        program = P4Program(name=name, source=self._source)
        while self._peek() is not None:
            keyword = self._advance()
            if keyword == "header_type":
                header_type = self._parse_header_type()
                program.header_types[header_type.name] = header_type
            elif keyword == "header":
                type_name = self._expect_ident()
                instance_name = self._expect_ident()
                self._expect(";")
                program.headers[instance_name] = HeaderInstance(instance_name, type_name)
            elif keyword == "metadata":
                type_name = self._expect_ident()
                instance_name = self._expect_ident()
                self._expect(";")
                program.headers[instance_name] = HeaderInstance(
                    instance_name, type_name, is_metadata=True
                )
            elif keyword == "register":
                register = self._parse_register()
                program.registers[register.name] = register
            elif keyword == "action":
                action = self._parse_action()
                program.actions[action.name] = action
            elif keyword == "table":
                table = self._parse_table()
                program.tables[table.name] = table
            elif keyword == "control":
                control_name = self._expect_ident()
                if control_name != "ingress":
                    raise P4SyntaxError(f"only the 'ingress' control is supported, got {control_name!r}")
                program.control_flow = self._parse_control()
            else:
                raise P4SyntaxError(f"unexpected top-level keyword {keyword!r}")
        program.validate()
        return program

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def _parse_header_type(self) -> HeaderType:
        name = self._expect_ident()
        self._expect("{")
        self._expect("fields")
        self._expect("{")
        fields: List[Tuple[str, int]] = []
        while self._peek() != "}":
            field_name = self._expect_ident()
            self._expect(":")
            width = self._expect_number()
            self._expect(";")
            fields.append((field_name, width))
        self._expect("}")
        self._expect("}")
        return HeaderType(name=name, fields=fields)

    def _parse_register(self) -> Register:
        name = self._expect_ident()
        self._expect("{")
        width = 32
        instance_count = 1024
        while self._peek() != "}":
            key = self._expect_ident()
            self._expect(":")
            value = self._expect_number()
            self._expect(";")
            if key == "width":
                width = value
            elif key == "instance_count":
                instance_count = value
            else:
                raise P4SyntaxError(f"unknown register attribute {key!r}")
        self._expect("}")
        return Register(name=name, width=width, instance_count=instance_count)

    def _parse_action(self) -> Action:
        name = self._expect_ident()
        self._expect("(")
        params: List[str] = []
        while self._peek() != ")":
            params.append(self._expect_ident())
            if self._peek() == ",":
                self._advance()
        self._expect(")")
        self._expect("{")
        body: List[PrimitiveCall] = []
        while self._peek() != "}":
            op = self._expect_ident()
            self._expect("(")
            args: List[str] = []
            while self._peek() != ")":
                args.append(self._advance())
                if self._peek() == ",":
                    self._advance()
            self._expect(")")
            self._expect(";")
            body.append(PrimitiveCall(op=op, args=args))
        self._expect("}")
        return Action(name=name, params=params, body=body)

    def _parse_table(self) -> Table:
        name = self._expect_ident()
        self._expect("{")
        reads: List[TableRead] = []
        actions: List[str] = []
        size = 1024
        default_action: Optional[str] = None
        while self._peek() != "}":
            section = self._expect_ident()
            if section == "reads":
                self._expect("{")
                while self._peek() != "}":
                    field = self._expect_ident()
                    self._expect(":")
                    match_kind = self._expect_ident()
                    self._expect(";")
                    reads.append(TableRead(field=field, match_kind=match_kind))
                self._expect("}")
            elif section == "actions":
                self._expect("{")
                while self._peek() != "}":
                    actions.append(self._expect_ident())
                    self._expect(";")
                self._expect("}")
            elif section == "size":
                self._expect(":")
                size = self._expect_number()
                self._expect(";")
            elif section == "default_action":
                self._expect(":")
                default_action = self._expect_ident()
                self._expect(";")
            else:
                raise P4SyntaxError(f"unknown table section {section!r}")
        self._expect("}")
        return Table(
            name=name, reads=reads, actions=actions, size=size, default_action=default_action
        )

    def _parse_control(self) -> List[ControlApply]:
        self._expect("{")
        applies: List[ControlApply] = []
        while self._peek() != "}":
            keyword = self._advance()
            if keyword == "apply":
                self._expect("(")
                table = self._expect_ident()
                self._expect(")")
                self._expect(";")
                applies.append(ControlApply(table=table))
            elif keyword == "if":
                self._expect("(")
                field = self._expect_ident()
                self._expect("==")
                value = self._expect_number()
                self._expect(")")
                self._expect("{")
                self._expect("apply")
                self._expect("(")
                table = self._expect_ident()
                self._expect(")")
                self._expect(";")
                self._expect("}")
                applies.append(
                    ControlApply(table=table, condition_field=field, condition_value=value)
                )
            else:
                raise P4SyntaxError(f"unexpected control statement {keyword!r}")
        self._expect("}")
        return applies


def parse(source: str, name: str = "p4_program") -> P4Program:
    """Parse P4-14-like ``source`` into a validated :class:`P4Program`."""
    return P4Parser(_tokenize(source), source=source).parse(name=name)
