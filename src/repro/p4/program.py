"""P4-14-like program model.

dRMT dgen (paper §4.1) consumes "a P4 file representing the algorithmic
behavior specified in the context of a feed-forward pipeline" and converts it
into a DAG of match+action table dependencies.  The reproduction models the
subset of P4-14 that flow requires: header types and instances, metadata,
actions built from primitive operations, match+action tables, registers
(stateful memories) and an ingress control flow that applies tables in
order (optionally under a condition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import P4SemanticError

#: Match kinds supported by table reads.
MATCH_KINDS = ("exact", "ternary", "lpm")

#: Primitive action operations supported by the interpreter.
PRIMITIVE_OPS = (
    "modify_field",
    "add_to_field",
    "subtract_from_field",
    "register_read",
    "register_write",
    "drop",
    "no_op",
)


@dataclass
class HeaderType:
    """A P4 header type: an ordered list of (field name, bit width)."""

    name: str
    fields: List[Tuple[str, int]]

    def field_names(self) -> List[str]:
        """Names of the declared fields."""
        return [name for name, _width in self.fields]

    def field_width(self, name: str) -> int:
        """Bit width of one field."""
        for field_name, width in self.fields:
            if field_name == name:
                return width
        raise P4SemanticError(f"header type {self.name!r} has no field {name!r}")


@dataclass
class HeaderInstance:
    """A named instance of a header type (or metadata when ``is_metadata``)."""

    name: str
    header_type: str
    is_metadata: bool = False


@dataclass
class PrimitiveCall:
    """One primitive operation inside an action body.

    ``args`` are strings: fully qualified field references
    (``header.field``), action-parameter names, integer literals or register
    names, interpreted per operation by the dRMT simulator.
    """

    op: str
    args: List[str]

    def __post_init__(self) -> None:
        if self.op not in PRIMITIVE_OPS:
            raise P4SemanticError(
                f"unsupported primitive {self.op!r}; supported: {', '.join(PRIMITIVE_OPS)}"
            )


@dataclass
class Action:
    """A P4 action: a parameter list and a body of primitive calls."""

    name: str
    params: List[str]
    body: List[PrimitiveCall]

    def fields_written(self) -> List[str]:
        """Fully qualified fields this action may modify."""
        written: List[str] = []
        for call in self.body:
            if call.op in ("modify_field", "add_to_field", "subtract_from_field", "register_read"):
                if call.args:
                    written.append(call.args[0])
        return written

    def fields_read(self) -> List[str]:
        """Fully qualified fields this action may read."""
        read: List[str] = []
        for call in self.body:
            if call.op in ("modify_field", "add_to_field", "subtract_from_field"):
                for arg in call.args[1:]:
                    if "." in arg:
                        read.append(arg)
            elif call.op == "register_write":
                for arg in call.args[1:]:
                    if "." in arg:
                        read.append(arg)
        return read

    def registers_used(self) -> List[str]:
        """Registers read or written by this action."""
        registers: List[str] = []
        for call in self.body:
            if call.op == "register_read" and len(call.args) >= 2:
                registers.append(call.args[1])
            elif call.op == "register_write" and call.args:
                registers.append(call.args[0])
        return registers


@dataclass
class TableRead:
    """One entry of a table's ``reads`` clause."""

    field: str
    match_kind: str

    def __post_init__(self) -> None:
        if self.match_kind not in MATCH_KINDS:
            raise P4SemanticError(
                f"unsupported match kind {self.match_kind!r}; supported: {', '.join(MATCH_KINDS)}"
            )


@dataclass
class Table:
    """A match+action table."""

    name: str
    reads: List[TableRead]
    actions: List[str]
    size: int = 1024
    default_action: Optional[str] = None

    def match_fields(self) -> List[str]:
        """Fully qualified fields this table matches on."""
        return [read.field for read in self.reads]

    @property
    def is_exact(self) -> bool:
        """True when every read uses the exact match kind.

        The single source of truth for "dict-specialisable": the fused dRMT
        generator and :meth:`MatchActionTable.exact_index` both key on it.
        """
        return all(read.match_kind == "exact" for read in self.reads)


@dataclass
class Register:
    """A stateful register array."""

    name: str
    width: int = 32
    instance_count: int = 1024


@dataclass
class ControlApply:
    """One step of the ingress control flow: apply ``table`` (optionally guarded).

    The optional ``condition`` is a fully qualified field name compared
    against a constant (``field == value``); this captures the conditional
    application P4-14 expresses with ``if (...) { apply(t); }`` without
    modelling full expressions.
    """

    table: str
    condition_field: Optional[str] = None
    condition_value: Optional[int] = None


@dataclass
class P4Program:
    """A complete P4-14-like program."""

    name: str
    header_types: Dict[str, HeaderType] = field(default_factory=dict)
    headers: Dict[str, HeaderInstance] = field(default_factory=dict)
    actions: Dict[str, Action] = field(default_factory=dict)
    tables: Dict[str, Table] = field(default_factory=dict)
    registers: Dict[str, Register] = field(default_factory=dict)
    control_flow: List[ControlApply] = field(default_factory=list)
    source: str = ""

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def all_fields(self) -> List[str]:
        """Every fully qualified field (``instance.field``) declared by the program."""
        fields: List[str] = []
        for instance in self.headers.values():
            header_type = self.header_types.get(instance.header_type)
            if header_type is None:
                raise P4SemanticError(
                    f"header {instance.name!r} uses undeclared header type {instance.header_type!r}"
                )
            fields.extend(f"{instance.name}.{name}" for name in header_type.field_names())
        return fields

    def field_width(self, qualified: str) -> int:
        """Bit width of a fully qualified field."""
        if "." not in qualified:
            raise P4SemanticError(f"field reference {qualified!r} must be 'instance.field'")
        instance_name, field_name = qualified.split(".", 1)
        instance = self.headers.get(instance_name)
        if instance is None:
            raise P4SemanticError(f"unknown header instance {instance_name!r}")
        return self.header_types[instance.header_type].field_width(field_name)

    def table_order(self) -> List[str]:
        """Names of the tables in control-flow application order."""
        return [apply.table for apply in self.control_flow]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check cross-references: tables, actions, fields and registers must exist."""
        known_fields = set(self.all_fields())
        for table in self.tables.values():
            for read in table.reads:
                if read.field not in known_fields:
                    raise P4SemanticError(
                        f"table {table.name!r} matches on unknown field {read.field!r}"
                    )
            for action_name in table.actions:
                if action_name not in self.actions:
                    raise P4SemanticError(
                        f"table {table.name!r} references unknown action {action_name!r}"
                    )
        for action in self.actions.values():
            for call in action.body:
                for arg in call.args:
                    if "." in arg and not arg.replace(".", "").isdigit():
                        if arg not in known_fields:
                            raise P4SemanticError(
                                f"action {action.name!r} references unknown field {arg!r}"
                            )
            for register_name in action.registers_used():
                if register_name not in self.registers:
                    raise P4SemanticError(
                        f"action {action.name!r} references unknown register {register_name!r}"
                    )
        for apply in self.control_flow:
            if apply.table not in self.tables:
                raise P4SemanticError(
                    f"control flow applies unknown table {apply.table!r}"
                )
            if apply.condition_field is not None and apply.condition_field not in known_fields:
                raise P4SemanticError(
                    f"control-flow condition references unknown field {apply.condition_field!r}"
                )
