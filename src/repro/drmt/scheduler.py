"""dRMT scheduling (paper §4.1).

"This DAG along with other parameterized data ... is then sent to the dRMT
scheduler which determines the order and timing that each match and action
needs to be performed at for optimal speeds and to prevent resource
contention.  ...  The scheduling problem is NP-hard and is formulated as an
Integer Linear Program."

The reproduction provides two back ends:

* a **greedy list scheduler** (always available) that walks the operations in
  dependency order and books each one into the earliest cycle that satisfies
  both its dependencies and the per-cycle match/action issue limits;
* an optional **MILP formulation** solved with :func:`scipy.optimize.milp`
  (time-indexed binary variables) that minimises the makespan; it is used
  when scipy is importable and the instance is small enough, and falls back
  to the greedy schedule otherwise.

Both honour the same constraint set, and the tests assert that every emitted
schedule respects dependencies and issue limits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..errors import SchedulingError
from ..p4.dependency import ACTION_DEPENDENCY, MATCH_DEPENDENCY
from ..p4.program import P4Program
from .resources import DrmtHardwareParams

#: Operation kinds scheduled per table.
MATCH_OP = "match"
ACTION_OP = "action"

Operation = Tuple[str, str]  # (table name, MATCH_OP | ACTION_OP)


@dataclass
class Schedule:
    """A feasible dRMT schedule.

    ``start_times`` maps ``(table, op_kind)`` to the cycle (relative to the
    packet's arrival at its processor) at which the operation is launched.
    """

    start_times: Dict[Operation, int]
    hardware: DrmtHardwareParams
    makespan: int
    backend: str = "greedy"

    def start(self, table: str, op_kind: str) -> int:
        """Launch cycle of one operation."""
        return self.start_times[(table, op_kind)]

    def end(self, table: str, op_kind: str) -> int:
        """Completion cycle (exclusive) of one operation."""
        duration = (
            self.hardware.ticks_per_match if op_kind == MATCH_OP else self.hardware.ticks_per_action
        )
        return self.start(table, op_kind) + duration

    def operations_at(self, cycle: int) -> List[Operation]:
        """Operations launched at ``cycle``."""
        return [op for op, start in self.start_times.items() if start == cycle]

    def describe(self) -> str:
        """Cycle-by-cycle rendering of the schedule (CLI / example output)."""
        lines = [f"dRMT schedule ({self.backend}), makespan {self.makespan} cycles:"]
        for cycle in range(self.makespan):
            launched = self.operations_at(cycle)
            if launched:
                rendered = ", ".join(f"{table}.{kind}" for table, kind in sorted(launched))
                lines.append(f"  cycle {cycle:3d}: {rendered}")
        return "\n".join(lines)


def _operation_graph(
    program: P4Program, dependency_graph: nx.DiGraph, hardware: DrmtHardwareParams
) -> nx.DiGraph:
    """Expand the table DAG into an operation DAG with latency-weighted edges.

    Edge weight = minimum separation between the *start* of the source
    operation and the *start* of the destination operation.
    """
    graph = nx.DiGraph()
    for table in program.table_order():
        graph.add_node((table, MATCH_OP))
        graph.add_node((table, ACTION_OP))
        # A table's action follows its own match.
        graph.add_edge((table, MATCH_OP), (table, ACTION_OP), weight=hardware.ticks_per_match)
    for before, after, data in dependency_graph.edges(data=True):
        kind = data.get("kind")
        if kind == MATCH_DEPENDENCY:
            # The later table's match must wait for the earlier table's action.
            graph.add_edge(
                (before, ACTION_OP), (after, MATCH_OP), weight=hardware.ticks_per_action
            )
        elif kind == ACTION_DEPENDENCY:
            # Matches may overlap, but the later action waits for the earlier one.
            graph.add_edge(
                (before, ACTION_OP), (after, ACTION_OP), weight=hardware.ticks_per_action
            )
    if not nx.is_directed_acyclic_graph(graph):  # pragma: no cover - defensive
        raise SchedulingError("operation dependencies form a cycle")
    return graph


def _duration(op: Operation, hardware: DrmtHardwareParams) -> int:
    return hardware.ticks_per_match if op[1] == MATCH_OP else hardware.ticks_per_action


def _issue_limit(op: Operation, hardware: DrmtHardwareParams) -> int:
    return hardware.matches_per_cycle if op[1] == MATCH_OP else hardware.actions_per_cycle


class GreedyScheduler:
    """Resource-constrained list scheduler."""

    def __init__(self, program: P4Program, dependency_graph: nx.DiGraph, hardware: DrmtHardwareParams):
        self.program = program
        self.dependency_graph = dependency_graph
        self.hardware = hardware

    def schedule(self) -> Schedule:
        """Produce a feasible schedule by earliest-fit list scheduling."""
        op_graph = _operation_graph(self.program, self.dependency_graph, self.hardware)
        hardware = self.hardware
        start_times: Dict[Operation, int] = {}
        issued: Dict[Tuple[int, str], int] = {}  # (cycle, op kind) -> operations launched

        for op in nx.topological_sort(op_graph):
            ready = 0
            for predecessor in op_graph.predecessors(op):
                separation = op_graph.edges[predecessor, op]["weight"]
                ready = max(ready, start_times[predecessor] + separation)
            cycle = ready
            limit = _issue_limit(op, hardware)
            while issued.get((cycle, op[1]), 0) >= limit:
                cycle += 1
            start_times[op] = cycle
            issued[(cycle, op[1])] = issued.get((cycle, op[1]), 0) + 1

        makespan = max(
            (start + _duration(op, hardware) for op, start in start_times.items()), default=0
        )
        return Schedule(start_times=start_times, hardware=hardware, makespan=makespan, backend="greedy")


class MilpScheduler:
    """Time-indexed MILP formulation solved with ``scipy.optimize.milp``.

    Decision variables x[op, t] ∈ {0, 1} select the launch cycle of each
    operation within a horizon derived from the greedy schedule; constraints
    enforce one launch per operation, dependency separations and per-cycle
    issue limits; the objective minimises the weighted sum of launch times
    (which minimises the makespan for these precedence structures).
    """

    #: Do not attempt MILP beyond this many binary variables.
    MAX_VARIABLES = 4000

    def __init__(self, program: P4Program, dependency_graph: nx.DiGraph, hardware: DrmtHardwareParams):
        self.program = program
        self.dependency_graph = dependency_graph
        self.hardware = hardware

    def schedule(self) -> Optional[Schedule]:
        """Return an optimised schedule, or ``None`` when MILP is unavailable/oversized."""
        try:
            import numpy as np
            from scipy.optimize import LinearConstraint, milp, Bounds
        except ImportError:  # pragma: no cover - scipy is normally installed
            return None

        greedy = GreedyScheduler(self.program, self.dependency_graph, self.hardware).schedule()
        horizon = greedy.makespan
        op_graph = _operation_graph(self.program, self.dependency_graph, self.hardware)
        operations = list(nx.topological_sort(op_graph))
        if not operations or len(operations) * horizon > self.MAX_VARIABLES:
            return None

        index = {(op, t): i for i, (op, t) in enumerate(
            ((op, t) for op in operations for t in range(horizon))
        )}
        num_vars = len(index)
        constraints = []

        # Each operation launches exactly once.
        for op in operations:
            row = np.zeros(num_vars)
            for t in range(horizon):
                row[index[(op, t)]] = 1.0
            constraints.append(LinearConstraint(row, 1, 1))

        # Dependency separation: start(after) - start(before) >= weight.
        for before, after, data in op_graph.edges(data=True):
            row = np.zeros(num_vars)
            for t in range(horizon):
                row[index[(after, t)]] += t
                row[index[(before, t)]] -= t
            constraints.append(LinearConstraint(row, data["weight"], np.inf))

        # Per-cycle issue limits per operation kind.
        for t in range(horizon):
            for op_kind, limit in ((MATCH_OP, self.hardware.matches_per_cycle),
                                   (ACTION_OP, self.hardware.actions_per_cycle)):
                row = np.zeros(num_vars)
                for op in operations:
                    if op[1] == op_kind:
                        row[index[(op, t)]] = 1.0
                constraints.append(LinearConstraint(row, 0, limit))

        # Objective: minimise the sum of launch times (ties broken towards
        # earlier launches; keeps the makespan at or below the greedy one).
        objective = np.zeros(num_vars)
        for op in operations:
            for t in range(horizon):
                objective[index[(op, t)]] += t

        result = milp(
            c=objective,
            constraints=constraints,
            integrality=np.ones(num_vars),
            bounds=Bounds(0, 1),
        )
        if not result.success or result.x is None:
            return None

        start_times: Dict[Operation, int] = {}
        for op in operations:
            for t in range(horizon):
                if result.x[index[(op, t)]] > 0.5:
                    start_times[op] = t
                    break
        makespan = max(
            start + _duration(op, self.hardware) for op, start in start_times.items()
        )
        return Schedule(
            start_times=start_times, hardware=self.hardware, makespan=makespan, backend="milp"
        )


def schedule_program(
    program: P4Program,
    dependency_graph: nx.DiGraph,
    hardware: DrmtHardwareParams,
    use_milp: bool = False,
) -> Schedule:
    """Schedule ``program`` on dRMT hardware.

    The greedy list scheduler is always used; when ``use_milp`` is set and
    the MILP back end is available and succeeds, its (no-worse) schedule is
    returned instead.
    """
    greedy = GreedyScheduler(program, dependency_graph, hardware).schedule()
    if use_milp:
        optimised = MilpScheduler(program, dependency_graph, hardware).schedule()
        if optimised is not None and optimised.makespan <= greedy.makespan:
            return optimised
    return greedy


def validate_schedule(
    schedule: Schedule, program: P4Program, dependency_graph: nx.DiGraph
) -> List[str]:
    """Return a list of constraint violations (empty when the schedule is feasible)."""
    violations: List[str] = []
    hardware = schedule.hardware
    op_graph = _operation_graph(program, dependency_graph, hardware)
    for before, after, data in op_graph.edges(data=True):
        if schedule.start_times[after] - schedule.start_times[before] < data["weight"]:
            violations.append(f"{after} starts before {before} completes")
    per_cycle: Dict[Tuple[int, str], int] = {}
    for (table, op_kind), start in schedule.start_times.items():
        per_cycle[(start, op_kind)] = per_cycle.get((start, op_kind), 0) + 1
    for (cycle, op_kind), count in per_cycle.items():
        limit = hardware.matches_per_cycle if op_kind == MATCH_OP else hardware.actions_per_cycle
        if count > limit:
            violations.append(f"{count} {op_kind} operations launched at cycle {cycle} (limit {limit})")
    return violations
