"""dRMT: disaggregated match+action simulation (paper §4).

dgen converts a P4-14-like program into a table-dependency DAG, schedules its
match and action operations under dRMT hardware constraints, and dsim
executes the schedule on a set of match+action processors fed round-robin by
a traffic generator, using centralised tables populated from a table-entry
configuration file.
"""

from .codegen import DrmtProgramBundle, StaticAnalysis, analyze_program, generate_bundle
from .fused import DrmtFusedProgram, generate_fused, run_to_completion_hazard
from .processor import MatchActionProcessor, PacketContext, RegisterFile
from .resources import DEFAULT_HARDWARE, DrmtHardwareParams
from .scheduler import (
    ACTION_OP,
    MATCH_OP,
    GreedyScheduler,
    MilpScheduler,
    Schedule,
    schedule_program,
    validate_schedule,
)
from .simulator import DRMTSimulator, DrmtPacketRecord, DrmtSimulationResult
from .table_config import load_entries, parse_entries, parse_entry_line, populate_store
from .tables import MatchActionTable, MatchPattern, TableEntry, TableStore
from .traffic import PacketGenerator, values_field

__all__ = [
    "DrmtHardwareParams",
    "DEFAULT_HARDWARE",
    "generate_bundle",
    "DrmtProgramBundle",
    "DrmtFusedProgram",
    "generate_fused",
    "run_to_completion_hazard",
    "StaticAnalysis",
    "analyze_program",
    "Schedule",
    "GreedyScheduler",
    "MilpScheduler",
    "schedule_program",
    "validate_schedule",
    "MATCH_OP",
    "ACTION_OP",
    "DRMTSimulator",
    "DrmtSimulationResult",
    "DrmtPacketRecord",
    "MatchActionProcessor",
    "PacketContext",
    "RegisterFile",
    "TableStore",
    "MatchActionTable",
    "TableEntry",
    "MatchPattern",
    "parse_entries",
    "parse_entry_line",
    "load_entries",
    "populate_store",
    "PacketGenerator",
    "values_field",
]
