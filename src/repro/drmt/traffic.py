"""dRMT traffic generation — compatibility shim.

The packet generator now lives in :mod:`repro.traffic`, the single module
serving both execution engines (the RMT PHV generator included); this module
re-exports the dRMT-facing names so existing imports keep working.
"""

from __future__ import annotations

from ..traffic import (
    MAX_RANDOM_BITS,
    FieldGenerator,
    PacketGenerator,
    choice_field,
    constant_field,
    uniform_field,
    values_field,
)

__all__ = [
    "MAX_RANDOM_BITS",
    "FieldGenerator",
    "PacketGenerator",
    "values_field",
    "choice_field",
    "constant_field",
    "uniform_field",
]
