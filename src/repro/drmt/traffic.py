"""dRMT traffic generation (paper §4.2).

"The dRMT dsim traffic generator generates packets with randomly initialized
packet field values based on the fields specified in the P4 file instead of
PHVs."  Each packet is a dictionary from fully qualified field name to an
unsigned integer bounded by the field's declared width (capped so Python-side
values stay manageable).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import SimulationError
from ..p4.program import P4Program

#: Field widths above this many bits are capped when drawing random values.
MAX_RANDOM_BITS = 16


@dataclass
class PacketGenerator:
    """Deterministic random packet generator driven by a P4 program's fields.

    ``field_overrides`` maps a fully qualified field name to a callable
    ``rng -> value`` so workloads can constrain specific fields (e.g. a small
    set of destination addresses that actually hit installed table entries).
    """

    program: P4Program
    seed: int = 0
    field_overrides: Dict[str, Callable[[random.Random], int]] = field(default_factory=dict)
    metadata_default: int = 0

    def generate(self, count: int) -> List[Dict[str, int]]:
        """Generate ``count`` packets."""
        if count < 0:
            raise SimulationError("count must be non-negative")
        rng = random.Random(self.seed)
        fields = self.program.all_fields()
        packets: List[Dict[str, int]] = []
        for _ in range(count):
            packet: Dict[str, int] = {}
            for qualified in fields:
                override = self.field_overrides.get(qualified)
                if override is not None:
                    packet[qualified] = int(override(rng))
                    continue
                instance_name = qualified.split(".", 1)[0]
                instance = self.program.headers[instance_name]
                if instance.is_metadata:
                    # Metadata starts at a fixed default (typically 0), like a
                    # freshly initialised PHV's metadata containers.
                    packet[qualified] = self.metadata_default
                    continue
                width = min(self.program.field_width(qualified), MAX_RANDOM_BITS)
                packet[qualified] = rng.randint(0, (1 << width) - 1)
            packets.append(packet)
        return packets


def values_field(values: List[int]) -> Callable[[random.Random], int]:
    """Field override drawing uniformly from an explicit value set."""
    if not values:
        raise SimulationError("values_field needs at least one value")
    pool = [int(v) for v in values]
    return lambda rng: rng.choice(pool)
