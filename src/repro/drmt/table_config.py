"""Table-entry configuration format (paper §4.2).

"dsim ... takes in ... a table entries file in our own configuration format
that specifies the table entries that will be added to the match+action
tables.  The configuration format ... primarily consists of (1) the table
that the entry will be added to, (2) the packet field to be matched on,
(3) the type of match to perform (e.g. ternary, exact), and (4) the
corresponding action to be executed if there is a match."

The reproduction's textual format is one entry per line::

    add <table> <field>=<pattern> [<field>=<pattern> ...] => <action>(<arg>, <arg>, ...)

with patterns written as

* ``42`` — exact match;
* ``42&&&0xff`` — ternary match (value ``&&&`` mask);
* ``42/24`` — longest-prefix match (value ``/`` prefix length).

``#`` and ``//`` comments and blank lines are ignored.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from ..errors import TableConfigError
from ..p4.program import P4Program
from .tables import MatchPattern, TableEntry, TableStore

PathLike = Union[str, Path]

_LINE_RE = re.compile(
    r"^add\s+(?P<table>\w+)\s+(?P<matches>.*?)\s*=>\s*(?P<action>\w+)\s*\((?P<args>[^)]*)\)\s*$"
)
_MATCH_RE = re.compile(r"(?P<field>[\w.]+)\s*=\s*(?P<pattern>[^\s]+)")


def _parse_int(text: str) -> int:
    text = text.strip()
    try:
        return int(text, 0)
    except ValueError:
        raise TableConfigError(f"{text!r} is not an integer") from None


def parse_pattern(text: str, kind: str, width: int) -> MatchPattern:
    """Parse one field's pattern according to the table's declared match kind."""
    if kind == "exact":
        return MatchPattern(kind="exact", value=_parse_int(text), width=width)
    if kind == "ternary":
        if "&&&" in text:
            value_text, mask_text = text.split("&&&", 1)
            return MatchPattern(
                kind="ternary", value=_parse_int(value_text), mask=_parse_int(mask_text), width=width
            )
        return MatchPattern(kind="ternary", value=_parse_int(text), mask=(1 << width) - 1, width=width)
    if kind == "lpm":
        if "/" in text:
            value_text, prefix_text = text.split("/", 1)
            return MatchPattern(
                kind="lpm", value=_parse_int(value_text), prefix_len=_parse_int(prefix_text), width=width
            )
        return MatchPattern(kind="lpm", value=_parse_int(text), prefix_len=width, width=width)
    raise TableConfigError(f"unsupported match kind {kind!r}")


def parse_entry_line(line: str, program: P4Program, line_number: int = 0) -> Tuple[str, TableEntry]:
    """Parse one ``add`` line into ``(table name, entry)``."""
    match = _LINE_RE.match(line.strip())
    if match is None:
        raise TableConfigError(f"line {line_number}: cannot parse table entry {line!r}")
    table_name = match.group("table")
    table = program.tables.get(table_name)
    if table is None:
        raise TableConfigError(f"line {line_number}: unknown table {table_name!r}")

    declared_kinds: Dict[str, str] = {read.field: read.match_kind for read in table.reads}
    patterns: Dict[str, MatchPattern] = {}
    for field_match in _MATCH_RE.finditer(match.group("matches")):
        field_name = field_match.group("field")
        if field_name not in declared_kinds:
            raise TableConfigError(
                f"line {line_number}: table {table_name!r} does not match on {field_name!r}"
            )
        width = program.field_width(field_name)
        patterns[field_name] = parse_pattern(
            field_match.group("pattern"), declared_kinds[field_name], width
        )

    args_text = match.group("args").strip()
    action_args = [_parse_int(arg) for arg in args_text.split(",")] if args_text else []
    entry = TableEntry(patterns=patterns, action=match.group("action"), action_args=action_args)
    return table_name, entry


def parse_entries(text: str, program: P4Program) -> List[Tuple[str, TableEntry]]:
    """Parse a whole configuration document."""
    entries: List[Tuple[str, TableEntry]] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0]
        line = line.split("//", 1)[0].strip()
        if not line:
            continue
        entries.append(parse_entry_line(line, program, line_number))
    return entries


def load_entries(path: PathLike, program: P4Program) -> List[Tuple[str, TableEntry]]:
    """Parse a configuration file from disk."""
    return parse_entries(Path(path).read_text(), program)


def populate_store(store: TableStore, entries: Sequence[Tuple[str, TableEntry]]) -> TableStore:
    """Add parsed entries to a table store (returns the store for chaining)."""
    for table_name, entry in entries:
        store.add_entry(table_name, entry)
    return store
