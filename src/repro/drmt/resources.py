"""dRMT hardware parameters.

The dRMT scheduler (paper §4.1) is driven by "other parameterized data (e.g.
number of cycles per match)" and "additional information about the hardware
constraints ... such as the number of ticks per action unit and the number of
ticks per match".  This module captures those knobs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchedulingError


@dataclass(frozen=True)
class DrmtHardwareParams:
    """Hardware constraints handed to the dRMT scheduler.

    Attributes
    ----------
    num_processors:
        Match+action processors sharing the centralised table memory.
    ticks_per_match:
        Latency of a match operation (ΔM in the dRMT paper).
    ticks_per_action:
        Latency of an action operation (ΔA).
    matches_per_cycle:
        Match operations a single processor may *launch* per cycle.
    actions_per_cycle:
        Action operations a single processor may *launch* per cycle.
    """

    num_processors: int = 2
    ticks_per_match: int = 2
    ticks_per_action: int = 1
    matches_per_cycle: int = 1
    actions_per_cycle: int = 1

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise SchedulingError("num_processors must be >= 1")
        if self.ticks_per_match < 1 or self.ticks_per_action < 1:
            raise SchedulingError("per-operation latencies must be >= 1 tick")
        if self.matches_per_cycle < 1 or self.actions_per_cycle < 1:
            raise SchedulingError("per-cycle issue limits must be >= 1")


#: Defaults used by examples and benchmarks.
DEFAULT_HARDWARE = DrmtHardwareParams()
