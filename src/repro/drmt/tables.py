"""Match+action tables for dRMT simulation (paper §4.2).

dRMT "accesses centralized match+action tables using shared memory through a
crossbar"; this module models those tables: typed entries (exact, ternary and
longest-prefix matches), lookup against a packet's field values, and the
shared table store that every processor consults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import TableConfigError
from ..p4.program import P4Program, Table


@dataclass(frozen=True)
class MatchPattern:
    """One field's match pattern inside a table entry.

    * exact: ``value`` must equal the packet field;
    * ternary: ``(packet & mask) == (value & mask)``;
    * lpm: the top ``prefix_len`` bits of a ``width``-bit field must match.
    """

    kind: str
    value: int
    mask: Optional[int] = None
    prefix_len: Optional[int] = None
    width: int = 32

    def matches(self, field_value: int) -> bool:
        """True when ``field_value`` satisfies this pattern."""
        if self.kind == "exact":
            return field_value == self.value
        if self.kind == "ternary":
            mask = self.mask if self.mask is not None else (1 << self.width) - 1
            return (field_value & mask) == (self.value & mask)
        if self.kind == "lpm":
            prefix = self.prefix_len if self.prefix_len is not None else self.width
            if prefix == 0:
                return True
            shift = max(self.width - prefix, 0)
            return (field_value >> shift) == (self.value >> shift)
        raise TableConfigError(f"unknown match kind {self.kind!r}")

    @property
    def specificity(self) -> int:
        """Used to order LPM entries: longer prefixes win."""
        if self.kind == "lpm":
            return self.prefix_len if self.prefix_len is not None else self.width
        if self.kind == "exact":
            return self.width
        mask = self.mask if self.mask is not None else (1 << self.width) - 1
        return bin(mask).count("1")


@dataclass
class TableEntry:
    """One row of a match+action table."""

    patterns: Dict[str, MatchPattern]
    action: str
    action_args: List[int] = field(default_factory=list)
    priority: int = 0

    def matches(self, fields: Mapping[str, int]) -> bool:
        """True when every pattern matches the packet's field values."""
        for field_name, pattern in self.patterns.items():
            if not pattern.matches(int(fields.get(field_name, 0))):
                return False
        return True

    @property
    def specificity(self) -> int:
        """Combined specificity used to break ties between matching entries."""
        return sum(pattern.specificity for pattern in self.patterns.values())


class MatchActionTable:
    """A populated match+action table."""

    def __init__(self, definition: Table, program: P4Program):
        self.definition = definition
        self.program = program
        self.entries: List[TableEntry] = []
        self.hit_count = 0
        self.miss_count = 0

    @property
    def name(self) -> str:
        """Table name."""
        return self.definition.name

    def add_entry(self, entry: TableEntry) -> None:
        """Append an entry (validated against the table's reads and actions)."""
        expected_fields = set(self.definition.match_fields())
        if set(entry.patterns) != expected_fields:
            raise TableConfigError(
                f"table {self.name!r} matches on {sorted(expected_fields)}, entry supplies "
                f"{sorted(entry.patterns)}"
            )
        if entry.action not in self.definition.actions:
            raise TableConfigError(
                f"table {self.name!r} cannot invoke action {entry.action!r}; allowed: "
                f"{self.definition.actions}"
            )
        if len(self.entries) >= self.definition.size:
            raise TableConfigError(f"table {self.name!r} is full (size {self.definition.size})")
        self.entries.append(entry)

    def lookup(self, fields: Mapping[str, int]) -> Optional[TableEntry]:
        """Find the best matching entry (highest priority, then most specific)."""
        candidates = [entry for entry in self.entries if entry.matches(fields)]
        if not candidates:
            self.miss_count += 1
            return None
        self.hit_count += 1
        return max(candidates, key=lambda entry: (entry.priority, entry.specificity))

    @property
    def is_exact(self) -> bool:
        """True when every ``reads`` clause entry uses the exact match kind.

        Such a table's linear scan can be specialised into one dict probe;
        the fused dRMT code generator keys on the same definition property.
        """
        return self.definition.is_exact

    def exact_index(self) -> Dict[Tuple[int, ...], TableEntry]:
        """The dict-lookup specialisation of an all-exact table.

        Maps the tuple of pattern values (in ``match_fields`` order) to the
        entry :meth:`lookup` would return for a packet carrying exactly those
        values: when several entries share one key, the winner is the highest
        ``(priority, specificity)`` pair, earliest added on ties — the same
        tie-break ``max`` applies over the scan's candidate list.  Rebuild
        after adding entries; the generated fused loop builds it once per
        ``run_trace`` call.
        """
        if not self.is_exact:
            raise TableConfigError(
                f"table {self.name!r} mixes match kinds; only all-exact tables "
                "can be specialised into a dict index"
            )
        field_order = self.definition.match_fields()
        index: Dict[Tuple[int, ...], TableEntry] = {}
        for entry in self.entries:
            key = tuple(entry.patterns[name].value for name in field_order)
            best = index.get(key)
            if best is None or (entry.priority, entry.specificity) > (
                best.priority,
                best.specificity,
            ):
                index[key] = entry
        return index


class TableStore:
    """The centralised table memory shared by every dRMT processor."""

    def __init__(self, program: P4Program):
        self.program = program
        self.tables: Dict[str, MatchActionTable] = {
            name: MatchActionTable(definition, program) for name, definition in program.tables.items()
        }

    def __getitem__(self, name: str) -> MatchActionTable:
        try:
            return self.tables[name]
        except KeyError:
            raise TableConfigError(f"unknown table {name!r}") from None

    def add_entry(self, table_name: str, entry: TableEntry) -> None:
        """Add one entry to one table."""
        self[table_name].add_entry(entry)

    def total_entries(self) -> int:
        """Number of entries across every table."""
        return sum(len(table.entries) for table in self.tables.values())

    def hit_statistics(self) -> Dict[str, Tuple[int, int]]:
        """Per-table (hits, misses) counters accumulated during simulation."""
        return {name: (table.hit_count, table.miss_count) for name, table in self.tables.items()}
