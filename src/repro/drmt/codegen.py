"""dRMT dgen: preprocessing a P4 program for simulation (paper §4.1).

"dgen takes as input a P4 file ... converts the given P4 file into a DAG
representing the match+action table dependencies.  This DAG along with other
parameterized data is then sent to the dRMT scheduler ...  Static analysis
is performed both on the scheduler output and the initial P4 file to extract
data about the program such as header-types, packet fields, actions, matches,
other relevant data and all of it is packaged into a Rust file to be used by
dsim."

The reproduction packages the same information into a
:class:`DrmtProgramBundle` (a Python object rather than a generated Rust
file): the parsed program, the dependency DAG, the schedule and the static
analysis summary the simulator needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Union

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .fused import DrmtFusedProgram

from ..p4.dependency import build_dependency_graph, critical_path, dependency_summary
from ..p4.parser import parse as parse_p4
from ..p4.program import P4Program
from .resources import DEFAULT_HARDWARE, DrmtHardwareParams
from .scheduler import Schedule, schedule_program


@dataclass
class StaticAnalysis:
    """Static facts about the program extracted by dgen for dsim."""

    header_types: List[str]
    packet_fields: List[str]
    metadata_fields: List[str]
    actions: List[str]
    tables: List[str]
    registers: List[str]
    match_fields_per_table: Dict[str, List[str]] = field(default_factory=dict)
    dependency_counts: Dict[str, int] = field(default_factory=dict)
    critical_path: List[str] = field(default_factory=list)


@dataclass
class DrmtProgramBundle:
    """Everything dRMT dsim needs to simulate one program."""

    program: P4Program
    dependency_graph: nx.DiGraph
    schedule: Schedule
    hardware: DrmtHardwareParams
    analysis: StaticAnalysis
    _fused: Optional["DrmtFusedProgram"] = field(default=None, repr=False, compare=False)

    def fused_program(self) -> "DrmtFusedProgram":
        """The generated fused program for this bundle (built once, cached).

        dRMT's analogue of the RMT opt-level-3 description: a generated
        ``run_trace`` loop with every scheduled match/action operation
        inlined, bit-for-bit faithful to the tick interpreter (see
        :mod:`repro.drmt.fused`).
        """
        if self._fused is None:
            from .fused import generate_fused

            self._fused = generate_fused(
                self.program, self.schedule, self.hardware.num_processors
            )
        return self._fused

    def describe(self) -> str:
        """Human-readable bundle summary (CLI output)."""
        lines = [
            f"dRMT program bundle for {self.program.name!r}",
            f"  tables:        {', '.join(self.analysis.tables) or '(none)'}",
            f"  actions:       {', '.join(self.analysis.actions) or '(none)'}",
            f"  registers:     {', '.join(self.analysis.registers) or '(none)'}",
            f"  packet fields: {len(self.analysis.packet_fields)}",
            f"  dependencies:  {self.analysis.dependency_counts}",
            f"  critical path: {' -> '.join(self.analysis.critical_path) or '(empty)'}",
            f"  schedule:      {self.schedule.makespan} cycles ({self.schedule.backend})",
        ]
        return "\n".join(lines)


def analyze_program(program: P4Program, graph: nx.DiGraph) -> StaticAnalysis:
    """Extract the static analysis summary from a program and its dependency DAG."""
    packet_fields: List[str] = []
    metadata_fields: List[str] = []
    for qualified in program.all_fields():
        instance = program.headers[qualified.split(".", 1)[0]]
        if instance.is_metadata:
            metadata_fields.append(qualified)
        else:
            packet_fields.append(qualified)
    return StaticAnalysis(
        header_types=sorted(program.header_types),
        packet_fields=packet_fields,
        metadata_fields=metadata_fields,
        actions=sorted(program.actions),
        tables=program.table_order(),
        registers=sorted(program.registers),
        match_fields_per_table={
            name: table.match_fields() for name, table in program.tables.items()
        },
        dependency_counts=dependency_summary(graph),
        critical_path=critical_path(graph),
    )


def generate_bundle(
    program: Union[str, P4Program],
    hardware: DrmtHardwareParams = DEFAULT_HARDWARE,
    use_milp: bool = False,
    name: str = "p4_program",
) -> DrmtProgramBundle:
    """dRMT dgen: parse (if needed), build the DAG, schedule, and package."""
    if isinstance(program, str):
        program = parse_p4(program, name=name)
    graph = build_dependency_graph(program)
    schedule = schedule_program(program, graph, hardware, use_milp=use_milp)
    analysis = analyze_program(program, graph)
    return DrmtProgramBundle(
        program=program,
        dependency_graph=graph,
        schedule=schedule,
        hardware=hardware,
        analysis=analysis,
    )
