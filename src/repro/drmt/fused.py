"""dRMT fused code generation: the run-to-completion analogue of opt level 3.

RMT descriptions generated at opt level 3 carry a ``run_trace`` loop with
every stage inlined; this module gives a dRMT program bundle the same
treatment.  The generated module contains a ``run_trace(packets, tables,
registers)`` function with every scheduled match and action operation
inlined — action bodies specialised per action (argument resolution, field
arithmetic, register indexing with the instance count baked in) in schedule
order — so the per-tick interpreter machinery (operation scans, packet
contexts, argument re-parsing) disappears from the hot path.

Bit-for-bit fidelity to the tick interpreter is preserved *exactly*, not
just for well-behaved programs: the generated loop replays the interpreter's
global execution order.  In the tick model, packet ``p`` (injected at tick
``p``, processor ``p % N``) executes the operations scheduled at relative
cycle ``c`` at global tick ``p + c``, and within one tick the processors
run in id order with each processor's packets in arrival order.  For a fixed
schedule that order depends only on ``t % N``, so dgen precomputes one
cycle visit order per residue (``VISIT_ORDERS``) and the generated loop
walks ticks executing the inlined per-cycle segments in precisely the
interpreter's interleaving — shared registers observe the identical sequence
of reads and writes.

Tables whose every read uses the exact match kind are *dict-specialised*:
instead of hoisting the shared :meth:`MatchActionTable.lookup` (a linear
scan over the entries), the generated prologue builds the table's
:meth:`~repro.drmt.tables.MatchActionTable.exact_index` once per trace and
each match becomes a single dict probe, with hit/miss counts accumulated in
locals and folded back into the table's counters on exit — so the inner
loop is no longer scan-bound while the observable statistics stay identical
to the interpreter's.  Ternary and LPM tables keep the scan.

A second entry point, ``run_trace_observed``, additionally calls
``observer(packet_id, processor, tick, fields)`` after every (packet,
cycle-segment) execution: the per-processor snapshot hook that lets
debugging tools watch what the production fast path computes.

:func:`run_to_completion_hazard` is the static analysis used by the
*generic* (non-generated) run-to-completion driver in
:mod:`repro.engine.drmt`: plain per-packet run-to-completion reorders
cross-packet register accesses unless every access to a given register is
launched at a single schedule cycle, and the analysis reports the registers
for which that fails.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..dgen.optimize.peephole import peephole_block
from ..errors import CodegenError
from ..ir import nodes as ir
from ..ir.printer import to_source
from ..p4.program import Action, P4Program, Table
from .scheduler import ACTION_OP, MATCH_OP, Operation, Schedule

#: Names of the generated entry points.
RUN_TRACE_FUNCTION_NAME = "run_trace"
RUN_TRACE_OBSERVED_FUNCTION_NAME = "run_trace_observed"


def _ident(name: str) -> str:
    """Sanitise a P4 name into an identifier fragment."""
    return re.sub(r"\W", "_", name)


def _ordered_operations(schedule: Schedule) -> List[Tuple[Operation, int]]:
    """Operations with start cycles, in the interpreter's per-cycle order.

    ``MatchActionProcessor`` executes the operations due at one cycle in
    ``Schedule.operations_at`` order, which is the insertion order of
    ``start_times``; a stable sort by start cycle preserves it.
    """
    return sorted(schedule.start_times.items(), key=lambda item: item[1])


def _segments(schedule: Schedule) -> Dict[int, List[Operation]]:
    """Group operations by start cycle, preserving per-cycle order."""
    segments: Dict[int, List[Operation]] = {}
    for op, start in _ordered_operations(schedule):
        segments.setdefault(start, []).append(op)
    return segments


def visit_orders(schedule: Schedule, num_processors: int) -> List[Tuple[int, ...]]:
    """Per-``tick % N`` order in which active cycles must be visited.

    At tick ``t`` the in-flight packet executing cycle ``c`` is ``p = t - c``
    on processor ``p % N``; the interpreter visits processors in id order and
    each processor's packets in arrival order, so the cycles sort by
    ``(p % N, p)`` — which, for fixed ``t``, depends only on ``t % N``.
    """
    active = sorted(_segments(schedule))
    orders: List[Tuple[int, ...]] = []
    for residue in range(num_processors):
        orders.append(
            tuple(sorted(active, key=lambda c: ((residue - c) % num_processors, -c)))
        )
    return orders


# ----------------------------------------------------------------------
# Static analysis
# ----------------------------------------------------------------------
def _table_register_cycles(program: P4Program, schedule: Schedule) -> Dict[str, Set[int]]:
    """Map each register to the set of schedule cycles that may access it."""
    touches: Dict[str, Set[int]] = {}
    for (table_name, kind), start in schedule.start_times.items():
        if kind != ACTION_OP:
            continue
        table = program.tables[table_name]
        action_names = list(table.actions)
        if table.default_action is not None:
            action_names.append(table.default_action)
        for action_name in action_names:
            action = program.actions.get(action_name)
            if action is None:
                continue
            for call in action.body:
                if call.op == "register_read":
                    touches.setdefault(call.args[1], set()).add(start)
                elif call.op == "register_write":
                    touches.setdefault(call.args[0], set()).add(start)
    return touches


def run_to_completion_hazard(program: P4Program, schedule: Schedule) -> Optional[str]:
    """Why plain run-to-completion would diverge from the tick model, if at all.

    Packet-local state (fields, matched entries) is order-insensitive; only
    the shared registers can observe the difference between the tick model's
    cross-packet interleaving and per-packet run-to-completion.  When every
    access to a register launches at one schedule cycle, the accesses hit the
    register in packet arrival order under both execution orders; otherwise a
    later packet's early-cycle access can overtake an earlier packet's
    late-cycle access in the tick model, and run-to-completion is unsafe.

    Returns a human-readable reason, or ``None`` when run-to-completion is
    bit-for-bit faithful.
    """
    for register, cycles in sorted(_table_register_cycles(program, schedule).items()):
        if len(cycles) > 1:
            return (
                f"register {register!r} is accessed by operations launched at cycles "
                f"{sorted(cycles)}; the tick model interleaves those accesses across "
                "packets, which run-to-completion order cannot reproduce"
            )
    return None


# ----------------------------------------------------------------------
# Code generation
# ----------------------------------------------------------------------
class DrmtFusedGenerator:
    """Generates the fused module for one program bundle."""

    def __init__(self, program: P4Program, schedule: Schedule, num_processors: int):
        if num_processors < 1:
            raise CodegenError("dRMT fused generation needs at least one processor")
        self.program = program
        self.schedule = schedule
        self.num_processors = num_processors
        self._conditions = {apply.table: apply for apply in program.control_flow}

    # ------------------------------------------------------------------
    # Module assembly
    # ------------------------------------------------------------------
    def generate(self) -> ir.Module:
        """Build the fused dRMT module (both entry points)."""
        schedule = self.schedule
        module = ir.Module(
            docstring=(
                f"Fused dRMT program for {self.program.name!r} generated by dgen.\n\n"
                f"makespan={schedule.makespan} cycles, "
                f"{self.num_processors} processors, "
                f"{len(schedule.start_times)} scheduled operations; the trace loop "
                "replays the tick interpreter's exact cross-packet interleaving."
            ),
            globals=[
                ir.Assign("PROGRAM_NAME", repr(self.program.name)),
                ir.Assign("MAKESPAN", str(schedule.makespan)),
                ir.Assign("NUM_PROCESSORS", str(self.num_processors)),
                ir.Assign("NUM_OPERATIONS", str(len(schedule.start_times))),
                ir.Assign(
                    "VISIT_ORDERS",
                    repr(tuple(visit_orders(schedule, self.num_processors))),
                ),
            ],
        )
        module.functions.append(self._run_trace_function(observed=False))
        module.functions.append(self._run_trace_function(observed=True))
        module.trailer.append(ir.Assign("RUN_TRACE", RUN_TRACE_FUNCTION_NAME))
        module.trailer.append(
            ir.Assign("RUN_TRACE_OBSERVED", RUN_TRACE_OBSERVED_FUNCTION_NAME)
        )
        return module

    def _run_trace_function(self, observed: bool) -> ir.FunctionDef:
        segments = _segments(self.schedule)
        body: List[ir.IRStmt] = []
        body.append(ir.Assign("n", "len(packets)"))
        body.append(ir.Assign("dropped", "[False] * n"))
        if segments:
            body.append(
                ir.If(branches=[("n == 0", [ir.Return("dropped")])], orelse=[])
            )
            body.append(ir.Comment("hoist table lookups, match results and register arrays"))
            exact_tables: List[str] = []
            for table_name in self.program.table_order():
                safe = _ident(table_name)
                if self._is_exact(table_name):
                    # All-exact tables specialise into one dict probe per
                    # match: build the index once per trace, count hits and
                    # misses locally, and fold them back into the table's
                    # counters on exit (identical totals to the linear scan).
                    exact_tables.append(table_name)
                    body.append(ir.Assign(f"table_{safe}", f"tables[{table_name!r}]"))
                    body.append(ir.Assign(f"index_{safe}", f"table_{safe}.exact_index()"))
                    body.append(ir.Assign(f"hits_{safe}", "0"))
                    body.append(ir.Assign(f"misses_{safe}", "0"))
                else:
                    body.append(ir.Assign(f"lookup_{safe}", f"tables[{table_name!r}].lookup"))
                body.append(ir.Assign(f"matched_{safe}", "[None] * n"))
            for register_name in self.program.registers:
                body.append(
                    ir.Assign(f"reg_{_ident(register_name)}", f"registers[{register_name!r}]")
                )
            loop_body = self._tick_loop_body(segments, observed)
            tick_loop = ir.For("t", "range(n + MAKESPAN - 1)", peephole_block(loop_body))
            body.append(tick_loop)
            for table_name in exact_tables:
                safe = _ident(table_name)
                body.append(
                    ir.Assign(f"table_{safe}.hit_count", f"table_{safe}.hit_count + hits_{safe}")
                )
                body.append(
                    ir.Assign(
                        f"table_{safe}.miss_count", f"table_{safe}.miss_count + misses_{safe}"
                    )
                )
        body.append(ir.Return("dropped"))
        params = ["packets", "tables", "registers"]
        if observed:
            params.append("observer")
        return ir.FunctionDef(
            name=RUN_TRACE_OBSERVED_FUNCTION_NAME if observed else RUN_TRACE_FUNCTION_NAME,
            params=params,
            body=body,
            docstring=(
                "Fused dRMT trace loop: walk global ticks and execute the inlined "
                "per-cycle operation segments in the tick interpreter's exact "
                "packet/processor interleaving.  Mutates the packet field dicts and "
                "register arrays in place and returns the per-packet dropped flags."
                + (
                    "  Calls observer(packet_id, processor, tick, fields) after every "
                    "(packet, cycle) execution; the hook receives the live field dict."
                    if observed
                    else ""
                )
            ),
        )

    def _tick_loop_body(
        self, segments: Dict[int, List[Operation]], observed: bool
    ) -> List[ir.IRStmt]:
        dispatch: List[Tuple[str, List[ir.IRStmt]]] = []
        for cycle in sorted(segments):
            stmts = self._segment_stmts(segments[cycle])
            if observed:
                stmts.append(
                    ir.ExprStmt("observer(p, p % NUM_PROCESSORS, t, fields)")
                )
            dispatch.append((f"c == {cycle}", stmts))
        inner: List[ir.IRStmt] = [
            ir.Assign("p", "t - c"),
            ir.If(
                branches=[
                    (
                        "0 <= p < n and not dropped[p]",
                        [
                            ir.Assign("fields", "packets[p]"),
                            ir.If(branches=dispatch, orelse=[]),
                        ],
                    )
                ],
                orelse=[],
            ),
        ]
        return [ir.For("c", "VISIT_ORDERS[t % NUM_PROCESSORS]", inner)]

    # ------------------------------------------------------------------
    # Per-operation emission
    # ------------------------------------------------------------------
    def _enabled_condition(self, table_name: str) -> Optional[str]:
        condition = self._conditions.get(table_name)
        if condition is None or condition.condition_field is None:
            return None
        return (
            f"fields.get({condition.condition_field!r}, 0) == {condition.condition_value}"
        )

    def _may_drop(self, table_name: str) -> bool:
        table = self.program.tables[table_name]
        action_names = list(table.actions)
        if table.default_action is not None:
            action_names.append(table.default_action)
        for action_name in action_names:
            action = self.program.actions.get(action_name)
            if action is not None and any(call.op == "drop" for call in action.body):
                return True
        return False

    def _segment_stmts(self, operations: Sequence[Operation]) -> List[ir.IRStmt]:
        """One cycle's operations; later ops re-check the drop flag when needed."""
        stmts: List[ir.IRStmt] = []
        drop_possible = False
        for table_name, kind in operations:
            if kind == MATCH_OP:
                op_stmts = self._match_stmts(table_name)
            else:
                op_stmts = self._action_stmts(table_name)
            if drop_possible:
                op_stmts = [
                    ir.If(branches=[("not dropped[p]", op_stmts)], orelse=[])
                ]
            stmts.extend(op_stmts)
            if kind == ACTION_OP and self._may_drop(table_name):
                drop_possible = True
        return stmts

    def _is_exact(self, table_name: str) -> bool:
        """True when the table definition admits the dict specialisation."""
        return self.program.tables[table_name].is_exact

    def _match_stmts(self, table_name: str) -> List[ir.IRStmt]:
        safe = _ident(table_name)
        if self._is_exact(table_name):
            match_fields = self.program.tables[table_name].match_fields()
            key = (
                "(" + ", ".join(f"fields.get({field!r}, 0)" for field in match_fields) + ",)"
                if match_fields
                else "()"
            )
            lookup_stmts: List[ir.IRStmt] = [
                ir.Assign("_entry", f"index_{safe}.get({key})"),
                ir.Assign(f"matched_{safe}[p]", "_entry"),
                ir.If(
                    branches=[("_entry is None", [ir.Assign(f"misses_{safe}", f"misses_{safe} + 1")])],
                    orelse=[ir.Assign(f"hits_{safe}", f"hits_{safe} + 1")],
                ),
            ]
        else:
            lookup_stmts = [ir.Assign(f"matched_{safe}[p]", f"lookup_{safe}(fields)")]
        condition = self._enabled_condition(table_name)
        if condition is None:
            return lookup_stmts
        return [
            ir.If(
                branches=[(condition, lookup_stmts)],
                orelse=[ir.Assign(f"matched_{safe}[p]", "None")],
            )
        ]

    def _action_stmts(self, table_name: str) -> List[ir.IRStmt]:
        table = self.program.tables[table_name]
        safe = _ident(table_name)
        hit_body: List[ir.IRStmt] = [ir.Assign("entry", f"matched_{safe}[p]")]
        dispatch = self._action_dispatch(table)
        miss_body: List[ir.IRStmt] = []
        if table.default_action is not None:
            miss_body = self._action_body(
                self.program.actions[table.default_action], entry_args=False
            )
        inner = [
            ir.If(branches=[("entry is not None", dispatch)], orelse=miss_body)
        ]
        stmts = hit_body + inner
        condition = self._enabled_condition(table_name)
        if condition is None:
            return stmts
        return [ir.If(branches=[(condition, stmts)], orelse=[])]

    def _action_dispatch(self, table: Table) -> List[ir.IRStmt]:
        """Dispatch over the actions a matched entry may invoke."""
        action_names = list(table.actions)
        if len(action_names) == 1:
            return self._action_body(
                self.program.actions[action_names[0]], entry_args=True
            )
        branches: List[Tuple[str, List[ir.IRStmt]]] = []
        stmts: List[ir.IRStmt] = [ir.Assign("_name", "entry.action")]
        for action_name in action_names:
            body = self._action_body(self.program.actions[action_name], entry_args=True)
            branches.append((f"_name == {action_name!r}", body or [ir.Pass()]))
        stmts.append(ir.If(branches=branches, orelse=[]))
        return stmts

    def _action_body(self, action: Action, entry_args: bool) -> List[ir.IRStmt]:
        """Inline one action: bind used parameters, then its primitive calls."""
        used_params = {
            arg for call in action.body for arg in call.args if arg in action.params
        }
        bindings: Dict[str, str] = {}
        stmts: List[ir.IRStmt] = []
        if entry_args and used_params:
            stmts.append(ir.Assign("_args", "entry.action_args"))
        for index, param in enumerate(action.params):
            if param not in used_params:
                continue
            if entry_args:
                local = f"_a{index}"
                stmts.append(
                    ir.Assign(local, f"_args[{index}] if len(_args) > {index} else 0")
                )
                bindings[param] = local
            else:
                # A default action runs with no entry arguments: every
                # parameter binds to 0, as in the interpreter.
                bindings[param] = "0"

        for call in action.body:
            stmts.extend(self._primitive_stmts(call, bindings))
        return stmts

    def _primitive_stmts(self, call, bindings: Dict[str, str]) -> List[ir.IRStmt]:
        op = call.op
        if op == "no_op":
            return []
        if op == "drop":
            return [ir.Assign("dropped[p]", "True")]
        if op == "modify_field":
            destination, source = call.args[0], call.args[1]
            return [ir.Assign(f"fields[{destination!r}]", self._value(source, bindings))]
        if op == "add_to_field":
            destination, source = call.args[0], call.args[1]
            return [
                ir.Assign(
                    f"fields[{destination!r}]",
                    f"fields.get({destination!r}, 0) + ({self._value(source, bindings)})",
                )
            ]
        if op == "subtract_from_field":
            destination, source = call.args[0], call.args[1]
            return [
                ir.Assign(
                    f"fields[{destination!r}]",
                    f"fields.get({destination!r}, 0) - ({self._value(source, bindings)})",
                )
            ]
        if op == "register_read":
            destination, register, index_arg = call.args[0], call.args[1], call.args[2]
            return [
                ir.Assign(
                    f"fields[{destination!r}]", self._register_cell(register, index_arg, bindings)
                )
            ]
        if op == "register_write":
            register, index_arg, value_arg = call.args[0], call.args[1], call.args[2]
            return [
                ir.Assign(
                    self._register_cell(register, index_arg, bindings),
                    self._value(value_arg, bindings),
                )
            ]
        raise CodegenError(f"unsupported primitive {op!r}")  # pragma: no cover - validated upstream

    def _register_cell(self, register: str, index_arg: str, bindings: Dict[str, str]) -> str:
        declaration = self.program.registers.get(register)
        if declaration is None:
            raise CodegenError(f"unknown register {register!r}")
        size = declaration.instance_count
        return f"reg_{_ident(register)}[({self._value(index_arg, bindings)}) % {size}]"

    def _value(self, arg: str, bindings: Dict[str, str]) -> str:
        """Source fragment for one action argument (the interpreter's ``_resolve``)."""
        if arg in bindings:
            return bindings[arg]
        if "." in arg:
            return f"fields.get({arg!r}, 0)"
        try:
            return str(int(arg, 0))
        except ValueError:
            raise CodegenError(f"cannot resolve action argument {arg!r}") from None


@dataclass
class DrmtFusedProgram:
    """A compiled fused dRMT program plus its provenance."""

    module: ir.Module
    source: str
    namespace: Dict[str, object]
    hazard: Optional[str]

    @property
    def run_trace(self) -> Callable:
        """The generated ``run_trace(packets, tables, registers)`` entry point."""
        return self.namespace["RUN_TRACE"]  # type: ignore[return-value]

    @property
    def run_trace_observed(self) -> Callable:
        """The observed variant (per-processor snapshot hooks)."""
        return self.namespace["RUN_TRACE_OBSERVED"]  # type: ignore[return-value]

    def source_line_count(self) -> int:
        """Number of non-blank source lines (the Figure 6 code-size metric)."""
        return sum(1 for line in self.source.splitlines() if line.strip())


def generate_fused(
    program: P4Program,
    schedule: Schedule,
    num_processors: int,
    module_name: str = "druzhba_drmt_fused_program",
) -> DrmtFusedProgram:
    """Generate, render, compile and wrap the fused program for one bundle."""
    generator = DrmtFusedGenerator(program, schedule, num_processors)
    module = generator.generate()
    source = to_source(module)
    namespace: Dict[str, object] = {"__name__": module_name}
    code = compile(source, filename=f"<{module_name}>", mode="exec")
    exec(code, namespace)  # noqa: S102 - executing our own generated code is the point of dgen
    fused = DrmtFusedProgram(
        module=module,
        source=source,
        namespace=namespace,
        hazard=run_to_completion_hazard(program, schedule),
    )
    if not callable(fused.run_trace) or not callable(fused.run_trace_observed):
        raise CodegenError("fused dRMT generation produced no callable run_trace")
    return fused
