"""dRMT match+action processors (paper §4.2).

Each processor "runs the packet processing program to completion" for the
packets assigned to it, issuing the match and action operations of each table
at the cycles the dRMT schedule prescribes and accessing the centralised
table store and register file shared by every processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..errors import SimulationError
from ..p4.program import Action, ControlApply, P4Program
from .scheduler import ACTION_OP, MATCH_OP, Schedule
from .tables import TableEntry, TableStore


class RegisterFile:
    """The centralised stateful memories (registers) shared across processors."""

    def __init__(self, program: P4Program):
        self._arrays: Dict[str, List[int]] = {
            name: [0] * register.instance_count for name, register in program.registers.items()
        }

    def read(self, register: str, index: int) -> int:
        """Read one register cell (out-of-range indices wrap modulo the array size)."""
        array = self._get(register)
        return array[index % len(array)]

    def write(self, register: str, index: int, value: int) -> None:
        """Write one register cell."""
        array = self._get(register)
        array[index % len(array)] = int(value)

    def dump(self, register: str, limit: Optional[int] = None) -> List[int]:
        """Copy of a register array (optionally truncated)."""
        array = self._get(register)
        return list(array if limit is None else array[:limit])

    def arrays(self) -> Dict[str, List[int]]:
        """The live register arrays, keyed by name.

        The returned lists are the registers themselves, not copies: the
        fused and generic dRMT drivers index them directly (with the
        instance count baked into the generated code), so their mutations
        are visible to every other consumer of this register file.
        """
        return self._arrays

    def _get(self, register: str) -> List[int]:
        try:
            return self._arrays[register]
        except KeyError:
            raise SimulationError(f"unknown register {register!r}") from None


@dataclass
class PacketContext:
    """A packet in flight on a processor."""

    packet_id: int
    fields: Dict[str, int]
    arrival_tick: int
    processor: int
    dropped: bool = False
    matched_entries: Dict[str, Optional[TableEntry]] = field(default_factory=dict)
    completed_tick: Optional[int] = None

    def is_complete(self, makespan: int, current_tick: int) -> bool:
        """True once every scheduled operation of the program has run for this packet."""
        return current_tick - self.arrival_tick >= makespan


class MatchActionProcessor:
    """One dRMT processor executing the scheduled program on its packets."""

    def __init__(
        self,
        processor_id: int,
        program: P4Program,
        schedule: Schedule,
        tables: TableStore,
        registers: RegisterFile,
    ):
        self.processor_id = processor_id
        self.program = program
        self.schedule = schedule
        self.tables = tables
        self.registers = registers
        self.in_flight: List[PacketContext] = []
        self.completed: List[PacketContext] = []
        self.operations_executed = 0
        self._conditions: Dict[str, ControlApply] = {
            apply.table: apply for apply in program.control_flow
        }

    # ------------------------------------------------------------------
    # Packet lifecycle
    # ------------------------------------------------------------------
    def accept(self, packet: PacketContext) -> None:
        """Take ownership of a newly arrived packet."""
        if packet.processor != self.processor_id:
            raise SimulationError(
                f"packet {packet.packet_id} routed to processor {packet.processor}, "
                f"accepted by {self.processor_id}"
            )
        self.in_flight.append(packet)

    def tick(self, current_tick: int) -> List[PacketContext]:
        """Run one cycle: execute due operations, retire finished packets."""
        for packet in self.in_flight:
            relative = current_tick - packet.arrival_tick
            for table, op_kind in self.schedule.operations_at(relative):
                self._execute(packet, table, op_kind)
                self.operations_executed += 1

        finished = [
            packet
            for packet in self.in_flight
            if packet.is_complete(self.schedule.makespan, current_tick + 1)
        ]
        for packet in finished:
            packet.completed_tick = current_tick
            self.in_flight.remove(packet)
            self.completed.append(packet)
        return finished

    # ------------------------------------------------------------------
    # Operation execution
    # ------------------------------------------------------------------
    def _execute(self, packet: PacketContext, table_name: str, op_kind: str) -> None:
        if packet.dropped:
            return
        if op_kind == MATCH_OP:
            self._execute_match(packet, table_name)
        elif op_kind == ACTION_OP:
            self._execute_action(packet, table_name)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown operation kind {op_kind!r}")

    def _table_enabled(self, packet: PacketContext, table_name: str) -> bool:
        condition = self._conditions.get(table_name)
        if condition is None or condition.condition_field is None:
            return True
        return packet.fields.get(condition.condition_field, 0) == condition.condition_value

    def _execute_match(self, packet: PacketContext, table_name: str) -> None:
        if not self._table_enabled(packet, table_name):
            packet.matched_entries[table_name] = None
            return
        entry = self.tables[table_name].lookup(packet.fields)
        packet.matched_entries[table_name] = entry

    def _execute_action(self, packet: PacketContext, table_name: str) -> None:
        if not self._table_enabled(packet, table_name):
            return
        entry = packet.matched_entries.get(table_name)
        table = self.program.tables[table_name]
        if entry is None:
            if table.default_action is None:
                return
            action = self.program.actions[table.default_action]
            args: List[int] = []
        else:
            action = self.program.actions[entry.action]
            args = list(entry.action_args)
        self._run_action(packet, action, args)

    def _run_action(self, packet: PacketContext, action: Action, args: List[int]) -> None:
        bindings: Dict[str, int] = {}
        for index, param in enumerate(action.params):
            bindings[param] = args[index] if index < len(args) else 0

        for call in action.body:
            if call.op == "drop":
                packet.dropped = True
            elif call.op == "no_op":
                continue
            elif call.op == "modify_field":
                destination, source = call.args[0], call.args[1]
                packet.fields[destination] = self._resolve(source, packet, bindings)
            elif call.op == "add_to_field":
                destination, source = call.args[0], call.args[1]
                packet.fields[destination] = packet.fields.get(destination, 0) + self._resolve(
                    source, packet, bindings
                )
            elif call.op == "subtract_from_field":
                destination, source = call.args[0], call.args[1]
                packet.fields[destination] = packet.fields.get(destination, 0) - self._resolve(
                    source, packet, bindings
                )
            elif call.op == "register_read":
                destination, register, index_arg = call.args[0], call.args[1], call.args[2]
                packet.fields[destination] = self.registers.read(
                    register, self._resolve(index_arg, packet, bindings)
                )
            elif call.op == "register_write":
                register, index_arg, value_arg = call.args[0], call.args[1], call.args[2]
                self.registers.write(
                    register,
                    self._resolve(index_arg, packet, bindings),
                    self._resolve(value_arg, packet, bindings),
                )
            else:  # pragma: no cover - PrimitiveCall validates ops
                raise SimulationError(f"unsupported primitive {call.op!r}")

    def _resolve(self, arg: str, packet: PacketContext, bindings: Mapping[str, int]) -> int:
        if arg in bindings:
            return bindings[arg]
        if "." in arg:
            return int(packet.fields.get(arg, 0))
        try:
            return int(arg, 0)
        except ValueError:
            raise SimulationError(f"cannot resolve action argument {arg!r}") from None
