"""Bounded pipeline-level equivalence checking (paper §7 future work).

Fuzzing (§3.3) "only demonstrates input-output behavior" on sampled traces;
the paper's future work asks for equivalence that can be *proven*.  Without
an SMT solver, this module proves equivalence over an explicitly bounded
domain by exhaustively enumerating every input trace whose container values
come from a finite value domain and whose length is fixed — every execution
in that space is checked, so a pass is a proof for the bounded domain and a
failure always comes with a concrete counterexample trace.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .. import dgen
from ..dsim import RMTSimulator
from ..errors import SpecificationError
from ..hardware import PipelineSpec
from ..machine_code.pairs import MachineCode
from ..testing.equivalence import EquivalenceReport, compare_traces
from ..testing.spec import Specification


@dataclass
class BoundedCheckResult:
    """Outcome of a bounded exhaustive equivalence check."""

    verified: bool
    traces_checked: int
    trace_length: int
    value_domain: List[int]
    counterexample_trace: Optional[List[List[int]]] = None
    counterexample_report: Optional[EquivalenceReport] = None

    def describe(self) -> str:
        """Human-readable summary."""
        domain = f"values {self.value_domain}, trace length {self.trace_length}"
        if self.verified:
            return (
                f"equivalence PROVEN over the bounded domain ({domain}): "
                f"{self.traces_checked} traces checked exhaustively"
            )
        assert self.counterexample_report is not None
        return (
            f"equivalence REFUTED ({domain}) after {self.traces_checked} traces; "
            f"counterexample trace {self.counterexample_trace}: "
            f"{self.counterexample_report.describe(limit=3)}"
        )


def _count_traces(num_values: int, width: int, trace_length: int) -> int:
    return (num_values ** width) ** trace_length


def enumerate_traces(value_domain: Sequence[int], width: int, trace_length: int):
    """Yield every input trace over the bounded domain (lexicographic order)."""
    phv_space = [list(phv) for phv in itertools.product(value_domain, repeat=width)]
    for trace in itertools.product(phv_space, repeat=trace_length):
        yield [list(phv) for phv in trace]


def check_bounded_equivalence(
    pipeline_spec: PipelineSpec,
    machine_code: MachineCode,
    specification: Specification,
    value_domain: Sequence[int],
    trace_length: int = 2,
    initial_state: Optional[List[List[List[int]]]] = None,
    opt_level: int = dgen.OPT_SCC_INLINE,
    max_traces: int = 100_000,
) -> BoundedCheckResult:
    """Prove (or refute) pipeline-vs-specification equivalence over a bounded domain.

    The pipeline description is generated once; every input trace of length
    ``trace_length`` whose container values are drawn from ``value_domain``
    is then simulated and compared against the specification on the
    specification's relevant containers.  State matters: starting every trace
    from the same initial state and checking multi-PHV traces covers the
    stateful behaviour that single-packet checks would miss.
    """
    domain = sorted(set(int(v) for v in value_domain))
    if not domain:
        raise SpecificationError("value domain must not be empty")
    if trace_length < 1:
        raise SpecificationError("trace length must be at least 1")
    total = _count_traces(len(domain), pipeline_spec.width, trace_length)
    if total > max_traces:
        raise SpecificationError(
            f"bounded check would need {total} traces (> max_traces={max_traces}); "
            "shrink the value domain, the trace length or the pipeline width"
        )

    description = dgen.generate(pipeline_spec, machine_code, opt_level=opt_level)

    def fresh_state() -> Optional[List[List[List[int]]]]:
        if initial_state is None:
            return None
        return [[list(alu) for alu in stage] for stage in initial_state]

    traces_checked = 0
    for trace in enumerate_traces(domain, pipeline_spec.width, trace_length):
        traces_checked += 1
        simulator = RMTSimulator(description, initial_state=fresh_state())
        result = simulator.run(trace)
        expected = specification.run(trace)
        # Fast screen first (count-only, stop at the first disagreement);
        # the full mismatch report is only built for the counterexample.
        screen = compare_traces(
            result.output_trace,
            expected,
            containers=specification.relevant_containers,
            count_only=True,
            limit=0,
        )
        if not screen.equivalent:
            report = compare_traces(
                result.output_trace, expected, containers=specification.relevant_containers
            )
            return BoundedCheckResult(
                verified=False,
                traces_checked=traces_checked,
                trace_length=trace_length,
                value_domain=domain,
                counterexample_trace=trace,
                counterexample_report=report,
            )
    return BoundedCheckResult(
        verified=True,
        traces_checked=traces_checked,
        trace_length=trace_length,
        value_domain=domain,
    )


def check_optimization_equivalence(
    pipeline_spec: PipelineSpec,
    machine_code: MachineCode,
    value_domain: Sequence[int],
    trace_length: int = 2,
    initial_state: Optional[List[List[List[int]]]] = None,
    max_traces: int = 100_000,
) -> BoundedCheckResult:
    """Prove that every dgen optimisation level agrees over a bounded domain.

    This is the verification-strength version of the property-based test that
    guards the §3.4 optimisations: for every trace in the bounded domain the
    unoptimised, SCC-propagated, inlined and fused pipeline descriptions must
    produce identical outputs and final state (the fused level additionally
    exercises the generated ``run_trace`` fast path).
    """
    domain = sorted(set(int(v) for v in value_domain))
    if not domain:
        raise SpecificationError("value domain must not be empty")
    total = _count_traces(len(domain), pipeline_spec.width, trace_length)
    if total > max_traces:
        raise SpecificationError(
            f"bounded check would need {total} traces (> max_traces={max_traces})"
        )

    descriptions = {
        level: dgen.generate(pipeline_spec, machine_code, opt_level=level)
        for level in dgen.OPT_LEVELS
    }

    def fresh_state() -> Optional[List[List[List[int]]]]:
        if initial_state is None:
            return None
        return [[list(alu) for alu in stage] for stage in initial_state]

    traces_checked = 0
    for trace in enumerate_traces(domain, pipeline_spec.width, trace_length):
        traces_checked += 1
        results: Dict[int, object] = {}
        for level, description in descriptions.items():
            results[level] = RMTSimulator(description, initial_state=fresh_state()).run(trace)
        baseline = results[dgen.OPT_UNOPTIMIZED]
        for level in (dgen.OPT_SCC, dgen.OPT_SCC_INLINE, dgen.OPT_FUSED):
            candidate = results[level]
            if candidate.outputs != baseline.outputs or candidate.final_state != baseline.final_state:
                report = compare_traces(candidate.output_trace, baseline.output_trace)
                return BoundedCheckResult(
                    verified=False,
                    traces_checked=traces_checked,
                    trace_length=trace_length,
                    value_domain=domain,
                    counterexample_trace=trace,
                    counterexample_report=report,
                )
    return BoundedCheckResult(
        verified=True,
        traces_checked=traces_checked,
        trace_length=trace_length,
        value_domain=domain,
    )
