"""ALU-level equivalence checking (paper §7 future work).

The paper's future work proposes transforming the pipeline description and a
high-level specification "into SMT formulas so that equivalence can be
formally proven".  No SMT solver is available offline, so this reproduction
substitutes *exhaustive bounded checking*: the ALU's behaviour is compared
against a reference on every combination of operand and state values drawn
from caller-supplied finite domains.  Within those domains the result is a
proof, not a sample — the substitution preserved the property that a
disagreement is always found if one exists in the checked domain.

The module also exposes :func:`specialized_source`: the machine-code-
specialised ALU printed back as DSL text, which is the human-readable
"formula" a tester inspects when a check fails.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from ..alu_dsl import ALUInterpreter, format_spec
from ..alu_dsl.ast_nodes import ALUSpec
from ..dgen.optimize.constant_propagation import specialize_spec
from ..errors import SpecificationError


@dataclass
class ALUCounterexample:
    """A concrete disagreement between two ALU behaviours."""

    operands: Tuple[int, ...]
    state: Tuple[int, ...]
    expected_output: int
    actual_output: int
    expected_state: Tuple[int, ...]
    actual_state: Tuple[int, ...]

    def describe(self) -> str:
        """One-line rendering of the disagreement."""
        return (
            f"operands={list(self.operands)} state={list(self.state)}: "
            f"expected output {self.expected_output} / state {list(self.expected_state)}, "
            f"got output {self.actual_output} / state {list(self.actual_state)}"
        )


@dataclass
class ALUEquivalenceResult:
    """Outcome of an exhaustive ALU equivalence check."""

    equivalent: bool
    cases_checked: int
    counterexample: Optional[ALUCounterexample] = None

    def describe(self) -> str:
        """Human-readable summary."""
        if self.equivalent:
            return f"equivalent on all {self.cases_checked} checked cases (exhaustive over the domain)"
        assert self.counterexample is not None
        return f"NOT equivalent (after {self.cases_checked} cases): {self.counterexample.describe()}"


def specialized_source(spec: ALUSpec, holes: Mapping[str, int]) -> str:
    """The ALU's behaviour under ``holes``, rendered as hole-free DSL source."""
    return format_spec(specialize_spec(spec, dict(holes)))


def _domains_product(
    operand_domain: Sequence[int], num_operands: int, state_domain: Sequence[int], num_state: int
):
    operand_tuples = itertools.product(operand_domain, repeat=num_operands)
    for operands in operand_tuples:
        for state in itertools.product(state_domain, repeat=num_state):
            yield operands, state


def check_alu_against_reference(
    spec: ALUSpec,
    holes: Mapping[str, int],
    reference: Callable[[Sequence[int], List[int]], int],
    operand_domain: Sequence[int],
    state_domain: Sequence[int] = (0,),
    max_cases: int = 250_000,
) -> ALUEquivalenceResult:
    """Exhaustively compare one configured ALU against a Python reference.

    ``reference(operands, state)`` receives the operand values and a mutable
    state list (which it must update exactly like the ALU would) and returns
    the expected ALU output.
    """
    interpreter = ALUInterpreter(spec)
    cases = 0
    total = (len(operand_domain) ** spec.num_operands) * (len(state_domain) ** spec.num_state_vars)
    if total > max_cases:
        raise SpecificationError(
            f"bounded check would need {total} cases (> max_cases={max_cases}); "
            "shrink the operand or state domain"
        )
    for operands, state in _domains_product(
        operand_domain, spec.num_operands, state_domain, spec.num_state_vars
    ):
        cases += 1
        expected_state = list(state)
        expected_output = reference(list(operands), expected_state)
        result = interpreter.execute(list(operands), list(state), holes)
        if result.output != expected_output or result.state != expected_state:
            return ALUEquivalenceResult(
                equivalent=False,
                cases_checked=cases,
                counterexample=ALUCounterexample(
                    operands=tuple(operands),
                    state=tuple(state),
                    expected_output=expected_output,
                    actual_output=result.output,
                    expected_state=tuple(expected_state),
                    actual_state=tuple(result.state),
                ),
            )
    return ALUEquivalenceResult(equivalent=True, cases_checked=cases)


def check_alu_equivalence(
    spec_a: ALUSpec,
    holes_a: Mapping[str, int],
    spec_b: ALUSpec,
    holes_b: Mapping[str, int],
    operand_domain: Sequence[int],
    state_domain: Sequence[int] = (0,),
    max_cases: int = 250_000,
) -> ALUEquivalenceResult:
    """Exhaustively check that two configured ALUs behave identically.

    Useful for compiler developers who want to prove that a machine-code
    rewrite (e.g. re-targeting a program from one atom to a richer one)
    preserves behaviour over the whole bounded domain.
    """
    if spec_a.num_operands != spec_b.num_operands or spec_a.num_state_vars != spec_b.num_state_vars:
        raise SpecificationError(
            "ALUs must agree on operand and state-variable counts to be compared"
        )
    interpreter_b = ALUInterpreter(spec_b)

    def reference(operands: Sequence[int], state: List[int]) -> int:
        result = interpreter_b.execute(list(operands), list(state), holes_b)
        state[:] = result.state
        return result.output

    return check_alu_against_reference(
        spec_a, holes_a, reference, operand_domain, state_domain, max_cases=max_cases
    )
