"""Bounded formal verification of pipelines and ALUs (paper §7 future work).

The paper proposes SMT-based equivalence proofs between the pipeline
description and a high-level specification; with no SMT solver available
offline, this package substitutes exhaustive checking over caller-bounded
finite domains (see DESIGN.md).  Within the bounded domain the result is a
proof; outside it, the fuzzing workflow of :mod:`repro.testing` remains the
tool of choice.
"""

from .alu_equivalence import (
    ALUCounterexample,
    ALUEquivalenceResult,
    check_alu_against_reference,
    check_alu_equivalence,
    specialized_source,
)
from .bounded import (
    BoundedCheckResult,
    check_bounded_equivalence,
    check_optimization_equivalence,
    enumerate_traces,
)

__all__ = [
    "check_bounded_equivalence",
    "check_optimization_equivalence",
    "enumerate_traces",
    "BoundedCheckResult",
    "check_alu_equivalence",
    "check_alu_against_reference",
    "specialized_source",
    "ALUEquivalenceResult",
    "ALUCounterexample",
]
