"""Banzai atom catalogue: 6 stateful and 5 stateless ALUs in the ALU DSL (paper §3.1)."""

from .catalog import (
    atom_names,
    atom_source,
    get_atom,
    stateful_catalog,
    stateless_catalog,
)
from .sources import STATEFUL_SOURCES, STATELESS_SOURCES

__all__ = [
    "atom_names",
    "atom_source",
    "get_atom",
    "stateful_catalog",
    "stateless_catalog",
    "STATEFUL_SOURCES",
    "STATELESS_SOURCES",
]
