"""Parsed, analysed atom catalogue.

Parsing an atom is cheap but not free; the catalogue caches the analysed
:class:`~repro.alu_dsl.ast_nodes.ALUSpec` objects so the benchmark suite can
build many pipelines without re-running the ALU DSL front end.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from ..alu_dsl import ALUSpec, parse_and_analyze
from ..errors import ALUDSLError
from .sources import STATEFUL_SOURCES, STATELESS_SOURCES


@lru_cache(maxsize=None)
def _build_catalog(kind: str) -> Dict[str, ALUSpec]:
    sources = STATEFUL_SOURCES if kind == "stateful" else STATELESS_SOURCES
    catalog: Dict[str, ALUSpec] = {}
    for name, source in sources.items():
        catalog[name] = parse_and_analyze(source, name=name)
    return catalog


def stateful_catalog() -> Dict[str, ALUSpec]:
    """All stateful atoms, keyed by name (``raw``, ``if_else_raw``, ...)."""
    return dict(_build_catalog("stateful"))


def stateless_catalog() -> Dict[str, ALUSpec]:
    """All stateless atoms, keyed by name (``stateless_arith``, ...)."""
    return dict(_build_catalog("stateless"))


def atom_names() -> List[str]:
    """Every atom name in the catalogue (stateful first, then stateless)."""
    return list(STATEFUL_SOURCES) + list(STATELESS_SOURCES)


def get_atom(name: str) -> ALUSpec:
    """Look up one atom by name.

    Raises :class:`ALUDSLError` with the list of known atoms when the name is
    unknown, so callers get an actionable message.
    """
    stateful = _build_catalog("stateful")
    if name in stateful:
        return stateful[name]
    stateless = _build_catalog("stateless")
    if name in stateless:
        return stateless[name]
    raise ALUDSLError(
        f"unknown atom {name!r}; known atoms: {', '.join(atom_names())}"
    )


def atom_source(name: str) -> str:
    """Return the ALU DSL source text of an atom (useful for docs and the CLI)."""
    if name in STATEFUL_SOURCES:
        return STATEFUL_SOURCES[name]
    if name in STATELESS_SOURCES:
        return STATELESS_SOURCES[name]
    raise ALUDSLError(
        f"unknown atom {name!r}; known atoms: {', '.join(atom_names())}"
    )
