"""ALU DSL source text of the Banzai atom catalogue.

The paper (§3.1) states: "We have written 5 stateless ALUs and 6 stateful
ALUs that make use of our ALU DSL grammar that represent the behavior of
atoms in Banzai, a switch pipeline simulator for Domino."  This module holds
the reproduction's equivalents.  Each stateful atom follows the shape of its
Banzai namesake; Figure 4 of the paper (the *If Else Raw* atom) is reproduced
verbatim as ``if_else_raw``.

Conventions shared by every stateful atom:

* operands are ``pkt_0`` and ``pkt_1`` (two PHV container values selected by
  the pipeline's input multiplexers);
* the persistent state lives in ``state_0`` (and ``state_1`` for ``pair``);
* the ALU's *output* — the value offered to the stage's output multiplexers —
  is the value of ``state_0`` before the update (read-modify-write register
  convention), because none of the atoms contains an explicit ``return``.

Stateless atoms end with an explicit ``return``.
"""

from __future__ import annotations

from typing import Dict

# ----------------------------------------------------------------------
# Stateful atoms (6) — modelled on Banzai's raw, if_else_raw, pred_raw,
# sub, nested_ifs and pair atoms.
# ----------------------------------------------------------------------

RAW = """
type: stateful
state variables : {state_0}
hole variables : {}
packet fields : {pkt_0, pkt_1}

# Unconditional read-modify-write: state += (packet value | immediate),
# optionally ignoring the old state.
state_0 = Opt(state_0) + Mux3(pkt_0, pkt_1, C());
"""

IF_ELSE_RAW = """
type: stateful
state variables : {state_0}
hole variables : {}
packet fields : {pkt_0, pkt_1}

# Paper Figure 4: If Else Raw.  A predicated update where both branches are
# additive read-modify-writes.
if (rel_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()))) {
    state_0 = Opt(state_0) + Mux3(pkt_0, pkt_1, C());
}
else {
    state_0 = Opt(state_0) + Mux3(pkt_0, pkt_1, C());
}
"""

PRED_RAW = """
type: stateful
state variables : {state_0}
hole variables : {}
packet fields : {pkt_0, pkt_1}

# Predicated raw: the update happens only when the predicate holds.
if (rel_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()))) {
    state_0 = arith_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()));
}
"""

SUB = """
type: stateful
state variables : {state_0}
hole variables : {}
packet fields : {pkt_0, pkt_1}

# Like if_else_raw but with a machine-code-selected arithmetic operator in
# both branches, so subtraction-based updates (e.g. BLUE decrease) fit.
if (rel_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()))) {
    state_0 = arith_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()));
}
else {
    state_0 = arith_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()));
}
"""

NESTED_IF = """
type: stateful
state variables : {state_0}
hole variables : {}
packet fields : {pkt_0, pkt_1}

# Two levels of predication (Banzai's nested_ifs atom).
if (rel_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()))) {
    if (rel_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()))) {
        state_0 = arith_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()));
    }
    else {
        state_0 = arith_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()));
    }
}
else {
    state_0 = arith_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()));
}
"""

PAIR = """
type: stateful
state variables : {state_0, state_1}
hole variables : {}
packet fields : {pkt_0, pkt_1}

# The richest atom: two state variables updated under a compound predicate.
# Each rel_op can be forced to a constant via the surrounding Mux2/C() so a
# single-condition program maps onto the atom as well.
condition_0 = Mux2(rel_op(Mux2(state_0, state_1), Mux3(pkt_0, pkt_1, C())), C());
condition_1 = Mux2(rel_op(Mux2(state_0, state_1), Mux3(pkt_0, pkt_1, C())), C());
if (bool_op(condition_0, condition_1)) {
    state_0 = arith_op(Mux3(state_0, state_1, C()), Mux3(pkt_0, pkt_1, C()));
    state_1 = arith_op(Mux3(state_0, state_1, C()), Mux3(pkt_0, pkt_1, C()));
}
else {
    state_0 = arith_op(Mux3(state_0, state_1, C()), Mux3(pkt_0, pkt_1, C()));
    state_1 = arith_op(Mux3(state_0, state_1, C()), Mux3(pkt_0, pkt_1, C()));
}
"""

STATEFUL_SOURCES: Dict[str, str] = {
    "raw": RAW,
    "if_else_raw": IF_ELSE_RAW,
    "pred_raw": PRED_RAW,
    "sub": SUB,
    "nested_if": NESTED_IF,
    "pair": PAIR,
}

# ----------------------------------------------------------------------
# Stateless atoms (5)
# ----------------------------------------------------------------------

STATELESS_ARITH = """
type: stateless
state variables : {}
hole variables : {}
packet fields : {pkt_0, pkt_1}

# A two-operand arithmetic unit: each operand is a PHV value or an immediate.
return arith_op(Mux3(pkt_0, pkt_1, C()), Mux3(pkt_0, pkt_1, C()));
"""

STATELESS_REL = """
type: stateless
state variables : {}
hole variables : {}
packet fields : {pkt_0, pkt_1}

# A two-operand comparator producing 0 or 1.
return rel_op(Mux3(pkt_0, pkt_1, C()), Mux3(pkt_0, pkt_1, C()));
"""

STATELESS_MUX = """
type: stateless
state variables : {}
hole variables : {}
packet fields : {pkt_0, pkt_1}

# Pure selection: forward one PHV value or an immediate.
return Mux3(pkt_0, pkt_1, C());
"""

STATELESS_CONST = """
type: stateless
state variables : {}
hole variables : {}
packet fields : {pkt_0}

# Constant generator with a pass-through option.
return Mux2(C(), pkt_0);
"""

STATELESS_FULL = """
type: stateless
state variables : {}
hole variables : {}
packet fields : {pkt_0, pkt_1}

# General-purpose stateless unit: machine code picks between an arithmetic
# result and a comparison result, each over muxed operands.  This is the
# default stateless ALU used by the benchmark pipelines.
return Mux2(arith_op(Mux3(pkt_0, pkt_1, C()), Mux3(pkt_0, pkt_1, C())),
            rel_op(Mux3(pkt_0, pkt_1, C()), Mux3(pkt_0, pkt_1, C())));
"""

STATELESS_SOURCES: Dict[str, str] = {
    "stateless_arith": STATELESS_ARITH,
    "stateless_rel": STATELESS_REL,
    "stateless_mux": STATELESS_MUX,
    "stateless_const": STATELESS_CONST,
    "stateless_full": STATELESS_FULL,
}
