"""A small structured IR for the Python code that dgen emits.

The IR deliberately stays close to the shape of the paper's generated Rust
pipeline descriptions (Figure 6): a module is a sequence of function
definitions plus module-level assignments; function bodies are assignments,
``if``/``else`` chains, ``return`` statements and comments.  Expressions are
carried as Python source strings produced by the code generator — the
DSL-level optimisation passes (constant propagation, folding, dead-code
elimination, inlining) run *before* code is lowered to this IR, so the IR
itself never needs to be rewritten.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


class IRStmt:
    """Base class for IR statements."""

    __slots__ = ()


@dataclass
class Comment(IRStmt):
    """A ``#`` comment line (used to annotate the generated pipeline description)."""

    text: str


@dataclass
class Assign(IRStmt):
    """``target = expression`` where both sides are Python source fragments."""

    target: str
    expression: str


@dataclass
class Return(IRStmt):
    """``return expression``."""

    expression: str


@dataclass
class ExprStmt(IRStmt):
    """A bare expression statement (e.g. a call evaluated for its side effect)."""

    expression: str


@dataclass
class Pass(IRStmt):
    """A ``pass`` placeholder for empty bodies."""


@dataclass
class If(IRStmt):
    """An ``if``/``elif``/``else`` chain.

    ``branches`` is a list of (condition source, body) pairs; ``orelse`` is
    the body of the trailing ``else`` (may be empty, in which case no
    ``else`` is emitted).
    """

    branches: List[Tuple[str, List[IRStmt]]]
    orelse: List[IRStmt] = field(default_factory=list)


@dataclass
class For(IRStmt):
    """A ``for target in iterable`` loop.

    Used by the fused (opt level 3) pipeline description, whose generated
    ``run_trace`` function loops over the whole input trace inline.
    """

    target: str
    iterable: str
    body: List[IRStmt] = field(default_factory=list)


@dataclass
class FunctionDef:
    """A top-level function definition in the generated module."""

    name: str
    params: List[str]
    body: List[IRStmt]
    docstring: Optional[str] = None


@dataclass
class Module:
    """A generated Python module: a docstring, globals, and function definitions."""

    docstring: Optional[str] = None
    globals: List[Assign] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)
    trailer: List[IRStmt] = field(default_factory=list)

    def function_names(self) -> List[str]:
        """Names of every function defined in the module (in definition order)."""
        return [function.name for function in self.functions]

    def get_function(self, name: str) -> FunctionDef:
        """Return the function definition called ``name``.

        Raises ``KeyError`` when the module defines no such function.
        """
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(name)

    def count_statements(self) -> int:
        """Total number of IR statements in the module (used by code-size metrics)."""

        def count(statements: Sequence[IRStmt]) -> int:
            total = 0
            for statement in statements:
                total += 1
                if isinstance(statement, If):
                    for _cond, body in statement.branches:
                        total += count(body)
                    total += count(statement.orelse)
                elif isinstance(statement, For):
                    total += count(statement.body)
            return total

        total = len(self.globals) + count(self.trailer)
        for function in self.functions:
            total += 1 + count(function.body)
        return total
