"""Pretty-printer: lowers the dgen IR to Python source text.

The emitted source is what the paper calls the *pipeline description*.  It is
meant to be both executable (``compile`` + ``exec``) and readable — the paper
notes that function inlining "is helpful in debugging since the pipeline
description becomes more concise, making it easier to read" (§3.4), so we
keep the output tidy and annotated.
"""

from __future__ import annotations

from typing import List

from .nodes import Assign, Comment, ExprStmt, For, FunctionDef, If, IRStmt, Module, Pass, Return

_INDENT = "    "


def _emit_stmt(statement: IRStmt, indent: int, lines: List[str]) -> None:
    pad = _INDENT * indent
    if isinstance(statement, Comment):
        for text_line in statement.text.splitlines() or [""]:
            lines.append(f"{pad}# {text_line}".rstrip())
    elif isinstance(statement, Assign):
        lines.append(f"{pad}{statement.target} = {statement.expression}")
    elif isinstance(statement, Return):
        lines.append(f"{pad}return {statement.expression}")
    elif isinstance(statement, ExprStmt):
        lines.append(f"{pad}{statement.expression}")
    elif isinstance(statement, Pass):
        lines.append(f"{pad}pass")
    elif isinstance(statement, If):
        for index, (condition, body) in enumerate(statement.branches):
            keyword = "if" if index == 0 else "elif"
            lines.append(f"{pad}{keyword} {condition}:")
            if body:
                for inner in body:
                    _emit_stmt(inner, indent + 1, lines)
            else:
                lines.append(f"{pad}{_INDENT}pass")
        if statement.orelse:
            lines.append(f"{pad}else:")
            for inner in statement.orelse:
                _emit_stmt(inner, indent + 1, lines)
    elif isinstance(statement, For):
        lines.append(f"{pad}for {statement.target} in {statement.iterable}:")
        if statement.body:
            for inner in statement.body:
                _emit_stmt(inner, indent + 1, lines)
        else:
            lines.append(f"{pad}{_INDENT}pass")
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown IR statement {type(statement).__name__}")


def _emit_function(function: FunctionDef, lines: List[str]) -> None:
    params = ", ".join(function.params)
    lines.append(f"def {function.name}({params}):")
    if function.docstring:
        lines.append(f'{_INDENT}"""{function.docstring}"""')
    if function.body:
        for statement in function.body:
            _emit_stmt(statement, 1, lines)
    else:
        lines.append(f"{_INDENT}pass")
    lines.append("")


def to_source(module: Module) -> str:
    """Render ``module`` as Python source text."""
    lines: List[str] = []
    if module.docstring:
        lines.append(f'"""{module.docstring}"""')
        lines.append("")
    for assignment in module.globals:
        lines.append(f"{assignment.target} = {assignment.expression}")
    if module.globals:
        lines.append("")
    for function in module.functions:
        _emit_function(function, lines)
    for statement in module.trailer:
        _emit_stmt(statement, 0, lines)
    text = "\n".join(lines).rstrip() + "\n"
    return text


def count_source_lines(module: Module) -> int:
    """Number of non-blank lines in the rendered source (a code-size metric)."""
    return sum(1 for line in to_source(module).splitlines() if line.strip())
