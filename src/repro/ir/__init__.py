"""Lightweight IR used by dgen to build and render pipeline descriptions."""

from .nodes import Assign, Comment, ExprStmt, FunctionDef, If, IRStmt, Module, Pass, Return
from .printer import count_source_lines, to_source

__all__ = [
    "Assign",
    "Comment",
    "ExprStmt",
    "FunctionDef",
    "If",
    "IRStmt",
    "Module",
    "Pass",
    "Return",
    "to_source",
    "count_source_lines",
]
