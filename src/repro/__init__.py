"""Druzhba reproduction: a programmable-switch hardware simulator for compiler testing.

This package is a from-scratch Python reproduction of *Testing Compilers for
Programmable Switches Through Switch Hardware Simulation* (Wong, Varma,
Sivaraman, 2020).  It provides:

* an **ALU DSL** describing switch ALU capabilities (:mod:`repro.alu_dsl`) and
  a catalogue of Banzai atoms written in it (:mod:`repro.atoms`);
* **machine code** — the instruction-set-level pipeline configuration
  (:mod:`repro.machine_code`);
* **dgen**, the pipeline code generator with sparse-conditional-constant
  propagation and function inlining (:mod:`repro.dgen`);
* **dsim**, the RMT pipeline simulator with PHV read/write halves and a
  random traffic generator (:mod:`repro.dsim`);
* the **compiler-testing workflow**: high-level specifications, trace
  equivalence and fuzzing (:mod:`repro.testing`);
* a **Domino-like frontend** (:mod:`repro.domino`) and a **Chipmunk-style
  synthesis compiler** plus a rule-based grid allocator (:mod:`repro.chipmunk`);
* the **dRMT** model: a P4-14-like program representation
  (:mod:`repro.p4`), the dRMT scheduler and the disaggregated simulator
  (:mod:`repro.drmt`);
* the 12 benchmark programs of the paper's Table 1 (:mod:`repro.programs`).

Quickstart::

    from repro import dgen
    from repro.programs import get_program
    from repro.dsim import RMTSimulator

    program = get_program("sampling")
    description = dgen.generate(program.pipeline_spec(), program.machine_code(), opt_level=2)
    simulator = RMTSimulator(description, initial_state=program.initial_pipeline_state())
    result = simulator.run_traffic(program.traffic_generator(seed=1), 1000)
"""

from . import (
    alu_dsl,
    atoms,
    chipmunk,
    debugger,
    dgen,
    domino,
    drmt,
    dsim,
    machine_code,
    p4,
    programs,
    testing,
    verification,
)
from .errors import DruzhbaError
from .hardware import PipelineSpec, describe_pipeline, make_pipeline_spec
from .machine_code import MachineCode

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DruzhbaError",
    "PipelineSpec",
    "MachineCode",
    "make_pipeline_spec",
    "describe_pipeline",
    "alu_dsl",
    "atoms",
    "machine_code",
    "dgen",
    "dsim",
    "testing",
    "domino",
    "chipmunk",
    "p4",
    "drmt",
    "programs",
    "debugger",
    "verification",
]
