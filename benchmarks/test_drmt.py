"""dRMT benchmarks (paper §4): scheduling and disaggregated simulation.

The paper describes the dRMT flow (dgen → scheduler → dsim) as ongoing work
and reports no numbers for it; these benchmarks characterise the
reproduction's implementation: scheduler cost and quality, and simulation
throughput as the number of match+action processors grows (the scaling that
motivates the disaggregated design).
"""

from __future__ import annotations

import pytest

from repro.drmt import (
    DRMTSimulator,
    DrmtHardwareParams,
    GreedyScheduler,
    generate_bundle,
    validate_schedule,
)
from repro.drmt.traffic import PacketGenerator, values_field
from repro.p4 import build_dependency_graph, samples

PROGRAMS = {
    "simple_router": (samples.simple_router, samples.SIMPLE_ROUTER_ENTRIES),
    "telemetry_pipeline": (samples.telemetry_pipeline, samples.TELEMETRY_ENTRIES),
}


@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
def test_dependency_analysis_and_scheduling(benchmark, program_name):
    """Benchmark dRMT dgen: dependency DAG extraction plus greedy scheduling."""
    build_program, _entries = PROGRAMS[program_name]
    program = build_program()
    hardware = DrmtHardwareParams()

    def run():
        graph = build_dependency_graph(program)
        return GreedyScheduler(program, graph, hardware).schedule(), graph

    schedule, graph = benchmark(run)
    assert validate_schedule(schedule, program, graph) == []
    benchmark.extra_info["makespan_cycles"] = schedule.makespan
    benchmark.extra_info["tables"] = len(program.tables)


@pytest.mark.parametrize("engine", ["tick", "fused"])
@pytest.mark.parametrize("num_processors", [1, 2, 4])
def test_drmt_simulation_throughput(benchmark, num_processors, engine, drmt_packets, bench_rounds):
    """Packets/tick as processors are added (round-robin dispatch, shared tables)."""
    program = samples.simple_router()
    bundle = generate_bundle(program, DrmtHardwareParams(num_processors=num_processors))
    generator = PacketGenerator(
        program,
        seed=5,
        field_overrides={
            "ipv4.srcAddr": values_field([42, 77, 5]),
            "ipv4.dstAddr": values_field([167772161, 3232235777, 12345]),
            "ipv4.protocol": values_field([6, 17]),
        },
    )
    packets = generator.generate(drmt_packets)

    def run():
        simulator = DRMTSimulator(
            bundle, table_entries=samples.SIMPLE_ROUTER_ENTRIES, engine=engine
        )
        return simulator.run_packets(packets)

    result = benchmark.pedantic(run, rounds=bench_rounds, iterations=1, warmup_rounds=0)
    assert result.packets_processed == drmt_packets
    assert result.engine == engine
    benchmark.extra_info["processors"] = num_processors
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["packets_per_tick"] = round(result.throughput(), 3)
    benchmark.extra_info["ticks"] = result.ticks


def test_milp_vs_greedy_schedule_quality(capsys):
    """Compare the optional MILP scheduler against the greedy one (no regression)."""
    from repro.drmt import MilpScheduler

    rows = []
    for program_name, (build_program, _entries) in sorted(PROGRAMS.items()):
        program = build_program()
        graph = build_dependency_graph(program)
        hardware = DrmtHardwareParams()
        greedy = GreedyScheduler(program, graph, hardware).schedule()
        milp = MilpScheduler(program, graph, hardware).schedule()
        milp_makespan = milp.makespan if milp is not None else None
        if milp is not None:
            assert validate_schedule(milp, program, graph) == []
            assert milp.makespan <= greedy.makespan
        rows.append((program_name, greedy.makespan, milp_makespan))

    with capsys.disabled():
        print("\ndRMT scheduler quality (makespan in cycles)")
        print(f"{'program':22s} {'greedy':>8s} {'milp':>8s}")
        for name, greedy_makespan, milp_makespan in rows:
            rendered = str(milp_makespan) if milp_makespan is not None else "n/a"
            print(f"{name:22s} {greedy_makespan:>8d} {rendered:>8s}")
