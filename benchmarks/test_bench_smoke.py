"""Pytest wrapper around the bench_smoke sweep (``pytest -m bench_smoke``).

The default run uses a tiny workload on a program subset so the tier-1 suite
stays fast; it checks the sweep machinery and the shape of the trajectory
record rather than absolute performance.  The committed ``BENCH_PR1.json``
is produced by the full sweep (``python benchmarks/bench_smoke.py``).
"""

from __future__ import annotations

import json

import pytest

from bench_smoke import format_table, run_sweep
from repro import dgen


@pytest.mark.bench_smoke
def test_bench_smoke_sweep(tmp_path):
    record = run_sweep(phvs=200, rounds=1, program_names=["sampling", "conga"])

    assert record["levels"] == [dgen.OPT_LEVEL_NAMES[level] for level in dgen.OPT_LEVELS]
    assert set(record["programs"]) == {"sampling", "conga"}
    for cells in record["programs"].values():
        for label in record["levels"]:
            assert cells[label]["phvs_per_sec"] > 0
            assert cells[label]["seconds"] > 0
    summary = record["speedup_fused_vs_inlining"]
    assert set(summary["per_program"]) == {"sampling", "conga"}
    assert summary["geomean"] > 0 and summary["aggregate"] > 0

    # The record round-trips through JSON and renders as a table.
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(record))
    assert json.loads(path.read_text()) == record
    assert "fused vs scc+inlining" in format_table(record)
