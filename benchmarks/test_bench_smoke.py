"""Pytest wrapper around the bench_smoke sweep (``pytest -m bench_smoke``).

The default run uses a tiny workload on a program subset so the tier-1 suite
stays fast; it checks the sweep machinery, the shape of the trajectory
record, and — as a coarse perf-regression guard that runs in plain test runs
— that the fused drivers actually beat the tick interpreters with a wide
margin.  The committed ``BENCH_PR2.json`` is produced by the full sweep
(``python benchmarks/bench_smoke.py --rounds 3``).
"""

from __future__ import annotations

import json
import os

import pytest

from bench_smoke import (
    DRMT_ENGINES,
    SHARDED_ENGINES,
    TICK_BASELINE,
    format_table,
    measure_sharded_cells,
    run_sweep,
)
from repro import dgen


@pytest.mark.bench_smoke
def test_bench_smoke_sweep(tmp_path, bench_rounds):
    record = run_sweep(
        phvs=200,
        rounds=bench_rounds,
        program_names=["sampling", "conga"],
        drmt_packets=150,
        drmt_names=["simple_router"],
    )

    expected_levels = [dgen.OPT_LEVEL_NAMES[level] for level in dgen.OPT_LEVELS]
    assert record["levels"] == expected_levels + [TICK_BASELINE]
    assert set(record["programs"]) == {"sampling", "conga"}
    for cells in record["programs"].values():
        for label in record["levels"]:
            assert cells[label]["phvs_per_sec"] > 0
            assert cells[label]["seconds"] > 0
        # Levels 0-2 now run the generic sequential driver; level 3 the
        # fused loop; the extra baseline cell pins the tick interpreter.
        assert cells[dgen.OPT_LEVEL_NAMES[dgen.OPT_SCC_INLINE]]["engine"] == "generic"
        assert cells[dgen.OPT_LEVEL_NAMES[dgen.OPT_FUSED]]["engine"] == "fused"
        assert cells[TICK_BASELINE]["engine"] == "tick"
    for summary_key in ("speedup_fused_vs_tick", "speedup_fused_vs_inlining"):
        summary = record[summary_key]
        assert set(summary["per_program"]) == {"sampling", "conga"}
        assert summary["geomean"] > 0 and summary["aggregate"] > 0
    drmt = record["drmt"]
    assert set(drmt["programs"]) == {"simple_router"}
    for cells in drmt["programs"].values():
        for engine in DRMT_ENGINES:
            assert cells[engine]["packets_per_sec"] > 0

    # The record round-trips through JSON and renders as a table.
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(record))
    assert json.loads(path.read_text()) == record
    rendered = format_table(record)
    assert "fused vs tick(level 2)" in rendered
    assert "dRMT" in rendered


@pytest.mark.bench_smoke
def test_fused_rmt_beats_tick_interpreter(bench_rounds):
    """Perf-regression guard: the fused RMT loop must stay well ahead of tick.

    The measured margin is ~5-10x; asserting a loose 1.5x keeps the guard
    meaningful while staying robust to noisy CI machines.
    """
    record = run_sweep(
        phvs=2000, rounds=bench_rounds, program_names=["sampling"], drmt_names=[]
    )
    ratio = record["speedup_fused_vs_tick"]["per_program"]["sampling"]
    assert ratio > 1.5, f"fused RMT only {ratio:.2f}x over the tick interpreter"


@pytest.mark.bench_smoke
def test_sharded_cell_record_shape(bench_rounds):
    """The sharded scaling cell measures every engine/transport on a tiny trace.

    In-process here (below the pool threshold) so the shape check stays
    fast and deterministic on any machine; the committed BENCH_PR4.json
    carries the full-size pool run.
    """
    record = measure_sharded_cells(phvs=2000, rounds=bench_rounds, workers=1)
    assert set(record["cells"]) == set(SHARDED_ENGINES)
    for cells in record["cells"].values():
        assert cells["phvs_per_sec"] > 0
    assert record["cells"]["sharded"]["engine"] == "sharded[fused]"
    assert record["cells"]["sharded"]["transport"] == "pickle"
    assert record["cells"]["sharded_shm"]["engine"] == "sharded[fused]"
    assert record["cells"]["sharded_shm"]["transport"] == "shm"
    assert record["cells"]["fused"]["engine"] == "fused"
    assert record["speedup_sharded_vs_fused"] > 0
    assert record["speedup_sharded_vs_generic"] > 0
    assert record["speedup_shm_vs_pickle"] > 0
    rendered = format_table({**_minimal_record(), "sharded": record})
    assert "sharded scaling cell" in rendered
    assert "shm/pickle" in rendered


def _minimal_record() -> dict:
    return {
        "phvs_per_program": 0,
        "rounds": 1,
        "levels": [],
        "programs": {},
        "speedup_fused_vs_tick": {"per_program": {}, "geomean": 1.0, "aggregate": 1.0},
        "speedup_fused_vs_inlining": {"per_program": {}, "geomean": 1.0, "aggregate": 1.0},
    }


@pytest.mark.bench_smoke
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="sharded perf guard needs at least 4 cores",
)
def test_sharded_beats_generic_on_the_1m_phv_cell(bench_rounds):
    """Perf guard: sharded with 4 workers must stay well ahead of generic.

    On a ≥4-core machine the 4-shard pool should beat the single-threaded
    generic driver by far more than 1.5x on the 1M-PHV flow-counters cell;
    the loose bound keeps the guard robust to noisy CI machines.  Honors
    ``DRUZHBA_BENCH_ROUNDS`` like every other cell.
    """
    record = measure_sharded_cells(phvs=1_000_000, rounds=bench_rounds, workers=4)
    ratio = record["speedup_sharded_vs_generic"]
    assert ratio > 1.5, f"sharded only {ratio:.2f}x over the generic driver"


@pytest.mark.bench_smoke
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="shared-memory transport perf guard needs at least 4 cores",
)
def test_shm_transport_beats_pickle_on_the_1m_phv_cell(bench_rounds):
    """Perf guard: the shm transport must beat pickle on the 1M-PHV cell.

    The shared-memory transport exists to cut the pool's pickle-per-shard
    serialization tax, so on a ≥4-core machine it must come out ahead of the
    pickle transport on the same sharded configuration.  The margin is
    parity-plus rather than a hard multiple — the win is the removed
    serialization, which scales with trace size, not core count — so this
    guard always uses best-of-3 rounds (noisy shared runners would otherwise
    flip a few-percent margin at one round).
    """
    record = measure_sharded_cells(
        phvs=1_000_000, rounds=max(bench_rounds, 3), workers=4
    )
    ratio = record["speedup_shm_vs_pickle"]
    assert ratio > 1.0, f"shm transport only {ratio:.2f}x over the pickle transport"


@pytest.mark.bench_smoke
def test_fused_drmt_beats_tick_interpreter(bench_rounds):
    """Perf-regression guard: the fused dRMT loop must stay ahead of tick.

    The measured margin is ~2-3x; asserting a loose 1.2x keeps the guard
    robust to noise.
    """
    record = run_sweep(
        phvs=200,
        rounds=bench_rounds,
        program_names=[],
        drmt_packets=2000,
        drmt_names=["telemetry_pipeline"],
    )
    assert record["programs"] == {}
    ratio = record["drmt"]["speedup_fused_vs_tick"]["telemetry_pipeline"]
    assert ratio > 1.2, f"fused dRMT only {ratio:.2f}x over the tick interpreter"
