"""Case-study reproduction (paper §5.2): validating a corpus of machine-code programs.

The paper reports that over 120 Chipmunk-generated machine-code programs were
validated through Druzhba, with 8 failures: 2 from missing output-multiplexer
machine-code pairs and 6 from machine code that only satisfied a limited
range of container values.  This benchmark rebuilds a corpus of the same
shape (see :mod:`repro.programs.case_study`), fuzzes every member over the
full 10-bit input range, asserts the failure breakdown, and prints the
paper-vs-reproduction table recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.programs.case_study import build_corpus, run_case_study
from repro.testing import FailureClass


@pytest.fixture(scope="module")
def corpus():
    return build_corpus()


def test_case_study_campaign(benchmark, corpus, case_study_phvs, capsys):
    """Fuzz the full corpus once and compare the outcome counts with the paper."""
    result = benchmark.pedantic(
        run_case_study,
        kwargs={"num_phvs": case_study_phvs, "seed": 0, "entries": corpus},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    # Corpus shape matches the paper's study.
    assert result.total_programs > 120
    assert result.summary.passed == result.total_programs - 8
    assert result.summary.count(FailureClass.MISSING_MACHINE_CODE) == 2
    assert result.summary.count(FailureClass.VALUE_RANGE) == 6
    assert result.summary.count(FailureClass.OUTPUT_MISMATCH) == 0
    assert result.expected_matches_observed()

    benchmark.extra_info["programs"] = result.total_programs
    benchmark.extra_info["phvs_per_program"] = case_study_phvs
    benchmark.extra_info["failures"] = result.summary.failed

    with capsys.disabled():
        print("\nCase study reproduction (paper §5.2)")
        for row in result.table():
            print(f"  {row['quantity']:55s} paper: {str(row['paper']):9s} "
                  f"reproduced: {row['reproduced']}")
        print("  per-family (passed/total): "
              + ", ".join(f"{family}={passed}/{total}"
                          for family, (passed, total) in sorted(result.per_family.items())))


def test_single_program_fuzzing_throughput(benchmark, case_study_phvs):
    """Micro-benchmark: one full fuzzing run (dgen + dsim + spec + comparison)."""
    from repro.programs import get_program
    from repro.testing import FuzzConfig, FuzzTester

    program = get_program("stateful_firewall")
    tester = FuzzTester(
        program.pipeline_spec(),
        program.specification(),
        config=FuzzConfig(num_phvs=case_study_phvs, seed=7),
        traffic_generator=program.traffic_generator(seed=7),
        initial_state=program.initial_pipeline_state(),
    )
    machine_code = program.machine_code()
    outcome = benchmark(tester.test, machine_code)
    assert outcome.passed
