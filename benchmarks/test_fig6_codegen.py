"""Figure 6 reproduction: the pipeline description at the three optimisation levels.

Figure 6 of the paper shows how the generated code shrinks from version 1
(unoptimised: machine-code hash lookups and opcode-dispatching helpers)
through version 2 (SCC propagation: specialised single-expression helpers) to
version 3 (helpers inlined away).  This benchmark regenerates the three
versions for the same small configuration, benchmarks dgen itself, and checks
the structural properties that make the figure's point:

* version 1 contains machine-code (``values[...]``) lookups, versions 2 and 3
  contain none;
* version 2 still defines helper functions, version 3 does not;
* code size strictly decreases from version to version.
"""

from __future__ import annotations

import pytest

from repro import atoms, dgen
from repro.chipmunk import MachineCodeBuilder
from repro.hardware import PipelineSpec
from repro.machine_code import naming

LEVEL_IDS = ["version1_unoptimized", "version2_scc", "version3_scc_inlining", "fused_opt3"]

#: The paper's three versions (Figure 6 proper); opt level 3 is this
#: reproduction's extension and is excluded from the code-size monotonicity.
PAPER_LEVELS = (dgen.OPT_UNOPTIMIZED, dgen.OPT_SCC, dgen.OPT_SCC_INLINE)


@pytest.fixture(scope="module")
def figure6_configuration():
    """The small configuration whose generated code the figure inspects."""
    spec = PipelineSpec(
        depth=1,
        width=1,
        stateful_alu=atoms.get_atom("raw"),
        stateless_alu=atoms.get_atom("stateless_arith"),
        name="figure6",
    )
    builder = MachineCodeBuilder(spec)
    builder.configure_raw(0, 0, use_state=True, rhs=("pkt", 0), input_containers=[0, 0])
    builder.route_output(0, 0, kind=naming.STATEFUL, slot=0)
    return spec, builder.build()


@pytest.mark.parametrize("level", dgen.OPT_LEVELS, ids=LEVEL_IDS)
def test_fig6_generation_time(benchmark, figure6_configuration, level):
    """Benchmark dgen itself (generation + compilation) at each level."""
    spec, machine_code = figure6_configuration
    description = benchmark(dgen.generate, spec, machine_code, opt_level=level)
    benchmark.extra_info["source_lines"] = description.source_line_count()
    benchmark.extra_info["functions"] = description.function_count()


def test_fig6_code_shape(figure6_configuration, capsys):
    """Assert and print the structural differences between the three versions."""
    spec, machine_code = figure6_configuration
    descriptions = {
        level: dgen.generate(spec, machine_code, opt_level=level) for level in dgen.OPT_LEVELS
    }

    version1 = descriptions[dgen.OPT_UNOPTIMIZED]
    version2 = descriptions[dgen.OPT_SCC]
    version3 = descriptions[dgen.OPT_SCC_INLINE]
    fused = descriptions[dgen.OPT_FUSED]

    # Version 1: machine code is read from the values hash table at runtime.
    assert 'values["pipeline_stage_0_' in version1.source
    # Versions 2 and 3: SCC propagation removed every machine-code lookup.
    assert 'values["' not in version2.source
    assert 'values["' not in version3.source
    # Version 2 keeps helper functions; version 3 inlines them away.
    helper_name = "stage_0_stateful_alu_0_mux3_0"
    assert helper_name in version2.source
    assert helper_name not in version3.source
    # The fused extension keeps version 3's ALU code and adds the trace loop.
    assert helper_name not in fused.source
    assert "def run_trace(inputs, state, values):" in fused.source
    # Code size decreases monotonically across the paper's versions (the
    # figure's visual point); the fused level trades a slightly larger
    # description for the generated driver loop.
    sizes = [descriptions[level].source_line_count() for level in PAPER_LEVELS]
    assert sizes[0] > sizes[1] > sizes[2]
    functions = [descriptions[level].function_count() for level in PAPER_LEVELS]
    assert functions[0] > functions[1] > functions[2]
    assert fused.source_line_count() > version3.source_line_count()

    with capsys.disabled():
        print("\nFigure 6 reproduction (code-size metrics)")
        print(f"{'version':28s} {'non-blank lines':>16s} {'functions':>10s}")
        for level, label in zip(dgen.OPT_LEVELS, LEVEL_IDS):
            description = descriptions[level]
            print(f"{label:28s} {description.source_line_count():>16d} "
                  f"{description.function_count():>10d}")
