"""Ablation: how pipeline dimensions and ALU complexity affect simulation runtime.

Section 5.1 of the paper observes, qualitatively, that

    "programs ... that showed the most significant improvements due to our
    optimizations were the ones with the highest number of pipeline depths
    and widths ...  The ALUs used in each benchmark varied significantly in
    complexity and also affected pipeline generation but we found that it had
    a much lower impact on performance."

This ablation makes both observations measurable in the reproduction: the
same pass-through workload is simulated while sweeping (a) the pipeline
dimensions with the ALU fixed and (b) the stateful atom with the dimensions
fixed.
"""

from __future__ import annotations

import gc
from collections import defaultdict
from typing import Dict

import pytest

from repro import atoms, dgen
from repro.dsim import RMTSimulator, TrafficGenerator
from repro.hardware import PipelineSpec

#: PHVs per ablation point (smaller than Table 1: there are many points).
ABLATION_PHVS = 2000

DIMENSION_SWEEP = [(1, 1), (2, 2), (4, 2), (4, 5)]
ATOM_SWEEP = ["raw", "pred_raw", "if_else_raw", "sub", "nested_if", "pair"]

_DIMENSION_RESULTS: Dict[str, Dict[int, float]] = defaultdict(dict)


def _build(depth, width, atom_name, opt_level):
    spec = PipelineSpec(
        depth=depth,
        width=width,
        stateful_alu=atoms.get_atom(atom_name),
        stateless_alu=atoms.get_atom("stateless_full"),
        name=f"ablation_{depth}x{width}_{atom_name}",
    )
    machine_code = spec.passthrough_machine_code()
    description = dgen.generate(spec, machine_code, opt_level=opt_level)
    inputs = TrafficGenerator(num_containers=width, seed=13).generate(ABLATION_PHVS)
    return description, inputs


def _run_gc_shielded(description, inputs):
    """One simulation run with the GC kept out of the measured region.

    These are one-shot cells (``rounds=1``): a gen-2 collection triggered by
    garbage the rest of the test session left behind would otherwise land in
    whichever cell runs first and dwarf its real runtime — the same shielding
    ``bench_smoke._best_of`` and the Table-1 cells apply.
    """
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        RMTSimulator(description).run(inputs)
    finally:
        if gc_was_enabled:
            gc.enable()


@pytest.mark.parametrize("opt_level", [dgen.OPT_UNOPTIMIZED, dgen.OPT_SCC_INLINE],
                         ids=["unoptimized", "optimized"])
@pytest.mark.parametrize("dims", DIMENSION_SWEEP, ids=[f"{d}x{w}" for d, w in DIMENSION_SWEEP])
def test_dimension_sweep(benchmark, dims, opt_level):
    """Runtime versus pipeline depth x width, if_else_raw atom fixed."""
    depth, width = dims
    description, inputs = _build(depth, width, "if_else_raw", opt_level)
    benchmark.pedantic(
        lambda: _run_gc_shielded(description, inputs), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["alus_per_phv"] = depth * width * 2
    _DIMENSION_RESULTS[f"{depth}x{width}"][opt_level] = benchmark.stats.stats.mean * 1000.0


@pytest.mark.parametrize("atom_name", ATOM_SWEEP)
def test_atom_complexity_sweep(benchmark, atom_name):
    """Runtime versus stateful-atom complexity, 2x2 pipeline fixed, optimised code."""
    description, inputs = _build(2, 2, atom_name, dgen.OPT_SCC_INLINE)
    benchmark.pedantic(
        lambda: _run_gc_shielded(description, inputs), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["holes_per_alu"] = len(atoms.get_atom(atom_name).holes)


def test_dimension_effect_dominates(capsys):
    """Larger pipelines benefit more from optimisation than small ones (paper §5.1)."""
    if len(_DIMENSION_RESULTS) < len(DIMENSION_SWEEP):
        pytest.skip("run together with the dimension-sweep benchmarks")
    smallest = _DIMENSION_RESULTS["1x1"]
    largest = _DIMENSION_RESULTS["4x5"]
    saving_small = smallest[dgen.OPT_UNOPTIMIZED] - smallest[dgen.OPT_SCC_INLINE]
    saving_large = largest[dgen.OPT_UNOPTIMIZED] - largest[dgen.OPT_SCC_INLINE]
    with capsys.disabled():
        print("\nAblation: optimisation saving by pipeline size")
        for dims, timings in _DIMENSION_RESULTS.items():
            print(f"  {dims:5s} unoptimized {timings[dgen.OPT_UNOPTIMIZED]:8.1f} ms, "
                  f"optimized {timings[dgen.OPT_SCC_INLINE]:8.1f} ms")
    assert saving_large > saving_small
