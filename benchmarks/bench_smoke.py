"""bench_smoke: a scaled-down Table-1 sweep that records the perf trajectory.

Runs every Table-1 benchmark program at every dgen optimisation level for a
modest PHV count and writes per-(program, level) throughput (PHVs/sec) to a
JSON file — ``BENCH_PR1.json`` by default, establishing the perf trajectory
file that future PRs extend (``BENCH_PR2.json``, ...).  The headline metric
is the fused (opt level 3) speedup over ``scc_propagation_and_inlining``
(opt level 2), reported per program plus as geomean and aggregate
(total-PHVs / total-seconds) ratios.

Usage::

    PYTHONPATH=src python benchmarks/bench_smoke.py [--phvs 3000] [--rounds 3]
        [--programs sampling,conga] [--output BENCH_PR1.json]

A pytest-marked wrapper lives in ``test_bench_smoke.py``; run it with
``pytest -m bench_smoke``.
"""

from __future__ import annotations

import argparse
import json
import math
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro import dgen
from repro.dsim import RMTSimulator
from repro.programs import TABLE1_ORDER, get_program

#: Levels swept, in ladder order.
LEVELS: Dict[int, str] = {level: dgen.OPT_LEVEL_NAMES[level] for level in dgen.OPT_LEVELS}


def measure_cell(program, level: int, phvs: int, rounds: int) -> Dict[str, float]:
    """Best-of-``rounds`` simulation throughput for one (program, level) cell."""
    description = dgen.generate(
        program.pipeline_spec(), program.machine_code(), opt_level=level
    )
    inputs = program.traffic_generator(seed=42).generate(phvs)
    best = math.inf
    for _ in range(rounds):
        simulator = RMTSimulator(
            description, initial_state=program.initial_pipeline_state()
        )
        start = time.perf_counter()
        result = simulator.run(inputs)
        best = min(best, time.perf_counter() - start)
        assert len(result.output_trace) == phvs
    return {"seconds": best, "phvs_per_sec": phvs / best}


def run_sweep(
    phvs: int, rounds: int, program_names: Optional[Sequence[str]] = None
) -> dict:
    """Sweep programs × levels and assemble the trajectory record."""
    names: List[str] = list(program_names) if program_names else list(TABLE1_ORDER)
    programs: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in names:
        program = get_program(name)
        programs[name] = {
            label: measure_cell(program, level, phvs, rounds)
            for level, label in LEVELS.items()
        }

    baseline = LEVELS[dgen.OPT_SCC_INLINE]
    fused = LEVELS[dgen.OPT_FUSED]
    per_program = {
        name: cells[baseline]["seconds"] / cells[fused]["seconds"]
        for name, cells in programs.items()
    }
    total_baseline = sum(cells[baseline]["seconds"] for cells in programs.values())
    total_fused = sum(cells[fused]["seconds"] for cells in programs.values())
    return {
        "benchmark": "table1_smoke",
        "pr": 1,
        "phvs_per_program": phvs,
        "rounds": rounds,
        "levels": list(LEVELS.values()),
        "programs": programs,
        "speedup_fused_vs_inlining": {
            "per_program": per_program,
            "geomean": math.exp(
                sum(math.log(ratio) for ratio in per_program.values()) / len(per_program)
            ),
            "aggregate": total_baseline / total_fused,
        },
    }


_SHORT_LABELS = {
    "unoptimized": "unopt",
    "scc_propagation": "scc",
    "scc_propagation_and_inlining": "scc+inline",
    "fused_pipeline": "fused",
}


def format_table(record: dict) -> str:
    """Human-readable rendering of a sweep record."""
    lines = [
        f"bench_smoke: {record['phvs_per_program']} PHVs/program, "
        f"best of {record['rounds']} round(s)",
        f"{'Program':20s} "
        + "".join(f"{_SHORT_LABELS.get(label, label):>14s}" for label in record["levels"])
        + f"{'fused/inline':>14s}",
    ]
    speedups = record["speedup_fused_vs_inlining"]["per_program"]
    for name, cells in record["programs"].items():
        rates = "".join(f"{cells[label]['phvs_per_sec']:>12.0f}/s" for label in record["levels"])
        lines.append(f"{name:20s} {rates}{speedups[name]:>13.2f}x")
    summary = record["speedup_fused_vs_inlining"]
    lines.append(
        f"fused vs scc+inlining: geomean {summary['geomean']:.2f}x, "
        f"aggregate {summary['aggregate']:.2f}x"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_smoke", description="Scaled-down Table-1 sweep (all opt levels)."
    )
    parser.add_argument("--phvs", type=int, default=3000, help="PHVs per program")
    parser.add_argument("--rounds", type=int, default=3, help="timing rounds (best kept)")
    parser.add_argument(
        "--programs", help="comma-separated program subset (default: all 12)"
    )
    parser.add_argument("--output", default="BENCH_PR1.json", help="output JSON path")
    args = parser.parse_args(argv)

    names = args.programs.split(",") if args.programs else None
    record = run_sweep(args.phvs, args.rounds, names)
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(format_table(record))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
