"""bench_smoke: a scaled-down benchmark sweep that records the perf trajectory.

Runs every Table-1 benchmark program at every dgen optimisation level and
writes per-(program, level) throughput (PHVs/sec) to a JSON file —
``BENCH_PR4.json`` by default, extending the trajectory started by
``BENCH_PR1.json``–``BENCH_PR3.json``.  Two headline ratios are reported per
program:

* ``fused vs tick`` — the generated ``run_trace`` loop (opt level 3, with
  the peephole pass) against the paper's tick-accurate interpreter driving
  the opt-level-2 description.  This is the like-for-like continuation of
  the PR-1 trajectory, whose level-0..2 cells ran the tick interpreter.
* ``fused vs inlining`` — against the opt-level-2 description under the
  engine layer's *generic sequential driver* (the new default below level
  3), i.e. the remaining win of generating the driver itself.

Since PR 2 the sweep also covers the dRMT engine: packets/sec for the
bundled P4 programs under the tick, generic and fused drivers (the fused
cells run the dict-specialised exact-match lookup since PR 3).

Since PR 3 the sweep adds the *sharded* 1M-PHV cell: the flow-counters
workload (per-flow state, flow id in container 0) once under the generic
driver, once under the single-threaded fused loop, and once under the
sharded meta-driver with 4 shards across a worker pool — the scaling
headline for >1M-PHV traces.  ``--sharded-phvs 0`` skips it.

Since PR 4 the sharded cell is measured under *both* shard transports: the
default pickle pool channel and the ``shm`` shared-memory transport
(``repro.engine.transport``), so the trajectory records what moving the
serialization off the parent's thread buys.

Usage::

    PYTHONPATH=src python benchmarks/bench_smoke.py [--phvs 3000] [--rounds 3]
        [--programs sampling,conga] [--sharded-phvs 1000000]
        [--output BENCH_PR4.json]

``--rounds`` defaults to the ``DRUZHBA_BENCH_ROUNDS`` environment variable
(default 1); each cell keeps the best of that many rounds.  A pytest-marked
wrapper lives in ``test_bench_smoke.py``; run it with
``pytest -m bench_smoke``.
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro import dgen
from repro.drmt import DRMTSimulator, DrmtHardwareParams, generate_bundle
from repro.drmt.traffic import PacketGenerator
from repro.dsim import RMTSimulator
from repro.p4 import samples
from repro.programs import TABLE1_ORDER, get_program
from repro.programs.variants import make_flow_counters_variant

#: Levels swept, in ladder order.
LEVELS: Dict[int, str] = {level: dgen.OPT_LEVEL_NAMES[level] for level in dgen.OPT_LEVELS}
#: Extra cell: the opt-level-2 description under the tick-accurate driver
#: (the PR-1 baseline, where levels 0-2 always ran the tick interpreter).
TICK_BASELINE = "tick_level2"

#: dRMT programs swept (name -> (program factory, table entries)).
DRMT_PROGRAMS = {
    "simple_router": (samples.simple_router, samples.SIMPLE_ROUTER_ENTRIES),
    "telemetry_pipeline": (samples.telemetry_pipeline, samples.TELEMETRY_ENTRIES),
}
DRMT_ENGINES = ("tick", "generic", "fused")

#: Default timing rounds (CI can raise via the environment).
DEFAULT_ROUNDS = max(1, int(os.environ.get("DRUZHBA_BENCH_ROUNDS", "1")))


def _best_of(rounds: int, run) -> float:
    """Best-of-``rounds`` wall time of ``run`` with the GC kept out.

    Sub-5ms cells are otherwise at the mercy of collections triggered by
    garbage the rest of a test session left behind (a single gen-2 pause can
    dwarf the fused loop's whole runtime).
    """
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        best = math.inf
        for _ in range(rounds):
            start = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - start)
        return best
    finally:
        if gc_was_enabled:
            gc.enable()


def measure_cell(
    program, level: int, phvs: int, rounds: int, tick_accurate: bool = False
) -> Dict[str, float]:
    """Best-of-``rounds`` simulation throughput for one (program, level) cell."""
    description = dgen.generate(
        program.pipeline_spec(), program.machine_code(), opt_level=level
    )
    inputs = program.traffic_generator(seed=42).generate(phvs)
    engine = None

    def run():
        nonlocal engine
        simulator = RMTSimulator(
            description, initial_state=program.initial_pipeline_state()
        )
        result = simulator.run(inputs, tick_accurate=tick_accurate)
        assert len(result.output_trace) == phvs
        engine = result.engine

    best = _best_of(rounds, run)
    return {"seconds": best, "phvs_per_sec": phvs / best, "engine": engine}


def measure_drmt_cell(name: str, engine: str, packets: int, rounds: int) -> Dict[str, float]:
    """Best-of-``rounds`` dRMT throughput for one (program, engine) cell."""
    build_program, entries = DRMT_PROGRAMS[name]
    bundle = generate_bundle(build_program(), DrmtHardwareParams(num_processors=4))
    if engine == "fused":
        bundle.fused_program()  # build outside the measured region
    trace = PacketGenerator(bundle.program, seed=42).generate(packets)

    def run():
        simulator = DRMTSimulator(bundle, table_entries=entries, engine=engine)
        result = simulator.run_packets(trace)
        assert result.packets_processed == packets
        assert result.engine == engine

    best = _best_of(rounds, run)
    return {"seconds": best, "packets_per_sec": packets / best}


#: The sharded cell's workload: per-flow accumulators, flow id in container 0.
SHARDED_FLOWS = 8
SHARDED_SHARDS = 4
SHARDED_ENGINES = ("generic", "fused", "sharded", "sharded_shm")


def measure_sharded_cells(
    phvs: int, rounds: int, workers: int = 4, shards: int = SHARDED_SHARDS
) -> Dict[str, object]:
    """The >1M-PHV scaling cell: generic vs fused vs sharded on one workload.

    The flow-counters program keeps one accumulator per flow (state cells
    flow-owned by construction), so hash-partitioning the trace on the flow
    container is bit-for-bit safe and the sharded meta-driver can fan the
    shards across a process pool.  The sharded configuration runs twice —
    once per shard transport (``sharded`` = the pickle pool channel,
    ``sharded_shm`` = flat shared-memory buffers) — so the cell records the
    serialization tax directly.  ``workers`` caps the pool; the recorded
    ``cpu_count`` tells readers how much parallelism the machine offered.
    """
    program = make_flow_counters_variant(SHARDED_FLOWS)
    description = dgen.generate(
        program.pipeline_spec(), program.machine_code(), opt_level=dgen.OPT_FUSED
    )
    inputs = program.traffic_generator(seed=42).generate(phvs)
    sharding = dict(engine="sharded", shards=shards, workers=workers, shard_key=[0])
    simulators = {
        "generic": RMTSimulator(description, engine="generic"),
        "fused": RMTSimulator(description, engine="fused"),
        "sharded": RMTSimulator(description, transport="pickle", **sharding),
        "sharded_shm": RMTSimulator(description, transport="shm", **sharding),
    }
    transports = {"sharded": "pickle", "sharded_shm": "shm"}
    cells: Dict[str, Dict[str, float]] = {}
    for label, simulator in simulators.items():
        engine_seen = None

        def run():
            nonlocal engine_seen
            result = simulator.run(inputs)
            assert len(result.output_trace) == phvs
            engine_seen = result.engine

        best = _best_of(rounds, run)
        cells[label] = {"seconds": best, "phvs_per_sec": phvs / best, "engine": engine_seen}
        if label in transports:
            cells[label]["transport"] = transports[label]
    return {
        "program": program.name,
        "phvs": phvs,
        "flows": SHARDED_FLOWS,
        "shards": shards,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "cells": cells,
        "speedup_sharded_vs_fused": cells["fused"]["seconds"] / cells["sharded"]["seconds"],
        "speedup_sharded_vs_generic": cells["generic"]["seconds"] / cells["sharded"]["seconds"],
        "speedup_shm_vs_pickle": cells["sharded"]["seconds"] / cells["sharded_shm"]["seconds"],
    }


def _ratios(programs: Dict[str, Dict[str, Dict[str, float]]], baseline: str) -> dict:
    if not programs:
        return {"per_program": {}, "geomean": 1.0, "aggregate": 1.0}
    fused = LEVELS[dgen.OPT_FUSED]
    per_program = {
        name: cells[baseline]["seconds"] / cells[fused]["seconds"]
        for name, cells in programs.items()
    }
    total_baseline = sum(cells[baseline]["seconds"] for cells in programs.values())
    total_fused = sum(cells[fused]["seconds"] for cells in programs.values())
    return {
        "per_program": per_program,
        "geomean": math.exp(
            sum(math.log(ratio) for ratio in per_program.values()) / len(per_program)
        ),
        "aggregate": total_baseline / total_fused,
    }


def run_sweep(
    phvs: int,
    rounds: int,
    program_names: Optional[Sequence[str]] = None,
    drmt_packets: int = 2000,
    drmt_names: Optional[Sequence[str]] = None,
    sharded_phvs: int = 0,
    sharded_workers: int = 4,
) -> dict:
    """Sweep programs × levels (plus the dRMT engines) and assemble the record.

    ``program_names``/``drmt_names`` default (``None``) to the full program
    sets; pass an explicit empty list to skip that side of the sweep.
    ``sharded_phvs`` > 0 adds the sharded scaling cell at that trace length.
    """
    names: List[str] = (
        list(program_names) if program_names is not None else list(TABLE1_ORDER)
    )
    programs: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in names:
        program = get_program(name)
        cells = {
            label: measure_cell(program, level, phvs, rounds)
            for level, label in LEVELS.items()
        }
        cells[TICK_BASELINE] = measure_cell(
            program, dgen.OPT_SCC_INLINE, phvs, rounds, tick_accurate=True
        )
        programs[name] = cells

    drmt: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in drmt_names if drmt_names is not None else sorted(DRMT_PROGRAMS):
        drmt[name] = {
            engine: measure_drmt_cell(name, engine, drmt_packets, rounds)
            for engine in DRMT_ENGINES
        }

    record = {
        "benchmark": "table1_smoke",
        "pr": 4,
        "phvs_per_program": phvs,
        "rounds": rounds,
        "levels": list(LEVELS.values()) + [TICK_BASELINE],
        "programs": programs,
        "speedup_fused_vs_tick": _ratios(programs, TICK_BASELINE),
        "speedup_fused_vs_inlining": _ratios(programs, LEVELS[dgen.OPT_SCC_INLINE]),
        "drmt": {
            "packets_per_program": drmt_packets,
            "num_processors": 4,
            "programs": drmt,
        },
    }
    if drmt:
        record["drmt"]["speedup_fused_vs_tick"] = {
            name: cells["tick"]["seconds"] / cells["fused"]["seconds"]
            for name, cells in drmt.items()
        }
        record["drmt"]["speedup_generic_vs_tick"] = {
            name: cells["tick"]["seconds"] / cells["generic"]["seconds"]
            for name, cells in drmt.items()
        }
    if sharded_phvs > 0:
        record["sharded"] = measure_sharded_cells(
            sharded_phvs, rounds, workers=sharded_workers
        )
    return record


_SHORT_LABELS = {
    "unoptimized": "unopt",
    "scc_propagation": "scc",
    "scc_propagation_and_inlining": "scc+inline",
    "fused_pipeline": "fused",
    TICK_BASELINE: "tick(lvl2)",
}


def format_table(record: dict) -> str:
    """Human-readable rendering of a sweep record."""
    lines = [
        f"bench_smoke: {record['phvs_per_program']} PHVs/program, "
        f"best of {record['rounds']} round(s)",
        f"{'Program':20s} "
        + "".join(f"{_SHORT_LABELS.get(label, label):>14s}" for label in record["levels"])
        + f"{'fused/tick':>12s}",
    ]
    speedups = record["speedup_fused_vs_tick"]["per_program"]
    for name, cells in record["programs"].items():
        rates = "".join(f"{cells[label]['phvs_per_sec']:>12.0f}/s" for label in record["levels"])
        lines.append(f"{name:20s} {rates}{speedups[name]:>11.2f}x")
    tick_summary = record["speedup_fused_vs_tick"]
    inline_summary = record["speedup_fused_vs_inlining"]
    lines.append(
        f"fused vs tick(level 2):  geomean {tick_summary['geomean']:.2f}x, "
        f"aggregate {tick_summary['aggregate']:.2f}x"
    )
    lines.append(
        f"fused vs scc+inlining:   geomean {inline_summary['geomean']:.2f}x, "
        f"aggregate {inline_summary['aggregate']:.2f}x"
    )
    drmt = record.get("drmt", {})
    if drmt.get("programs"):
        lines.append(
            f"dRMT ({drmt['packets_per_program']} packets, "
            f"{drmt['num_processors']} processors):"
        )
        for name, cells in drmt["programs"].items():
            rates = "".join(
                f"{engine} {cells[engine]['packets_per_sec']:>8.0f}/s  "
                for engine in DRMT_ENGINES
            )
            ratio = drmt["speedup_fused_vs_tick"][name]
            lines.append(f"  {name:20s} {rates}fused/tick {ratio:.2f}x")
    sharded = record.get("sharded")
    if sharded:
        lines.append(
            f"sharded scaling cell ({sharded['program']}, {sharded['phvs']} PHVs, "
            f"{sharded['shards']} shards, {sharded['workers']} workers, "
            f"{sharded['cpu_count']} cores):"
        )
        rates = "".join(
            f"{engine} {sharded['cells'][engine]['phvs_per_sec']:>9.0f}/s  "
            for engine in SHARDED_ENGINES
        )
        lines.append(
            f"  {rates}sharded/fused {sharded['speedup_sharded_vs_fused']:.2f}x, "
            f"sharded/generic {sharded['speedup_sharded_vs_generic']:.2f}x, "
            f"shm/pickle {sharded.get('speedup_shm_vs_pickle', 1.0):.2f}x"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_smoke",
        description="Scaled-down benchmark sweep (all opt levels, both engines).",
    )
    parser.add_argument("--phvs", type=int, default=3000, help="PHVs per RMT program")
    parser.add_argument(
        "--rounds", type=int, default=DEFAULT_ROUNDS,
        help="timing rounds, best kept (default: DRUZHBA_BENCH_ROUNDS or 1)",
    )
    parser.add_argument(
        "--programs", help="comma-separated Table-1 program subset (default: all 12)"
    )
    parser.add_argument(
        "--drmt-packets", type=int, default=2000, help="packets per dRMT program"
    )
    parser.add_argument(
        "--sharded-phvs", type=int, default=1_000_000,
        help="trace length for the sharded scaling cell (0 skips it)",
    )
    parser.add_argument(
        "--sharded-workers", type=int, default=4,
        help="worker processes for the sharded scaling cell",
    )
    parser.add_argument("--output", default="BENCH_PR4.json", help="output JSON path")
    args = parser.parse_args(argv)

    names = args.programs.split(",") if args.programs else None
    record = run_sweep(
        args.phvs,
        args.rounds,
        names,
        drmt_packets=args.drmt_packets,
        sharded_phvs=args.sharded_phvs,
        sharded_workers=args.sharded_workers,
    )
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(format_table(record))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
