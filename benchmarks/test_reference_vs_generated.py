"""Ablation: generated-code simulation vs. direct interpretation.

Druzhba's central design decision is that dgen *generates code* for the
configured pipeline instead of interpreting the ALU DSL and machine code at
simulation time.  This benchmark quantifies that decision in the
reproduction by simulating the same workload three ways:

* the interpreted :class:`~repro.dsim.ReferenceSimulator` (no codegen at all),
* dgen level 0 (generated code, machine code looked up at runtime),
* dgen level 2 (generated code, SCC propagation + inlining).

It also benchmarks the synthesis compiler, the other compile-time cost a
Chipmunk-style user pays per program.
"""

from __future__ import annotations

import pytest

from repro import atoms, dgen
from repro.chipmunk import Sketch, SynthesisConfig, SynthesisEngine
from repro.dsim import RMTSimulator, ReferenceSimulator
from repro.hardware import PipelineSpec
from repro.machine_code import naming
from repro.programs import get_program
from repro.testing import FunctionSpecification

#: PHVs per comparison point (interpretation is slow; keep this moderate).
COMPARISON_PHVS = 1000


@pytest.fixture(scope="module")
def workload():
    program = get_program("marple_tcp_nmo")
    return (
        program,
        program.pipeline_spec(),
        program.machine_code(),
        program.traffic_generator(seed=3).generate(COMPARISON_PHVS),
    )


def test_interpreted_reference(benchmark, workload):
    program, spec, machine_code, inputs = workload
    simulator = ReferenceSimulator(spec, machine_code, program.initial_pipeline_state())
    trace = benchmark.pedantic(simulator.run, args=(inputs,), rounds=1, iterations=1, warmup_rounds=0)
    assert len(trace) == COMPARISON_PHVS
    benchmark.extra_info["backend"] = "interpreted"


@pytest.mark.parametrize("level", [dgen.OPT_UNOPTIMIZED, dgen.OPT_SCC_INLINE],
                         ids=["generated_level0", "generated_level2"])
def test_generated_code(benchmark, workload, level):
    program, spec, machine_code, inputs = workload
    description = dgen.generate(spec, machine_code, opt_level=level)

    def run():
        return RMTSimulator(description, initial_state=program.initial_pipeline_state()).run(inputs)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=1)
    assert len(result.output_trace) == COMPARISON_PHVS
    benchmark.extra_info["backend"] = f"generated_opt{level}"


def test_generated_code_faster_than_interpretation(workload, capsys):
    """The reproduction preserves the paper's motivation: codegen beats interpretation."""
    import time

    program, spec, machine_code, inputs = workload

    start = time.perf_counter()
    ReferenceSimulator(spec, machine_code, program.initial_pipeline_state()).run(inputs)
    interpreted = time.perf_counter() - start

    description = dgen.generate(spec, machine_code, opt_level=dgen.OPT_SCC_INLINE)
    RMTSimulator(description, initial_state=program.initial_pipeline_state()).run(inputs)  # warm
    start = time.perf_counter()
    RMTSimulator(description, initial_state=program.initial_pipeline_state()).run(inputs)
    generated = time.perf_counter() - start

    with capsys.disabled():
        print(f"\ninterpreted reference: {interpreted * 1000:8.1f} ms for {COMPARISON_PHVS} PHVs")
        print(f"generated (level 2):   {generated * 1000:8.1f} ms for {COMPARISON_PHVS} PHVs")
        print(f"speedup: {interpreted / generated:.1f}x")
    assert generated < interpreted


def test_synthesis_compiler_cost(benchmark):
    """How long the CEGIS compiler takes for a small accumulator program."""
    spec = PipelineSpec(
        depth=1, width=1,
        stateful_alu=atoms.get_atom("raw"),
        stateless_alu=atoms.get_atom("stateless_rel"),
        name="synthesis_bench",
    )
    freeze = {
        naming.output_mux_name(0, 0): spec.output_mux_value_for(naming.STATEFUL, 0),
        naming.input_mux_name(0, naming.STATEFUL, 0, 0): 0,
        naming.input_mux_name(0, naming.STATEFUL, 0, 1): 0,
        naming.input_mux_name(0, naming.STATELESS, 0, 0): 0,
        naming.input_mux_name(0, naming.STATELESS, 0, 1): 0,
    }
    search = [naming.alu_hole_name(0, naming.STATEFUL, 0, hole)
              for hole in atoms.get_atom("raw").holes]

    def accumulate(phv, state):
        old = state["total"]
        state["total"] += phv[0]
        return [old]

    specification = FunctionSpecification(
        function=accumulate, num_containers=1, state_template={"total": 0}, relevant_containers=[0]
    )

    def synthesize():
        sketch = Sketch.from_pipeline(spec, constant_pool=[0, 1], freeze=freeze, search_names=search)
        engine = SynthesisEngine(spec, specification, sketch, SynthesisConfig(seed=1))
        return engine.synthesize()

    result = benchmark(synthesize)
    assert result.success
    benchmark.extra_info["candidates_evaluated"] = result.candidates_evaluated
