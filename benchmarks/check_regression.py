"""Compare a fresh bench_smoke record against the committed BENCH trajectory.

The repo commits one ``BENCH_PR<N>.json`` per PR (written by
``benchmarks/bench_smoke.py``); this script compares a freshly measured
record against the latest committed one and flags cells that regressed
beyond a tolerance.  Shared CI runners are noisy and differ wildly from the
machines the committed records were measured on, so the default mode is
**warn-only** with a generous tolerance: a cell counts as regressed only
when it runs at less than ``tolerance`` times the baseline throughput
(default 0.5, i.e. less than half the committed speed), and even then the
script exits 0 unless ``--strict`` is given.

Compared cells (only keys present in both records are compared):

* per-program RMT throughput at every recorded opt level (PHVs/sec);
* per-program dRMT throughput under every recorded engine (packets/sec);
* the sharded scaling cell's engines/transports (PHVs/sec).

Usage::

    PYTHONPATH=src python benchmarks/bench_smoke.py --output fresh.json ...
    python benchmarks/check_regression.py --current fresh.json
    python benchmarks/check_regression.py --current fresh.json \
        --baseline BENCH_PR3.json --tolerance 0.3 --strict
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: One comparable throughput cell: (label, baseline value, current value).
Cell = Tuple[str, float, float]


def find_latest_baseline(root: Path = REPO_ROOT) -> Optional[Path]:
    """The committed ``BENCH_PR<N>.json`` with the highest N, if any."""
    best: Optional[Tuple[int, Path]] = None
    for path in root.glob("BENCH_PR*.json"):
        match = re.fullmatch(r"BENCH_PR(\d+)\.json", path.name)
        if match is None:
            continue
        number = int(match.group(1))
        if best is None or number > best[0]:
            best = (number, path)
    return best[1] if best else None


def iter_cells(baseline: dict, current: dict) -> Iterator[Cell]:
    """Yield every throughput cell present in both records."""
    base_programs = baseline.get("programs", {})
    for name, cells in current.get("programs", {}).items():
        for level, cell in cells.items():
            base_cell = base_programs.get(name, {}).get(level)
            if base_cell and "phvs_per_sec" in base_cell and "phvs_per_sec" in cell:
                yield (
                    f"rmt/{name}/{level}",
                    base_cell["phvs_per_sec"],
                    cell["phvs_per_sec"],
                )
    base_drmt = baseline.get("drmt", {}).get("programs", {})
    for name, cells in current.get("drmt", {}).get("programs", {}).items():
        for engine, cell in cells.items():
            base_cell = base_drmt.get(name, {}).get(engine)
            if base_cell and "packets_per_sec" in base_cell and "packets_per_sec" in cell:
                yield (
                    f"drmt/{name}/{engine}",
                    base_cell["packets_per_sec"],
                    cell["packets_per_sec"],
                )
    base_sharded = baseline.get("sharded", {}).get("cells", {})
    for engine, cell in current.get("sharded", {}).get("cells", {}).items():
        base_cell = base_sharded.get(engine)
        if base_cell and "phvs_per_sec" in base_cell and "phvs_per_sec" in cell:
            yield (
                f"sharded/{engine}",
                base_cell["phvs_per_sec"],
                cell["phvs_per_sec"],
            )


def check(
    baseline: dict, current: dict, tolerance: float
) -> Tuple[List[str], List[str]]:
    """Return (report lines, regression lines) for the two records."""
    lines: List[str] = []
    regressions: List[str] = []
    compared = 0
    for label, base_value, current_value in iter_cells(baseline, current):
        if base_value <= 0:
            continue
        compared += 1
        ratio = current_value / base_value
        marker = ""
        if ratio < tolerance:
            marker = "  <-- REGRESSION"
            regressions.append(
                f"{label}: {current_value:,.0f}/s is {ratio:.2f}x of the "
                f"committed {base_value:,.0f}/s (tolerance {tolerance:.2f}x)"
            )
        lines.append(f"{label:45s} {base_value:>12,.0f}/s -> {current_value:>12,.0f}/s "
                     f"({ratio:5.2f}x){marker}")
    if compared == 0:
        lines.append("no comparable cells between the two records")
    return lines, regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_regression",
        description="Compare a bench_smoke record against the committed trajectory.",
    )
    parser.add_argument(
        "--current", required=True, help="freshly measured bench_smoke JSON"
    )
    parser.add_argument(
        "--baseline",
        help="committed record to compare against (default: the highest-numbered "
        "BENCH_PR*.json in the repo root)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.5,
        help="a cell regresses when it runs below this fraction of the baseline "
        "throughput (default 0.5 — generous, for shared CI runners)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 on regressions instead of warning (off on shared runners)",
    )
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline) if args.baseline else find_latest_baseline()
    if baseline_path is None or not baseline_path.exists():
        print("check_regression: no committed BENCH_PR*.json baseline found; skipping")
        return 0
    current = json.loads(Path(args.current).read_text())
    baseline = json.loads(baseline_path.read_text())
    print(f"baseline: {baseline_path.name} (pr {baseline.get('pr', '?')}), "
          f"current: {args.current} (pr {current.get('pr', '?')}), "
          f"tolerance {args.tolerance:.2f}x")
    lines, regressions = check(baseline, current, args.tolerance)
    print("\n".join(lines))
    if regressions:
        print(f"\n{len(regressions)} cell(s) regressed beyond tolerance:")
        print("\n".join(f"  {line}" for line in regressions))
        if args.strict:
            return 1
        print("warn-only mode: exiting 0 (pass --strict to fail the build)")
    else:
        print("\nno regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
