"""Table 1 reproduction: RMT simulation runtimes with and without optimisations.

For each of the paper's 12 packet-processing programs, the benchmark measures
the time to simulate the traffic-generator workload through the program's
pipeline at the four dgen levels:

* ``unoptimized``                     (Table 1 column "Unoptimized"),
* ``scc_propagation``                 (column "SCC propagation"),
* ``scc_propagation_and_inlining``    (column "+ Function inlining"),
* ``fused_pipeline``                  (this reproduction's opt level 3: the
  trace loop is generated code and the simulator's per-tick machinery is
  bypassed entirely — no analogue in the paper).

Invoke with::

    pytest benchmarks/test_table1_rmt_runtimes.py --benchmark-only \
        --benchmark-group-by=param:program

The pytest-benchmark table grouped by program *is* Table 1; a compact summary
(one row per program, three columns) is also printed at the end of the run.
EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

import gc
from collections import defaultdict
from typing import Dict

import pytest

from repro import dgen
from repro.dsim import RMTSimulator
from repro.programs import TABLE1_ORDER, get_program

#: Optimisation levels in Table 1 column order (plus the fused extension).
LEVELS = [dgen.OPT_UNOPTIMIZED, dgen.OPT_SCC, dgen.OPT_SCC_INLINE, dgen.OPT_FUSED]
LEVEL_LABELS = {
    dgen.OPT_UNOPTIMIZED: "unoptimized",
    dgen.OPT_SCC: "scc_propagation",
    dgen.OPT_SCC_INLINE: "scc_and_inlining",
    dgen.OPT_FUSED: "fused",
}

#: Milliseconds per (program, level), filled as benchmarks run; printed at the end.
_RESULTS: Dict[str, Dict[str, float]] = defaultdict(dict)


def _run_simulation(description, inputs, initial_state):
    # One-shot (rounds=1) cells are sensitive to GC pauses triggered by
    # garbage the rest of the suite left behind; collect up front and keep
    # the collector out of the measured region.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        simulator = RMTSimulator(description, initial_state=initial_state)
        return simulator.run(inputs)
    finally:
        if gc_was_enabled:
            gc.enable()


@pytest.mark.parametrize("level", LEVELS, ids=[LEVEL_LABELS[level] for level in LEVELS])
@pytest.mark.parametrize("program_name", TABLE1_ORDER)
def test_table1(benchmark, program_name, level, bench_phvs, bench_rounds):
    """One Table-1 cell: one program simulated at one optimisation level."""
    program = get_program(program_name)
    pipeline_spec = program.pipeline_spec()
    machine_code = program.machine_code()
    description = dgen.generate(pipeline_spec, machine_code, opt_level=level)
    inputs = program.traffic_generator(seed=42).generate(bench_phvs)
    initial_state = program.initial_pipeline_state()

    result = benchmark.pedantic(
        _run_simulation,
        args=(description, inputs, initial_state),
        rounds=bench_rounds,
        iterations=1,
        warmup_rounds=1,
    )

    assert len(result.output_trace) == bench_phvs
    benchmark.extra_info["program"] = program.display_name
    benchmark.extra_info["pipeline_depth"] = program.depth
    benchmark.extra_info["pipeline_width"] = program.width
    benchmark.extra_info["alu_name"] = program.stateful_atom
    benchmark.extra_info["phvs"] = bench_phvs
    _RESULTS[program_name][LEVEL_LABELS[level]] = benchmark.stats.stats.mean * 1000.0


def test_table1_summary(bench_phvs, capsys):
    """Print the assembled Table 1 and check the headline trend.

    The paper's headline result is that the optimised simulations are faster
    than the unoptimised one for every program.  In the paper (Rust) most of
    the win comes from SCC propagation and inlining adds little; in CPython
    the call-overhead removal of inlining is the larger effect, so the trend
    is asserted on the fully optimised column (see EXPERIMENTS.md for the
    discussion).  Absolute times differ from the paper's testbed; the *shape*
    (optimised < unoptimised, uniformly) is what is checked.
    """
    if not _RESULTS:
        pytest.skip("run together with the per-cell benchmarks")

    header = (
        f"{'Program':22s} {'Depth,Width':12s} {'ALU':12s} "
        f"{'Unoptimized':>14s} {'SCC prop.':>12s} {'+ Inlining':>12s} {'Fused':>12s}"
    )
    lines = ["", f"Table 1 reproduction ({bench_phvs} PHVs per program)", header, "-" * len(header)]
    improved = 0
    measured = 0
    for name in TABLE1_ORDER:
        if name not in _RESULTS or len(_RESULTS[name]) < len(LEVELS):
            continue
        program = get_program(name)
        row = _RESULTS[name]
        lines.append(
            f"{program.display_name:22s} {f'{program.depth},{program.width}':12s} "
            f"{program.stateful_atom:12s} "
            f"{row['unoptimized']:>12.1f}ms {row['scc_propagation']:>10.1f}ms "
            f"{row['scc_and_inlining']:>10.1f}ms {row['fused']:>10.1f}ms"
        )
        measured += 1
        if row["scc_and_inlining"] < row["unoptimized"]:
            improved += 1
    lines.append("")
    with capsys.disabled():
        print("\n".join(lines))

    if measured == len(TABLE1_ORDER):
        # The paper observes an improvement for all 12 programs; allow two
        # outliers for timer noise on the smallest pipelines.
        assert improved >= measured - 2
