"""Shared configuration for the benchmark harness.

The paper's Table 1 measures 50 000 PHVs per program.  In this pure-Python
reproduction the default is scaled down to 5 000 PHVs so the full suite
finishes in minutes; set ``DRUZHBA_BENCH_PHVS=50000`` to reproduce the paper's
workload size exactly (the relative shape of the results is unchanged).

Timing cells are one-shot by default; on noisy machines set
``DRUZHBA_BENCH_ROUNDS`` (e.g. ``=3``) and every benchmark cell — the Table-1
sweep, the dRMT throughput runs and ``bench_smoke`` — keeps the best of that
many rounds instead.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

# Make sibling helper modules (bench_smoke) importable under importlib
# import mode, which does not put the test file's directory on sys.path.
sys.path.insert(0, str(Path(__file__).resolve().parent))

#: PHVs simulated per Table-1 benchmark (paper: 50 000).
BENCH_PHVS = int(os.environ.get("DRUZHBA_BENCH_PHVS", "5000"))
#: PHVs fuzzed per case-study corpus entry.
CASE_STUDY_PHVS = int(os.environ.get("DRUZHBA_CASE_STUDY_PHVS", "150"))
#: Packets simulated per dRMT benchmark.
DRMT_PACKETS = int(os.environ.get("DRUZHBA_DRMT_PACKETS", "300"))
#: Timing rounds per benchmark cell (best-of-N; raise on noisy CI machines).
BENCH_ROUNDS = max(1, int(os.environ.get("DRUZHBA_BENCH_ROUNDS", "1")))


@pytest.fixture(scope="session")
def bench_phvs() -> int:
    """Number of PHVs per RMT benchmark run."""
    return BENCH_PHVS


@pytest.fixture(scope="session")
def bench_rounds() -> int:
    """Timing rounds per benchmark cell (``DRUZHBA_BENCH_ROUNDS``, default 1)."""
    return BENCH_ROUNDS


@pytest.fixture(scope="session")
def case_study_phvs() -> int:
    """Number of PHVs per case-study fuzzing run."""
    return CASE_STUDY_PHVS


@pytest.fixture(scope="session")
def drmt_packets() -> int:
    """Number of packets per dRMT benchmark run."""
    return DRMT_PACKETS
