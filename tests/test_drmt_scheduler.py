"""Unit tests for the dRMT scheduler (greedy and MILP back ends)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.drmt import (
    ACTION_OP,
    MATCH_OP,
    DrmtHardwareParams,
    GreedyScheduler,
    MilpScheduler,
    schedule_program,
    validate_schedule,
)
from repro.errors import SchedulingError
from repro.p4 import build_dependency_graph, parse, samples


def scheduled(program, hardware=None, use_milp=False):
    hardware = hardware or DrmtHardwareParams()
    graph = build_dependency_graph(program)
    return schedule_program(program, graph, hardware, use_milp=use_milp), graph


class TestHardwareParams:
    def test_defaults_valid(self):
        params = DrmtHardwareParams()
        assert params.num_processors >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_processors": 0},
            {"ticks_per_match": 0},
            {"ticks_per_action": 0},
            {"matches_per_cycle": 0},
            {"actions_per_cycle": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(SchedulingError):
            DrmtHardwareParams(**kwargs)


class TestGreedyScheduler:
    def test_schedule_is_feasible(self):
        program = samples.simple_router()
        schedule, graph = scheduled(program)
        assert validate_schedule(schedule, program, graph) == []

    def test_every_operation_scheduled(self):
        program = samples.simple_router()
        schedule, _ = scheduled(program)
        for table in program.table_order():
            assert (table, MATCH_OP) in schedule.start_times
            assert (table, ACTION_OP) in schedule.start_times

    def test_action_follows_own_match(self):
        program = samples.simple_router()
        hardware = DrmtHardwareParams(ticks_per_match=3)
        schedule, _ = scheduled(program, hardware)
        for table in program.table_order():
            assert schedule.start(table, ACTION_OP) >= schedule.start(table, MATCH_OP) + 3

    def test_match_dependency_enforced(self):
        program = samples.simple_router()
        schedule, graph = scheduled(program)
        # forward -> acl is a match dependency: acl's match waits for forward's action.
        assert graph.edges["forward", "acl"]["kind"] == "match"
        assert schedule.start("acl", MATCH_OP) >= schedule.end("forward", ACTION_OP)

    def test_independent_matches_can_overlap_with_higher_issue_limit(self):
        program = samples.simple_router()
        relaxed = DrmtHardwareParams(matches_per_cycle=4, actions_per_cycle=4)
        schedule, _ = scheduled(program, relaxed)
        # forward and flow_stats are independent: both matches can launch at cycle 0.
        assert schedule.start("forward", MATCH_OP) == 0
        assert schedule.start("flow_stats", MATCH_OP) == 0

    def test_issue_limit_serialises_matches(self):
        program = samples.simple_router()
        strict = DrmtHardwareParams(matches_per_cycle=1, actions_per_cycle=1)
        schedule, _ = scheduled(program, strict)
        assert schedule.start("forward", MATCH_OP) != schedule.start("flow_stats", MATCH_OP)

    def test_makespan_reflects_latencies(self):
        program = samples.simple_router()
        fast = scheduled(program, DrmtHardwareParams(ticks_per_match=1, ticks_per_action=1))[0]
        slow = scheduled(program, DrmtHardwareParams(ticks_per_match=5, ticks_per_action=3))[0]
        assert slow.makespan > fast.makespan

    def test_operations_at_and_describe(self):
        program = samples.simple_router()
        schedule, _ = scheduled(program)
        launched = [op for cycle in range(schedule.makespan) for op in schedule.operations_at(cycle)]
        assert len(launched) == 2 * len(program.table_order())
        assert "cycle" in schedule.describe()

    def test_single_table_program(self):
        source = """
        header_type h_t { fields { a : 8; } }
        header h_t h;
        action nothing() { no_op(); }
        table only { reads { h.a : exact; } actions { nothing; } }
        control ingress { apply(only); }
        """
        program = parse(source)
        schedule, graph = scheduled(program)
        assert validate_schedule(schedule, program, graph) == []
        assert schedule.makespan == DrmtHardwareParams().ticks_per_match + DrmtHardwareParams().ticks_per_action


class TestMilpScheduler:
    def test_milp_schedule_feasible_and_no_worse(self):
        program = samples.simple_router()
        graph = build_dependency_graph(program)
        hardware = DrmtHardwareParams()
        greedy = GreedyScheduler(program, graph, hardware).schedule()
        milp = MilpScheduler(program, graph, hardware).schedule()
        if milp is None:
            pytest.skip("scipy MILP unavailable or instance skipped")
        assert validate_schedule(milp, program, graph) == []
        assert milp.makespan <= greedy.makespan

    def test_schedule_program_with_milp_flag(self):
        program = samples.telemetry_pipeline()
        graph = build_dependency_graph(program)
        schedule = schedule_program(program, graph, DrmtHardwareParams(), use_milp=True)
        assert validate_schedule(schedule, program, graph) == []


class TestScheduleProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        ticks_per_match=st.integers(min_value=1, max_value=4),
        ticks_per_action=st.integers(min_value=1, max_value=4),
        matches_per_cycle=st.integers(min_value=1, max_value=3),
        actions_per_cycle=st.integers(min_value=1, max_value=3),
    )
    def test_greedy_schedule_always_feasible(
        self, ticks_per_match, ticks_per_action, matches_per_cycle, actions_per_cycle
    ):
        """For any hardware parameters, the greedy schedule violates no constraint."""
        program = samples.simple_router()
        graph = build_dependency_graph(program)
        hardware = DrmtHardwareParams(
            ticks_per_match=ticks_per_match,
            ticks_per_action=ticks_per_action,
            matches_per_cycle=matches_per_cycle,
            actions_per_cycle=actions_per_cycle,
        )
        schedule = GreedyScheduler(program, graph, hardware).schedule()
        assert validate_schedule(schedule, program, graph) == []
        assert schedule.makespan >= ticks_per_match + ticks_per_action
