"""Unit and integration tests for the dRMT simulator (processors, registers, dispatch)."""

import pytest

from repro.drmt import (
    DRMTSimulator,
    DrmtHardwareParams,
    PacketGenerator,
    RegisterFile,
    generate_bundle,
    values_field,
)
from repro.errors import SimulationError
from repro.p4 import samples


@pytest.fixture(scope="module")
def router_bundle():
    return generate_bundle(samples.simple_router(), DrmtHardwareParams(num_processors=2))


def router_packet(dst=167772161, src=42, ttl=64, protocol=6):
    return {
        "ethernet.dstAddr": 0,
        "ethernet.srcAddr": 0,
        "ethernet.etherType": 0x800,
        "ipv4.srcAddr": src,
        "ipv4.dstAddr": dst,
        "ipv4.ttl": ttl,
        "ipv4.protocol": protocol,
        "meta.egress_port": 0,
        "meta.flow_index": 0,
        "meta.tmp_count": 0,
        "meta.acl_drop": 0,
    }


class TestRegisterFile:
    def test_read_write(self):
        registers = RegisterFile(samples.simple_router())
        registers.write("flow_counter", 3, 99)
        assert registers.read("flow_counter", 3) == 99

    def test_index_wraps(self):
        registers = RegisterFile(samples.simple_router())
        registers.write("flow_counter", 64 + 1, 5)  # instance_count is 64
        assert registers.read("flow_counter", 1) == 5

    def test_unknown_register_rejected(self):
        registers = RegisterFile(samples.simple_router())
        with pytest.raises(SimulationError):
            registers.read("ghost", 0)

    def test_dump_limit(self):
        registers = RegisterFile(samples.simple_router())
        assert len(registers.dump("flow_counter", limit=4)) == 4


class TestStaticAnalysisBundle:
    def test_analysis_contents(self, router_bundle):
        analysis = router_bundle.analysis
        assert analysis.tables == ["forward", "acl", "flow_stats"]
        assert "set_nhop" in analysis.actions
        assert "flow_counter" in analysis.registers
        assert "ipv4.dstAddr" in analysis.packet_fields
        assert "meta.egress_port" in analysis.metadata_fields
        assert analysis.match_fields_per_table["acl"] == ["meta.egress_port", "ipv4.protocol"]
        assert analysis.critical_path == ["forward", "acl"]

    def test_describe_mentions_schedule(self, router_bundle):
        assert "schedule" in router_bundle.describe()


class TestPacketGenerator:
    def test_deterministic(self):
        program = samples.simple_router()
        a = PacketGenerator(program, seed=4).generate(5)
        b = PacketGenerator(program, seed=4).generate(5)
        assert a == b

    def test_metadata_defaults_to_zero(self):
        packets = PacketGenerator(samples.simple_router(), seed=1).generate(3)
        assert all(packet["meta.egress_port"] == 0 for packet in packets)

    def test_field_overrides(self):
        packets = PacketGenerator(
            samples.simple_router(), seed=1,
            field_overrides={"ipv4.srcAddr": values_field([42])},
        ).generate(10)
        assert all(packet["ipv4.srcAddr"] == 42 for packet in packets)

    def test_width_cap_respected(self):
        packets = PacketGenerator(samples.simple_router(), seed=1).generate(20)
        assert all(packet["ipv4.dstAddr"] < (1 << 16) for packet in packets)

    def test_negative_count_rejected(self):
        with pytest.raises(SimulationError):
            PacketGenerator(samples.simple_router()).generate(-1)


class TestSimulatorBehaviour:
    def test_forwarding_and_ttl_decrement(self, router_bundle):
        simulator = DRMTSimulator(router_bundle, table_entries=samples.SIMPLE_ROUTER_ENTRIES)
        result = simulator.run_packets([router_packet(dst=167772161, ttl=10)])
        record = result.records[0]
        assert record.outputs["meta.egress_port"] == 1
        assert record.outputs["ipv4.ttl"] == 9
        assert not record.dropped

    def test_lpm_default_route(self, router_bundle):
        simulator = DRMTSimulator(router_bundle, table_entries=samples.SIMPLE_ROUTER_ENTRIES)
        result = simulator.run_packets([router_packet(dst=999)])
        assert result.records[0].outputs["meta.egress_port"] == 3

    def test_acl_drops_udp_on_port_2(self, router_bundle):
        simulator = DRMTSimulator(router_bundle, table_entries=samples.SIMPLE_ROUTER_ENTRIES)
        dropped = simulator.run_packets([router_packet(dst=3232235777, protocol=17)])
        kept = DRMTSimulator(router_bundle, table_entries=samples.SIMPLE_ROUTER_ENTRIES).run_packets(
            [router_packet(dst=3232235777, protocol=6)]
        )
        assert dropped.records[0].dropped
        assert not kept.records[0].dropped
        assert dropped.packets_dropped == 1

    def test_register_counts_tracked_flows(self, router_bundle):
        simulator = DRMTSimulator(router_bundle, table_entries=samples.SIMPLE_ROUTER_ENTRIES)
        packets = [router_packet(src=42) for _ in range(5)] + [router_packet(src=77) for _ in range(3)]
        result = simulator.run_packets(packets)
        assert result.register_dump["flow_counter"][1] == 5
        assert result.register_dump["flow_counter"][2] == 3

    def test_miss_uses_default_action(self, router_bundle):
        simulator = DRMTSimulator(router_bundle, table_entries="")
        result = simulator.run_packets([router_packet()])
        # No entries installed: forward misses, on_miss() leaves egress_port at 0.
        assert result.records[0].outputs["meta.egress_port"] == 0

    def test_round_robin_dispatch(self, router_bundle):
        simulator = DRMTSimulator(router_bundle, table_entries=samples.SIMPLE_ROUTER_ENTRIES)
        result = simulator.run_packets([router_packet() for _ in range(10)])
        assert result.per_processor_packets == {0: 5, 1: 5}
        processors = [record.processor for record in result.records]
        assert processors[:4] == [0, 1, 0, 1]

    def test_latency_equals_schedule_makespan(self, router_bundle):
        simulator = DRMTSimulator(router_bundle, table_entries=samples.SIMPLE_ROUTER_ENTRIES)
        result = simulator.run_packets([router_packet(), router_packet()])
        for record in result.records:
            assert record.latency == router_bundle.schedule.makespan

    def test_outputs_preserve_packet_order(self, router_bundle):
        simulator = DRMTSimulator(router_bundle, table_entries=samples.SIMPLE_ROUTER_ENTRIES)
        result = simulator.run_packets([router_packet(src=i) for i in range(7)])
        assert [record.packet_id for record in result.records] == list(range(7))
        assert [record.inputs["ipv4.srcAddr"] for record in result.records] == list(range(7))

    def test_throughput_and_describe(self, router_bundle):
        simulator = DRMTSimulator(router_bundle, table_entries=samples.SIMPLE_ROUTER_ENTRIES)
        result = simulator.run_traffic(30, seed=2)
        assert 0 < result.throughput() <= 1.0
        assert "packets per processor" in result.describe()

    def test_run_traffic_uses_generator(self, router_bundle):
        simulator = DRMTSimulator(router_bundle, table_entries=samples.SIMPLE_ROUTER_ENTRIES)
        generator = PacketGenerator(
            router_bundle.program, seed=9, field_overrides={"ipv4.srcAddr": values_field([42])}
        )
        result = simulator.run_traffic(8, generator=generator)
        assert result.register_dump["flow_counter"][1] == 8


class TestTelemetryPipeline:
    def test_register_accumulation_through_dependent_tables(self):
        bundle = generate_bundle(samples.telemetry_pipeline(), DrmtHardwareParams(num_processors=1))
        simulator = DRMTSimulator(bundle, table_entries=samples.TELEMETRY_ENTRIES)
        packets = [
            {"pkt.flow_id": 1, "pkt.size": 100, "pkt.queue_depth": 0,
             "meta.bucket": 0, "meta.total": 0, "meta.alarm": 0},
            {"pkt.flow_id": 1, "pkt.size": 50, "pkt.queue_depth": 0,
             "meta.bucket": 0, "meta.total": 0, "meta.alarm": 0},
            {"pkt.flow_id": 2, "pkt.size": 7, "pkt.queue_depth": 0,
             "meta.bucket": 0, "meta.total": 0, "meta.alarm": 0},
        ]
        result = simulator.run_packets(packets)
        assert result.register_dump["byte_totals"][1] == 150
        assert result.register_dump["byte_totals"][2] == 7

    def test_alarm_table_ternary_match(self):
        bundle = generate_bundle(samples.telemetry_pipeline(), DrmtHardwareParams(num_processors=1))
        simulator = DRMTSimulator(bundle, table_entries=samples.TELEMETRY_ENTRIES)
        calm = {"pkt.flow_id": 1, "pkt.size": 1, "pkt.queue_depth": 10,
                "meta.bucket": 0, "meta.total": 0, "meta.alarm": 0}
        congested = dict(calm, **{"pkt.queue_depth": 0xFF00})
        result = simulator.run_packets([calm, congested])
        assert result.records[0].outputs["meta.alarm"] == 0
        assert result.records[1].outputs["meta.alarm"] == 1


class TestGenericDriverExactMatchProbes:
    """The generic run-to-completion driver shares the exact-match dict index.

    PR 3 dict-specialised all-exact tables in the *fused* generator; the
    generic driver kept the linear scan.  It now probes
    :meth:`MatchActionTable.exact_index` for all-exact tables — one dict
    probe per match — with hit/miss counters preserved, while ternary/LPM
    tables keep the scan.
    """

    def _flow_restricted_packets(self, bundle, count):
        from repro.traffic import choice_field

        generator = PacketGenerator(
            bundle.program, seed=4, field_overrides={"pkt.flow_id": choice_field([1, 2, 3])}
        )
        return generator.generate(count)

    def test_generic_driver_never_scans_all_exact_tables(self, monkeypatch):
        """The scan path must not run for an all-exact table."""
        from repro.drmt.tables import MatchActionTable

        bundle = generate_bundle(
            samples.telemetry_pipeline(), DrmtHardwareParams(num_processors=2)
        )
        simulator = DRMTSimulator(
            bundle, table_entries=samples.TELEMETRY_ENTRIES, engine="generic"
        )
        packets = self._flow_restricted_packets(bundle, 40)
        exact_names = {
            name
            for name, table in simulator.tables.tables.items()
            if table.is_exact
        }
        assert exact_names  # telemetry has all-exact tables to specialise
        original_lookup = MatchActionTable.lookup

        def guarded_lookup(table, fields):
            assert table.name not in exact_names, (
                f"generic driver scanned all-exact table {table.name!r}"
            )
            return original_lookup(table, fields)

        monkeypatch.setattr(MatchActionTable, "lookup", guarded_lookup)
        result = simulator.run_packets(packets)
        assert result.engine == "generic"
        assert result.packets_processed == len(packets)

    def test_generic_counters_match_the_tick_interpreter(self):
        """Dict probes count hits and misses exactly like lookup() did."""
        bundle = generate_bundle(
            samples.telemetry_pipeline(), DrmtHardwareParams(num_processors=2)
        )
        packets = self._flow_restricted_packets(bundle, 60)
        tick = DRMTSimulator(
            bundle, table_entries=samples.TELEMETRY_ENTRIES, engine="tick"
        ).run_packets(packets)
        generic = DRMTSimulator(
            bundle, table_entries=samples.TELEMETRY_ENTRIES, engine="generic"
        ).run_packets(packets)
        assert generic.table_hits == tick.table_hits
        assert [record.outputs for record in generic.records] == [
            record.outputs for record in tick.records
        ]
        assert generic.register_dump == tick.register_dump

    def test_entries_added_between_runs_are_picked_up(self):
        """The dict index refreshes per run, like the fused loop's."""
        from repro.drmt.table_config import parse_entries, populate_store

        bundle = generate_bundle(
            samples.telemetry_pipeline(), DrmtHardwareParams(num_processors=2)
        )
        simulator = DRMTSimulator(bundle, engine="generic")  # no entries yet
        packets = self._flow_restricted_packets(bundle, 20)
        first = simulator.run_packets(packets)
        assert all(hits == 0 for hits, _ in first.table_hits.values())
        populate_store(
            simulator.tables, parse_entries(samples.TELEMETRY_ENTRIES, bundle.program)
        )
        second = simulator.run_packets(packets)
        assert any(hits > 0 for hits, _ in second.table_hits.values())
