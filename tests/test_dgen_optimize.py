"""Unit tests for the dgen optimisation passes (SCC propagation, folding, DCE, inlining)."""

import pytest

from repro.alu_dsl import ALUInterpreter, parse_and_analyze
from repro.alu_dsl.ast_nodes import (
    ArithOpExpr,
    BinaryOp,
    ConstExpr,
    If,
    MuxExpr,
    Number,
    OptExpr,
    RelOpExpr,
    Var,
)
from repro.dgen.optimize import (
    constant_value,
    eliminate_dead_branches,
    fold_expr,
    inline_call,
    is_constant,
    max_placeholder_index,
    placeholder_count,
    remove_dead_local_assignments,
    specialize_expr,
    specialize_primitive_template,
    specialize_spec,
    specialize_stmts,
)
from repro.errors import CodegenError, MissingMachineCodeError

STATEFUL_TEMPLATE = """
type: stateful
state variables : {{state_0}}
hole variables : {{{holes}}}
packet fields : {{pkt_0, pkt_1}}
{body}
"""


def spec_of(body, holes=""):
    return parse_and_analyze(STATEFUL_TEMPLATE.format(body=body, holes=holes))


class TestFolding:
    def test_fold_constant_binary(self):
        assert fold_expr(BinaryOp("+", Number(2), Number(3))) == Number(5)

    def test_fold_nested(self):
        expr = BinaryOp("*", BinaryOp("+", Number(1), Number(2)), Number(4))
        assert fold_expr(expr) == Number(12)

    def test_fold_relational_to_flag(self):
        assert fold_expr(BinaryOp("<", Number(1), Number(2))) == Number(1)
        assert fold_expr(BinaryOp(">", Number(1), Number(2))) == Number(0)

    def test_non_constant_preserved(self):
        expr = BinaryOp("+", Var("pkt_0"), Number(3))
        assert fold_expr(expr) == expr

    def test_additive_identity_removed(self):
        assert fold_expr(BinaryOp("+", Var("x"), Number(0))) == Var("x")
        assert fold_expr(BinaryOp("+", Number(0), Var("x"))) == Var("x")

    def test_subtractive_identity_removed(self):
        assert fold_expr(BinaryOp("-", Var("x"), Number(0))) == Var("x")

    def test_multiplicative_identities(self):
        assert fold_expr(BinaryOp("*", Var("x"), Number(1))) == Var("x")
        assert fold_expr(BinaryOp("*", Number(0), Var("x"))) == Number(0)

    def test_division_by_zero_folds_to_zero(self):
        assert fold_expr(BinaryOp("/", Number(9), Number(0))) == Number(0)

    def test_is_constant_and_value(self):
        expr = BinaryOp("+", Number(2), Number(2))
        assert is_constant(expr)
        assert constant_value(expr) == 4
        with pytest.raises(ValueError):
            constant_value(Var("x"))


class TestDeadCodeElimination:
    def test_constant_true_first_branch_replaces_chain(self):
        from repro.alu_dsl.ast_nodes import Assign

        branches = [(Number(1), (Assign("state_0", Number(5)),))]
        result = eliminate_dead_branches(branches, (Assign("state_0", Number(9)),))
        assert result == [Assign("state_0", Number(5))]

    def test_constant_false_branch_removed(self):
        from repro.alu_dsl.ast_nodes import Assign

        branches = [(Number(0), (Assign("state_0", Number(5)),))]
        result = eliminate_dead_branches(branches, (Assign("state_0", Number(9)),))
        assert result == [Assign("state_0", Number(9))]

    def test_unknown_condition_preserved(self):
        from repro.alu_dsl.ast_nodes import Assign

        branches = [(Var("pkt_0"), (Assign("state_0", Number(5)),))]
        result = eliminate_dead_branches(branches, ())
        assert len(result) == 1 and isinstance(result[0], If)

    def test_constant_true_after_unknown_becomes_else(self):
        from repro.alu_dsl.ast_nodes import Assign

        branches = [
            (Var("pkt_0"), (Assign("state_0", Number(1)),)),
            (Number(1), (Assign("state_0", Number(2)),)),
            (Var("pkt_1"), (Assign("state_0", Number(3)),)),  # unreachable
        ]
        result = eliminate_dead_branches(branches, (Assign("state_0", Number(4)),))
        assert isinstance(result[0], If)
        assert len(result[0].branches) == 1
        assert result[0].orelse[0].value == Number(2)

    def test_remove_dead_local_assignment(self):
        from repro.alu_dsl.ast_nodes import Assign

        stmts = [Assign("tmp", Number(1)), Assign("state_0", Number(2))]
        cleaned = remove_dead_local_assignments(stmts, protected={"state_0"})
        assert cleaned == [Assign("state_0", Number(2))]

    def test_protected_assignment_kept_even_if_unread(self):
        from repro.alu_dsl.ast_nodes import Assign

        stmts = [Assign("state_0", Number(2))]
        assert remove_dead_local_assignments(stmts, protected={"state_0"}) == stmts

    def test_live_local_assignment_kept(self):
        from repro.alu_dsl.ast_nodes import Assign

        stmts = [Assign("tmp", Number(1)), Assign("state_0", BinaryOp("+", Var("tmp"), Number(1)))]
        assert remove_dead_local_assignments(stmts, protected={"state_0"}) == stmts


class TestPrimitiveTemplates:
    def test_mux_template_selects_input(self):
        template, arity = specialize_primitive_template(
            MuxExpr((Var("a"), Var("b"), Var("c")), hole_name="m"), {"m": 1}
        )
        assert template == "{op1}"
        assert arity == 3

    def test_mux_template_wraps_modulo(self):
        template, _ = specialize_primitive_template(
            MuxExpr((Var("a"), Var("b")), hole_name="m"), {"m": 5}
        )
        assert template == "{op1}"

    def test_opt_template(self):
        assert specialize_primitive_template(OptExpr(Var("s"), hole_name="o"), {"o": 0})[0] == "{op0}"
        assert specialize_primitive_template(OptExpr(Var("s"), hole_name="o"), {"o": 1})[0] == "0"

    def test_const_template_is_literal(self):
        template, arity = specialize_primitive_template(ConstExpr(hole_name="c"), {"c": 55})
        assert template == "55"
        assert arity == 0

    def test_rel_op_template(self):
        template, _ = specialize_primitive_template(
            RelOpExpr(Var("a"), Var("b"), hole_name="r"), {"r": 0}
        )
        assert "==" in template and "{op0}" in template and "{op1}" in template

    def test_arith_op_template(self):
        template, _ = specialize_primitive_template(
            ArithOpExpr(Var("a"), Var("b"), hole_name="r"), {"r": 1}
        )
        assert "-" in template

    def test_missing_hole_raises(self):
        with pytest.raises(MissingMachineCodeError):
            specialize_primitive_template(ConstExpr(hole_name="c"), {})

    def test_non_primitive_rejected(self):
        with pytest.raises(CodegenError):
            specialize_primitive_template(Number(1), {})


class TestSpecialization:
    def test_specialize_expr_removes_primitives(self):
        spec = spec_of("state_0 = arith_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()));")
        holes = {"opt_0": 0, "mux3_0": 2, "const_0": 9, "arith_op_0": 0}
        expr = spec.body[0].value
        result = specialize_expr(expr, holes)
        assert result == BinaryOp("+", Var("state_0"), Number(9))

    def test_specialize_expr_folds_constants(self):
        spec = spec_of("state_0 = arith_op(C(), C());")
        holes = {"const_0": 4, "const_1": 6, "arith_op_0": 0}
        assert specialize_expr(spec.body[0].value, holes) == Number(10)

    def test_hole_variable_substituted(self):
        spec = spec_of("state_0 = state_0 + imm;", holes="imm")
        result = specialize_expr(spec.body[0].value, {"imm": 3}, spec.hole_vars)
        assert result == BinaryOp("+", Var("state_0"), Number(3))

    def test_specialize_stmts_prunes_constant_branches(self):
        spec = spec_of(
            "if (rel_op(C(), C())) { state_0 = 1; } else { state_0 = 2; }"
        )
        # 5 == 5 is true -> keep the then branch only.
        holes = {"const_0": 5, "const_1": 5, "rel_op_0": 0}
        result = specialize_stmts(spec.body, holes)
        assert len(result) == 1
        assert result[0].value == Number(1)

    def test_specialize_stmts_keeps_data_dependent_branches(self):
        spec = spec_of("if (rel_op(state_0, pkt_0)) { state_0 = 1; } else { state_0 = 2; }")
        result = specialize_stmts(spec.body, {"rel_op_0": 1})
        assert isinstance(result[0], If)

    def test_specialize_spec_behaviour_preserved(self):
        """The specialised spec run with no holes equals the original run with holes."""
        spec = spec_of(
            "if (rel_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()))) {\n"
            "    state_0 = Opt(state_0) + Mux3(pkt_0, pkt_1, C());\n"
            "} else {\n"
            "    state_0 = Opt(state_0) + Mux3(pkt_0, pkt_1, C());\n"
            "}"
        )
        holes = {
            "opt_0": 0, "const_0": 9, "mux3_0": 2, "rel_op_0": 0,
            "opt_1": 1, "const_1": 0, "mux3_1": 2,
            "opt_2": 0, "const_2": 1, "mux3_2": 2,
        }
        specialized = specialize_spec(spec, holes)
        original = ALUInterpreter(spec)
        reduced = ALUInterpreter(specialized)
        for operands, state in [([9, 0], [9]), ([1, 2], [3]), ([0, 0], [0]), ([5, 5], [9])]:
            expected = original.execute(operands, state, holes)
            actual = reduced.execute(operands, state, {})
            assert (expected.output, expected.state) == (actual.output, actual.state)

    def test_specialize_spec_clears_holes(self):
        spec = spec_of("state_0 = Opt(state_0) + C();")
        specialized = specialize_spec(spec, {"opt_0": 0, "const_0": 2})
        assert specialized.holes == []
        assert specialized.hole_vars == []


class TestInlining:
    def test_placeholder_count(self):
        assert placeholder_count("{op0} + {op1}") == 2
        assert placeholder_count("{op0} + {op0}") == 1
        assert placeholder_count("42") == 0

    def test_max_placeholder_index(self):
        assert max_placeholder_index("{op2} - {op0}") == 2
        assert max_placeholder_index("7") == -1

    def test_inline_simple_call(self):
        assert inline_call("{op0}", ["phv[1]"]) == "phv[1]"

    def test_inline_wraps_compound_arguments(self):
        result = inline_call("int(({op0}) == ({op1}))", ["a + b", "c"])
        assert "(a + b)" in result and "(c)" in result or "c" in result

    def test_inline_does_not_wrap_atoms(self):
        assert inline_call("{op0} + {op1}", ["x", "12"]) == "x + 12"

    def test_inline_missing_argument_rejected(self):
        with pytest.raises(CodegenError):
            inline_call("{op1}", ["only_one"])

    def test_inlined_expression_evaluates_correctly(self):
        template, _ = specialize_primitive_template(
            ArithOpExpr(Var("a"), Var("b"), hole_name="h"), {"h": 0}
        )
        code = inline_call(template, ["2 + 3", "4"])
        assert eval(code) == 9  # noqa: S307 - controlled generated code


class TestPeephole:
    """The IR-level constant-propagation/peephole pass over fused loop bodies."""

    def _exec_block(self, statements, env):
        from repro.ir import Module, to_source
        from repro.ir import nodes as ir

        module = Module(functions=[ir.FunctionDef(name="f", params=list(env), body=list(statements) + [ir.Return("0")])])
        namespace = {}
        exec(to_source(module), namespace)  # noqa: S102 - controlled generated code
        return namespace["f"]

    def test_fold_source_literals(self):
        from repro.dgen.optimize import fold_source

        assert fold_source("1 + 2 * 3") == ("7", 7)
        assert fold_source("int(bool(1) and bool(0))") == ("0", 0)
        source, value = fold_source("x + 0 * 5", {})
        assert value is None and "x" in source

    def test_fold_source_substitutes_environment(self):
        from repro.dgen.optimize import fold_source

        source, value = fold_source("int(bool(c) and bool(1))", {"c": 1})
        assert value == 1
        source, value = fold_source("a + b", {"a": 2, "b": 3})
        assert (source, value) == ("5", 5)

    def test_fold_source_keeps_division_by_zero_unfolded(self):
        from repro.dgen.optimize import fold_source

        source, value = fold_source("1 // 0")
        assert value is None
        assert "//" in source

    def test_condition_wrappers_stripped(self):
        from repro.dgen.optimize import fold_source

        source, _ = fold_source("int(bool(x) and bool(y))", condition=True)
        assert source == "x and y"

    def test_constant_propagation_through_straight_line_code(self):
        from repro.dgen.optimize import peephole_block
        from repro.ir import nodes as ir

        block = peephole_block(
            [
                ir.Assign("condition_1", "1"),
                ir.Assign("out", "int(bool(cond) and bool(condition_1))"),
                ir.ExprStmt("sink(out)"),
            ]
        )
        rendered = [(s.target, s.expression) for s in block if isinstance(s, ir.Assign)]
        # condition_1 was substituted and its store eliminated.
        assert rendered == [("out", "int(bool(cond))")]

    def test_dead_branches_pruned_and_decided_branches_inlined(self):
        from repro.dgen.optimize import peephole_block
        from repro.ir import nodes as ir

        block = peephole_block(
            [
                ir.Assign("flag", "0"),
                ir.If(
                    branches=[("flag", [ir.Assign("state[0]", "1")])],
                    orelse=[ir.Assign("state[0]", "2")],
                ),
            ]
        )
        assert not any(isinstance(s, ir.If) for s in block)
        stores = [s for s in block if isinstance(s, ir.Assign) and s.target == "state[0]"]
        assert [s.expression for s in stores] == ["2"]

    def test_identical_branches_collapse(self):
        from repro.dgen.optimize import peephole_block
        from repro.ir import nodes as ir

        body = [ir.Assign("state[0]", "state[0] + pkt")]
        block = peephole_block(
            [ir.If(branches=[("pkt > threshold", list(body))], orelse=list(body))]
        )
        assert not any(isinstance(s, ir.If) for s in block)
        assert any(
            isinstance(s, ir.Assign) and s.target == "state[0]" for s in block
        )

    def test_self_assignments_removed(self):
        from repro.dgen.optimize import peephole_block
        from repro.ir import nodes as ir

        block = peephole_block(
            [
                ir.If(
                    branches=[("cond", [ir.Assign("state[0]", "pkt")])],
                    orelse=[ir.Assign("state[0]", "state[0]")],
                ),
                ir.ExprStmt("sink(state)"),
            ]
        )
        statement = next(s for s in block if isinstance(s, ir.If))
        assert statement.orelse == []

    def test_redundant_loads_deduplicated_but_invalidated_by_writes(self):
        from repro.dgen.optimize import peephole_block
        from repro.ir import nodes as ir

        block = peephole_block(
            [
                ir.Assign("pkt_0", "phv[0]"),
                ir.Assign("state[0]", "state[0] + pkt_0"),
                ir.Assign("pkt_0", "phv[0]"),  # redundant: dropped
                ir.Assign("state[1]", "state[1] + pkt_0"),
                ir.Assign("phv", "[pkt_0, 2]"),
                ir.Assign("pkt_0", "phv[0]"),  # phv changed: kept
                ir.ExprStmt("sink(pkt_0, phv)"),
            ]
        )
        loads = [
            s
            for s in block
            if isinstance(s, ir.Assign) and s.target == "pkt_0" and s.expression == "phv[0]"
        ]
        assert len(loads) == 2

    def test_mutating_call_invalidates_copies(self):
        from repro.dgen.optimize import peephole_block
        from repro.ir import nodes as ir

        block = peephole_block(
            [
                ir.Assign("cached", "state_0[0]"),
                ir.ExprStmt("first_sink(cached)"),
                ir.ExprStmt("stage_fn(phv, state_0, values)"),
                ir.Assign("cached", "state_0[0]"),  # must be reloaded: kept
                ir.ExprStmt("sink(cached)"),
            ]
        )
        loads = [
            s for s in block if isinstance(s, ir.Assign) and s.target == "cached"
        ]
        assert len(loads) == 2

    def test_loop_carried_reads_keep_stores_alive(self):
        from repro.dgen.optimize import peephole_block
        from repro.ir import nodes as ir

        # ``total`` is read at the top of the body before being stored: the
        # store feeds the next iteration and must survive.
        block = peephole_block(
            [
                ir.Assign("state[0]", "state[0] + total"),
                ir.Assign("total", "phv[0]"),
            ]
        )
        assert any(
            isinstance(s, ir.Assign) and s.target == "total" for s in block
        )

    def test_dead_stores_without_readers_removed(self):
        from repro.dgen.optimize import peephole_block
        from repro.ir import nodes as ir

        block = peephole_block(
            [
                ir.Assign("condition_0", "int(state[0] == pkt)"),
                ir.Assign("state[0]", "state[0] + pkt"),
            ]
        )
        assert not any(
            isinstance(s, ir.Assign) and s.target == "condition_0" for s in block
        )

    def test_peephole_preserves_behaviour(self):
        from repro.dgen.optimize import peephole_block
        from repro.ir import nodes as ir

        statements = [
            ir.Assign("condition_1", "1"),
            ir.Assign("choice", "state[0] if int(bool(pkt > 3) and bool(condition_1)) else pkt"),
            ir.If(
                branches=[("int(bool(condition_1))", [ir.Assign("state[0]", "state[0] + choice")])],
                orelse=[ir.Assign("state[0]", "state[0]")],
            ),
            ir.Assign("out", "choice"),
            ir.Return("(out, state)"),
        ]
        optimized = peephole_block(list(statements))

        def outcome(block):
            from repro.ir import Module, to_source
            from repro.ir import nodes as irn

            module = Module(
                functions=[
                    irn.FunctionDef(name="f", params=["pkt", "state"], body=list(block))
                ]
            )
            namespace = {}
            exec(to_source(module), namespace)  # noqa: S102
            return namespace["f"]

        for pkt in (0, 3, 4, 10):
            assert outcome(statements)(pkt, [5]) == outcome(optimized)(pkt, [5])
