"""Fused (opt level 3) vs tick-accurate equivalence, and synthesis caching.

The fused ``run_trace`` entry point must be bit-for-bit identical to the
paper's tick model — same output trace, same final state vectors, same tick
count — for every benchmark program and arbitrary seeds, because the
simulator silently dispatches to it.  The synthesis-side regression tests
pin down that the CEGIS hot-path rework (spec-trace caching, shared
candidate evaluator, early-exit scoring) does not change synthesis results
for fixed seeds.
"""

from __future__ import annotations

import pytest

from repro import atoms, dgen
from repro.chipmunk import Sketch, SynthesisConfig, SynthesisEngine
from repro.dsim import RMTSimulator
from repro.errors import SimulationError
from repro.hardware import PipelineSpec
from repro.machine_code import naming
from repro.programs import TABLE1_ORDER, get_program
from repro.testing import FunctionSpecification, compare_traces


def run_both(program, seed, phvs=300):
    """Run one program fused and tick-accurate on the same random trace."""
    description = dgen.generate(
        program.pipeline_spec(), program.machine_code(), opt_level=dgen.OPT_FUSED
    )
    assert description.fused_function is not None
    inputs = program.traffic_generator(seed=seed).generate(phvs)
    fused = RMTSimulator(
        description, initial_state=program.initial_pipeline_state()
    ).run(inputs)
    tick = RMTSimulator(
        description, initial_state=program.initial_pipeline_state()
    ).run(inputs, tick_accurate=True)
    return fused, tick


class TestFusedEquivalence:
    @pytest.mark.parametrize("program_name", TABLE1_ORDER)
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_fused_matches_tick_accurate(self, program_name, seed):
        """Outputs, inputs, final state and tick count match bit for bit."""
        fused, tick = run_both(get_program(program_name), seed)
        assert fused.outputs == tick.outputs
        assert fused.input_trace == tick.input_trace
        assert fused.final_state == tick.final_state
        assert fused.ticks == tick.ticks
        assert [record.phv_id for record in fused.output_trace] == [
            record.phv_id for record in tick.output_trace
        ]

    @pytest.mark.parametrize("program_name", TABLE1_ORDER)
    def test_fused_matches_level2(self, program_name):
        """Opt level 3 output equals opt level 2 output on the same trace."""
        program = get_program(program_name)
        inputs = program.traffic_generator(seed=99).generate(200)
        results = {}
        for level in (dgen.OPT_SCC_INLINE, dgen.OPT_FUSED):
            description = dgen.generate(
                program.pipeline_spec(), program.machine_code(), opt_level=level
            )
            results[level] = RMTSimulator(
                description, initial_state=program.initial_pipeline_state()
            ).run(inputs)
        assert results[dgen.OPT_FUSED].outputs == results[dgen.OPT_SCC_INLINE].outputs
        assert (
            results[dgen.OPT_FUSED].final_state
            == results[dgen.OPT_SCC_INLINE].final_state
        )

    def test_fused_empty_trace(self):
        program = get_program("sampling")
        description = dgen.generate(
            program.pipeline_spec(), program.machine_code(), opt_level=dgen.OPT_FUSED
        )
        result = RMTSimulator(description).run([])
        assert result.ticks == 0
        assert len(result.output_trace) == 0

    def test_fused_rejects_wrong_width(self):
        program = get_program("sampling")
        description = dgen.generate(
            program.pipeline_spec(), program.machine_code(), opt_level=dgen.OPT_FUSED
        )
        width = program.pipeline_spec().width
        with pytest.raises(SimulationError):
            RMTSimulator(description).run([[0] * (width + 1)])

    def test_fused_does_not_mutate_caller_initial_state(self):
        program = get_program("flowlets")
        initial = program.initial_pipeline_state()
        snapshot = [[list(alu) for alu in stage] for stage in initial]
        description = dgen.generate(
            program.pipeline_spec(), program.machine_code(), opt_level=dgen.OPT_FUSED
        )
        inputs = program.traffic_generator(seed=3).generate(50)
        RMTSimulator(description, initial_state=initial).run(inputs)
        assert initial == snapshot

    def test_lower_levels_have_no_fused_function(self):
        program = get_program("sampling")
        for level in (dgen.OPT_UNOPTIMIZED, dgen.OPT_SCC, dgen.OPT_SCC_INLINE):
            description = dgen.generate(
                program.pipeline_spec(), program.machine_code(), opt_level=level
            )
            assert description.fused_function is None


def accumulator_engine(seed=3):
    """The accumulator synthesis problem used as a deterministic fixture."""
    spec = PipelineSpec(
        depth=1,
        width=1,
        stateful_alu=atoms.get_atom("raw"),
        stateless_alu=atoms.get_atom("stateless_rel"),
        name="synthesis_cache_test",
    )
    freeze = {naming.output_mux_name(0, 0): spec.output_mux_value_for(naming.STATEFUL, 0)}
    for kind, alu in (
        (naming.STATEFUL, spec.stateful_alu),
        (naming.STATELESS, spec.stateless_alu),
    ):
        for operand in range(alu.num_operands):
            freeze[naming.input_mux_name(0, kind, 0, operand)] = 0
    search = [
        naming.alu_hole_name(0, naming.STATEFUL, 0, hole)
        for hole in atoms.get_atom("raw").holes
    ]

    def accumulate(phv, state):
        old = state["total"]
        state["total"] += phv[0]
        return [old]

    specification = FunctionSpecification(
        function=accumulate,
        num_containers=1,
        state_template={"total": 0},
        relevant_containers=[0],
    )
    sketch = Sketch.from_pipeline(
        spec, constant_pool=[0, 1], freeze=freeze, search_names=search
    )
    return SynthesisEngine(spec, specification, sketch, SynthesisConfig(seed=seed))


class TestSynthesisCachingRegression:
    def test_spec_cache_does_not_change_results(self):
        """Two engines with the same seed stay bit-for-bit deterministic,
        and the cached spec outputs equal a fresh specification run."""
        first = accumulator_engine().synthesize()
        second = accumulator_engine().synthesize()
        assert first.success and second.success
        assert first.machine_code.as_dict() == second.machine_code.as_dict()
        assert first.iterations == second.iterations
        assert first.candidates_evaluated == second.candidates_evaluated
        assert first.examples_used == second.examples_used

        engine = accumulator_engine()
        engine.synthesize()
        for inputs, cached in [
            (list(map(list, key)), value) for key, value in engine._spec_cache.items()
        ]:
            assert engine.specification.run(inputs).outputs() == cached

    def test_synthesized_code_verified_by_full_trace_comparison(self):
        """The engine's verdict agrees with an independent, uncached check."""
        engine = accumulator_engine()
        result = engine.synthesize()
        assert result.success

        program_spec = engine.pipeline_spec
        description = dgen.generate(
            program_spec, result.machine_code, opt_level=dgen.OPT_SCC_INLINE
        )
        inputs = engine._make_traffic(1023, seed=77).generate(500)
        simulated = RMTSimulator(description).run(inputs)
        spec_trace = engine.specification.run(inputs)
        report = compare_traces(
            simulated.output_trace,
            spec_trace,
            containers=engine.specification.relevant_containers,
        )
        assert report.equivalent

    def test_failed_stochastic_search_surfaces_best_candidate(self):
        """§5.2: a run whose inner search fails still returns machine code."""
        spec = PipelineSpec(
            depth=1,
            width=2,
            stateful_alu=atoms.get_atom("if_else_raw"),
            stateless_alu=atoms.get_atom("stateless_full"),
            name="fallback_test",
        )
        specification = FunctionSpecification(
            function=lambda phv, state: [phv[0] * 3 + 7, phv[1]],
            num_containers=2,
            relevant_containers=[0],
        )
        sketch = Sketch.from_pipeline(spec, constant_pool=[0, 1, 2, 3])
        config = SynthesisConfig(
            seed=5,
            num_examples=10,
            max_iterations=1,
            restarts=2,
            climb_steps=40,
            exhaustive_limit=10,
        )
        result = SynthesisEngine(spec, specification, sketch, config).synthesize()
        assert not result.success
        # The seed discarded the failing iteration's best candidate and
        # returned None here; the best-scoring assignment must now surface.
        assert result.machine_code is not None


class TestCompareTracesModes:
    def _traces(self):
        program = get_program("sampling")
        description = dgen.generate(
            program.pipeline_spec(), program.machine_code(), opt_level=dgen.OPT_FUSED
        )
        inputs = program.traffic_generator(seed=1).generate(100)
        pipeline_trace = RMTSimulator(
            description, initial_state=program.initial_pipeline_state()
        ).run(inputs).output_trace
        spec_trace = program.specification().run(inputs)
        return pipeline_trace, spec_trace

    def test_count_only_matches_full_comparison(self):
        pipeline_trace, spec_trace = self._traces()
        # Corrupt one record to force mismatches.
        bad = pipeline_trace.records[5]
        pipeline_trace.records[5] = bad._replace(
            outputs=tuple(v + 1 for v in bad.outputs)
        )
        full = compare_traces(pipeline_trace, spec_trace)
        counted = compare_traces(pipeline_trace, spec_trace, count_only=True)
        assert not counted.mismatches
        assert counted.mismatch_count == len(full.mismatches) == full.mismatch_count
        assert counted.equivalent == full.equivalent == False  # noqa: E712

    def test_limit_early_exit(self):
        pipeline_trace, spec_trace = self._traces()
        for index in (3, 4, 5):
            record = pipeline_trace.records[index]
            pipeline_trace.records[index] = record._replace(
                outputs=tuple(v + 1 for v in record.outputs)
            )
        limited = compare_traces(pipeline_trace, spec_trace, limit=0)
        assert limited.truncated
        assert limited.mismatch_count == 1
        assert limited.first_mismatch is not None
        assert limited.first_mismatch.phv_id == 3
        clean = compare_traces(pipeline_trace, spec_trace, limit=10**6)
        assert not clean.truncated

    def test_equivalent_traces_unaffected_by_modes(self):
        pipeline_trace, spec_trace = self._traces()
        containers = get_program("sampling").specification().relevant_containers
        assert compare_traces(pipeline_trace, spec_trace, containers=containers).equivalent
        assert compare_traces(
            pipeline_trace, spec_trace, containers=containers, count_only=True, limit=0
        ).equivalent
