"""Tests for the §5.2 case-study harness (corpus construction and classification)."""

import pytest

from repro.programs.case_study import (
    VALUE_RANGE_THRESHOLDS,
    build_corpus,
    run_case_study,
)
from repro.testing import FailureClass


@pytest.fixture(scope="module")
def corpus():
    return build_corpus()


class TestCorpusConstruction:
    def test_corpus_exceeds_120_programs(self, corpus):
        """Paper §5.2: 'Over 120 Chipmunk machine code programs'."""
        assert len(corpus) > 120

    def test_exactly_eight_injected_failures(self, corpus):
        injected = [entry for entry in corpus if entry.expected is not FailureClass.CORRECT]
        assert len(injected) == 8

    def test_two_missing_pair_failures(self, corpus):
        missing = [entry for entry in corpus if entry.expected is FailureClass.MISSING_MACHINE_CODE]
        assert len(missing) == 2
        for entry in missing:
            # The removed pairs are exactly the output multiplexers.
            absent = entry.program.pipeline_spec().validate_machine_code(entry.machine_code)
            assert absent and all("output_mux" in name for name in absent)

    def test_six_value_range_failures(self, corpus):
        value_range = [entry for entry in corpus if entry.expected is FailureClass.VALUE_RANGE]
        assert len(value_range) == 6
        assert len(VALUE_RANGE_THRESHOLDS) == 6

    def test_table1_programs_included(self, corpus):
        table1 = [entry for entry in corpus if entry.family == "table1"]
        assert len(table1) == 12

    def test_machine_codes_are_distinct(self, corpus):
        codes = {entry.machine_code for entry in corpus if entry.family == "accumulator"}
        assert len(codes) == sum(1 for entry in corpus if entry.family == "accumulator")


class TestCampaign:
    @pytest.fixture(scope="class")
    def small_result(self, corpus):
        # A reduced corpus keeps the unit test fast: the 12 Table-1 programs,
        # a handful of correct variants and all eight injected failures.
        correct = [entry for entry in corpus if entry.expected is FailureClass.CORRECT][:20]
        injected = [entry for entry in corpus if entry.expected is not FailureClass.CORRECT]
        return run_case_study(num_phvs=120, seed=3, entries=correct + injected)

    def test_every_outcome_matches_expectation(self, small_result):
        assert small_result.expected_matches_observed()

    def test_summary_counts(self, small_result):
        assert small_result.summary.total == 28
        assert small_result.summary.passed == 20
        assert small_result.summary.count(FailureClass.MISSING_MACHINE_CODE) == 2
        assert small_result.summary.count(FailureClass.VALUE_RANGE) == 6

    def test_comparison_table_structure(self, small_result):
        table = small_result.table()
        quantities = [row["quantity"] for row in table]
        assert any("missing machine code" in quantity for quantity in quantities)
        assert any("limited value range" in quantity for quantity in quantities)
        assert all({"quantity", "paper", "reproduced"} <= set(row) for row in table)

    def test_per_family_counts_sum_to_total(self, small_result):
        total = sum(total for _passed, total in small_result.per_family.values())
        assert total == small_result.summary.total
