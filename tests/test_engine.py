"""The unified execution-engine layer: selection rules and cross-architecture
equivalence.

The tentpole guarantee of the engine layer is that one compiled program
produces bit-for-bit identical results under every driver of *both*
architectures: the RMT pipeline (tick, generic, fused) and the dRMT-style
run-to-completion model (tick, generic, fused) touch every stage's state in
packet arrival order, so outputs and final state cannot differ.  The big
parametrised test below pins that down for all 12 Table-1 programs over 3
seeds.
"""

from __future__ import annotations

import pytest

from repro import dgen
from repro.dsim import RMTSimulator
from repro.engine import (
    ENGINE_CHOICES,
    ExecutionEngine,
    RunToCompletionSimulator,
    resolve_engine,
)
from repro.errors import SimulationError
from repro.programs import TABLE1_ORDER, get_program

SEEDS = (0, 7, 1234)
PHVS = 120


@pytest.fixture(scope="module")
def descriptions():
    """Opt-level-3 descriptions per program (generated once, reused by every engine)."""
    cache = {}
    for name in TABLE1_ORDER:
        program = get_program(name)
        cache[name] = (
            program,
            dgen.generate(program.pipeline_spec(), program.machine_code(), opt_level=dgen.OPT_FUSED),
        )
    return cache


class TestCrossArchitectureEquivalence:
    @pytest.mark.parametrize("program_name", TABLE1_ORDER)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_engines_agree(self, descriptions, program_name, seed):
        """12 programs x 3 seeds: six drivers across two architectures agree."""
        program, description = descriptions[program_name]
        inputs = program.traffic_generator(seed=seed).generate(PHVS)

        results = {}
        for engine in ("tick", "generic", "fused"):
            results[f"rmt-{engine}"] = RMTSimulator(
                description,
                initial_state=program.initial_pipeline_state(),
                engine=engine,
            ).run(inputs)
            results[f"rtc-{engine}"] = RunToCompletionSimulator(
                description,
                num_processors=3,
                initial_state=program.initial_pipeline_state(),
                engine=engine,
            ).run(inputs)

        reference = results["rmt-tick"]
        for label, result in results.items():
            assert result.outputs == reference.outputs, label
            assert result.final_state == reference.final_state, label
            assert result.input_trace == reference.input_trace, label
            assert [record.phv_id for record in result.output_trace] == [
                record.phv_id for record in reference.output_trace
            ], label

    def test_engine_attribute_names_driver(self, descriptions):
        program, description = descriptions["sampling"]
        inputs = program.traffic_generator(seed=1).generate(10)
        state = program.initial_pipeline_state()
        assert RMTSimulator(description, initial_state=state).run(inputs).engine == "fused"
        assert (
            RMTSimulator(description, initial_state=state, engine="generic").run(inputs).engine
            == "generic"
        )
        assert (
            RMTSimulator(description, initial_state=state).run(inputs, tick_accurate=True).engine
            == "tick"
        )
        rtc = RunToCompletionSimulator(description, initial_state=state)
        assert rtc.run(inputs).engine == "rtc-fused"
        assert rtc.run(inputs, tick_accurate=True).engine == "rtc-tick"


class TestSelectionRules:
    def test_resolve_engine_auto_prefers_fused(self):
        assert resolve_engine("auto", fused_available=True) == "fused"
        assert resolve_engine("auto", fused_available=False) == "generic"

    def test_tick_accurate_always_wins(self):
        for requested in ENGINE_CHOICES:
            assert resolve_engine(requested, fused_available=True, tick_accurate=True) == "tick"

    def test_explicit_fused_requires_fused_entry_point(self):
        with pytest.raises(SimulationError, match="fused"):
            resolve_engine("fused", fused_available=False)

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError, match="unknown engine"):
            resolve_engine("warp", fused_available=True)

    def test_simulator_rejects_fused_below_level3(self):
        program = get_program("sampling")
        description = dgen.generate(
            program.pipeline_spec(), program.machine_code(), opt_level=dgen.OPT_SCC_INLINE
        )
        with pytest.raises(SimulationError):
            RMTSimulator(description, engine="fused").run([[0] * program.width])

    def test_generic_driver_serves_every_level(self):
        program = get_program("rcp")
        inputs = program.traffic_generator(seed=3).generate(60)
        outputs = None
        for level in dgen.OPT_LEVELS:
            description = dgen.generate(
                program.pipeline_spec(), program.machine_code(), opt_level=level
            )
            result = RMTSimulator(
                description,
                initial_state=program.initial_pipeline_state(),
                engine="generic",
            ).run(inputs)
            assert result.engine == "generic"
            if outputs is None:
                outputs = result.outputs
            else:
                assert result.outputs == outputs, f"level {level} diverged"


class TestProtocolConformance:
    def test_simulators_satisfy_execution_engine_protocol(self, descriptions):
        program, description = descriptions["sampling"]
        assert isinstance(RMTSimulator(description), ExecutionEngine)
        assert isinstance(RunToCompletionSimulator(description), ExecutionEngine)

        from repro.drmt import DRMTSimulator, DrmtHardwareParams, generate_bundle
        from repro.p4 import samples

        bundle = generate_bundle(samples.simple_router(), DrmtHardwareParams())
        assert isinstance(DRMTSimulator(bundle), ExecutionEngine)


class TestRunToCompletionSimulator:
    def test_round_robin_assignment(self, descriptions):
        _program, description = descriptions["sampling"]
        simulator = RunToCompletionSimulator(description, num_processors=4)
        assert [simulator.processor_of(index) for index in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_needs_at_least_one_processor(self, descriptions):
        _program, description = descriptions["sampling"]
        with pytest.raises(SimulationError):
            RunToCompletionSimulator(description, num_processors=0)

    def test_empty_trace(self, descriptions):
        _program, description = descriptions["sampling"]
        result = RunToCompletionSimulator(description).run([])
        assert result.ticks == 0
        assert len(result.output_trace) == 0

    def test_tick_count_reflects_run_to_completion_latency(self, descriptions):
        program, description = descriptions["snap_heavy_hitter"]
        inputs = program.traffic_generator(seed=2).generate(25)
        result = RunToCompletionSimulator(
            description, initial_state=program.initial_pipeline_state()
        ).run(inputs, tick_accurate=True)
        # Last packet enters at tick 24 and finishes its final stage
        # depth-1 ticks later (one earlier than the pipeline's exit tick).
        assert result.ticks == 25 + description.spec.depth - 1

    def test_does_not_mutate_caller_initial_state(self, descriptions):
        program, description = descriptions["flowlets"]
        initial = program.initial_pipeline_state()
        snapshot = [[list(alu) for alu in stage] for stage in initial]
        inputs = program.traffic_generator(seed=9).generate(30)
        for engine in ("tick", "generic", "fused"):
            RunToCompletionSimulator(
                description, initial_state=initial, engine=engine
            ).run(inputs)
            assert initial == snapshot, engine
