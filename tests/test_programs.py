"""Tests for the 12 Table-1 benchmark programs and the parametric variants.

The central assertion — the reproduction's equivalent of the paper's case
study — is that every program's compiler-produced machine code passes the
fuzzing workflow against its high-level specification, at every dgen
optimisation level.
"""

import pytest

from repro import dgen
from repro.dsim import RMTSimulator
from repro.errors import DruzhbaError
from repro.programs import TABLE1_ORDER, all_programs, get_program, program_names
from repro.programs.variants import (
    make_accumulator_variant,
    make_blue_decrease_variant,
    make_sampling_variant,
    make_threshold_variant,
)
from repro.testing import FailureClass, FuzzConfig, FuzzTester

#: Table 1's (depth, width, ALU name) per program, straight from the paper.
TABLE1_DIMENSIONS = {
    "blue_decrease": (4, 2, "sub"),
    "blue_increase": (4, 2, "pair"),
    "sampling": (2, 1, "if_else_raw"),
    "marple_new_flow": (2, 2, "pred_raw"),
    "marple_tcp_nmo": (3, 2, "pred_raw"),
    "snap_heavy_hitter": (1, 1, "pair"),
    "stateful_firewall": (4, 5, "pred_raw"),
    "flowlets": (4, 5, "pred_raw"),
    "learn_filter": (3, 5, "raw"),
    "rcp": (3, 3, "pred_raw"),
    "conga": (1, 5, "pair"),
    "spam_detection": (1, 1, "pair"),
}


def fuzz_program(program, opt_level=dgen.OPT_SCC_INLINE, num_phvs=250, seed=11):
    tester = FuzzTester(
        program.pipeline_spec(),
        program.specification(),
        config=FuzzConfig(num_phvs=num_phvs, seed=seed, opt_level=opt_level),
        traffic_generator=program.traffic_generator(seed=seed),
        initial_state=program.initial_pipeline_state(),
    )
    return tester.test(program.machine_code())


class TestRegistry:
    def test_twelve_programs(self):
        assert len(all_programs()) == 12
        assert len(program_names()) == 12

    def test_order_matches_table1(self):
        assert program_names() == TABLE1_ORDER

    def test_unknown_program_rejected(self):
        with pytest.raises(DruzhbaError):
            get_program("quantum_forwarding")

    @pytest.mark.parametrize("name", TABLE1_ORDER)
    def test_dimensions_and_atom_match_table1(self, name):
        program = get_program(name)
        depth, width, atom = TABLE1_DIMENSIONS[name]
        assert (program.depth, program.width, program.stateful_atom) == (depth, width, atom)

    @pytest.mark.parametrize("name", TABLE1_ORDER)
    def test_machine_code_is_complete(self, name):
        program = get_program(name)
        assert program.pipeline_spec().validate_machine_code(program.machine_code()) == []

    @pytest.mark.parametrize("name", TABLE1_ORDER)
    def test_table1_row_columns(self, name):
        row = get_program(name).table1_row()
        assert set(row) == {"program", "pipeline_depth", "pipeline_width", "alu_name"}

    @pytest.mark.parametrize("name", TABLE1_ORDER)
    def test_descriptions_and_docs_present(self, name):
        program = get_program(name)
        assert len(program.description) > 40
        assert program.relevant_containers

    def test_initial_state_consistency_checked(self):
        program = get_program("conga")
        assert program.initial_pipeline_state()[0][0] == [1023, 0]


class TestProgramCorrectness:
    @pytest.mark.parametrize("name", TABLE1_ORDER)
    def test_fuzz_pass_at_optimised_level(self, name):
        outcome = fuzz_program(get_program(name))
        assert outcome.passed, outcome.describe()

    @pytest.mark.parametrize("name", ["sampling", "snap_heavy_hitter", "rcp", "stateful_firewall"])
    @pytest.mark.parametrize("opt_level", [0, 1])
    def test_fuzz_pass_at_other_levels(self, name, opt_level):
        outcome = fuzz_program(get_program(name), opt_level=opt_level, num_phvs=150)
        assert outcome.passed, outcome.describe()

    @pytest.mark.parametrize("name", TABLE1_ORDER)
    def test_missing_output_mux_pairs_detected(self, name):
        """Dropping the output-mux pairs reproduces §5.2 failure class 1 for every program."""
        program = get_program(name)
        machine_code = program.machine_code()
        broken = machine_code.without([n for n in machine_code if "output_mux" in n][:2])
        tester = FuzzTester(
            program.pipeline_spec(),
            program.specification(),
            config=FuzzConfig(num_phvs=50, seed=1),
            traffic_generator=program.traffic_generator(seed=1),
            initial_state=program.initial_pipeline_state(),
        )
        assert tester.test(broken).failure_class is FailureClass.MISSING_MACHINE_CODE


class TestProgramBehaviour:
    def test_sampling_marks_every_tenth_packet(self):
        program = get_program("sampling")
        description = dgen.generate(program.pipeline_spec(), program.machine_code(), opt_level=2)
        result = RMTSimulator(description, initial_state=program.initial_pipeline_state()).run(
            [[0]] * 30
        )
        flags = [outputs[0] for outputs in result.outputs]
        assert flags == ([0] * 9 + [1]) * 3

    def test_blue_decrease_monotonically_drains(self):
        program = get_program("blue_decrease")
        description = dgen.generate(program.pipeline_spec(), program.machine_code(), opt_level=2)
        result = RMTSimulator(description, initial_state=program.initial_pipeline_state()).run(
            [[0, 0]] * 10
        )
        marks = [outputs[1] for outputs in result.outputs]
        assert marks == [500 - 10 * i for i in range(10)]

    def test_conga_tracks_minimum_utilisation(self):
        program = get_program("conga")
        description = dgen.generate(program.pipeline_spec(), program.machine_code(), opt_level=2)
        inputs = [[1, 700, 0, 0, 0], [2, 300, 0, 0, 0], [3, 900, 0, 0, 0], [4, 100, 0, 0, 0]]
        result = RMTSimulator(description, initial_state=program.initial_pipeline_state()).run(inputs)
        best = [outputs[2] for outputs in result.outputs]
        assert best == [1023, 700, 300, 300]

    def test_marple_tcp_nmo_counts_reordering(self):
        program = get_program("marple_tcp_nmo")
        description = dgen.generate(program.pipeline_spec(), program.machine_code(), opt_level=2)
        sequence = [[10, 0], [20, 0], [15, 0], [30, 0], [5, 0]]
        result = RMTSimulator(description, initial_state=program.initial_pipeline_state()).run(sequence)
        flags = [outputs[1] for outputs in result.outputs]
        counts = [outputs[0] for outputs in result.outputs]
        assert flags == [0, 0, 1, 0, 1]
        assert counts == [0, 0, 0, 1, 1]

    def test_stateful_firewall_blocks_until_contact(self):
        program = get_program("stateful_firewall")
        description = dgen.generate(program.pipeline_spec(), program.machine_code(), opt_level=2)
        # inbound, inbound, outbound, inbound
        inputs = [[1, 0, 0, 0, 0], [1, 0, 0, 0, 0], [0, 0, 0, 0, 0], [1, 0, 0, 0, 0]]
        result = RMTSimulator(description, initial_state=program.initial_pipeline_state()).run(inputs)
        allowed = [outputs[4] for outputs in result.outputs]
        assert allowed == [0, 0, 1, 1]

    def test_learn_filter_accumulates_per_bank(self):
        program = get_program("learn_filter")
        description = dgen.generate(program.pipeline_spec(), program.machine_code(), opt_level=2)
        inputs = [[1, 10, 100, 0, 0], [2, 20, 200, 0, 0], [3, 30, 300, 0, 0]]
        result = RMTSimulator(description, initial_state=program.initial_pipeline_state()).run(inputs)
        assert [outputs[0] for outputs in result.outputs] == [0, 1, 3]
        assert [outputs[1] for outputs in result.outputs] == [0, 10, 30]
        assert [outputs[2] for outputs in result.outputs] == [0, 100, 300]


class TestVariants:
    @pytest.mark.parametrize("period", [2, 5, 17])
    def test_sampling_variant(self, period):
        program = make_sampling_variant(period)
        assert fuzz_program(program, num_phvs=5 * period).passed

    @pytest.mark.parametrize("increment", [0, 1, 13])
    def test_accumulator_variant(self, increment):
        assert fuzz_program(make_accumulator_variant(increment), num_phvs=100).passed

    @pytest.mark.parametrize("threshold", [10, 500, 1000])
    def test_threshold_variant(self, threshold):
        assert fuzz_program(make_threshold_variant(threshold), num_phvs=300).passed

    @pytest.mark.parametrize("delta", [1, 25])
    def test_blue_decrease_variant(self, delta):
        assert fuzz_program(make_blue_decrease_variant(delta), num_phvs=100).passed

    def test_threshold_variant_with_wrong_constant_fails(self):
        program = make_threshold_variant(400, machine_code_threshold=100)
        outcome = fuzz_program(program, num_phvs=400)
        assert outcome.failure_class is FailureClass.VALUE_RANGE

    def test_invalid_variant_parameters_rejected(self):
        with pytest.raises(ValueError):
            make_sampling_variant(1)
        with pytest.raises(ValueError):
            make_accumulator_variant(-1)
        with pytest.raises(ValueError):
            make_blue_decrease_variant(-2)

    def test_bad_initial_state_location_rejected(self):
        program = make_blue_decrease_variant(5)
        program.initial_stateful_values = {(9, 9): [0]}
        with pytest.raises(DruzhbaError):
            program.initial_pipeline_state()
