"""Unit tests for the P4-14-like program model, parser and dependency analysis."""

import pytest

from repro.errors import P4SemanticError, P4SyntaxError
from repro.p4 import (
    ACTION_DEPENDENCY,
    MATCH_DEPENDENCY,
    SUCCESSOR_DEPENDENCY,
    build_dependency_graph,
    classify_dependency,
    critical_path,
    dependency_summary,
    parse,
    samples,
    table_usage,
)
from repro.p4.program import PrimitiveCall, TableRead

MINIMAL = """
header_type h_t { fields { a : 8; b : 16; } }
header h_t h;
action set_a(v) { modify_field(h.a, v); }
action nothing() { no_op(); }
table t1 { reads { h.b : exact; } actions { set_a; nothing; } size : 4; }
table t2 { reads { h.a : exact; } actions { nothing; } }
control ingress { apply(t1); apply(t2); }
"""


class TestParser:
    def test_header_types_and_instances(self):
        program = parse(MINIMAL)
        assert program.header_types["h_t"].fields == [("a", 8), ("b", 16)]
        assert program.headers["h"].header_type == "h_t"
        assert not program.headers["h"].is_metadata

    def test_metadata_instances_flagged(self):
        program = samples.simple_router()
        assert program.headers["meta"].is_metadata
        assert "meta.egress_port" in program.all_fields()

    def test_actions_parsed(self):
        program = parse(MINIMAL)
        action = program.actions["set_a"]
        assert action.params == ["v"]
        assert action.body[0].op == "modify_field"
        assert action.body[0].args == ["h.a", "v"]

    def test_tables_parsed(self):
        program = parse(MINIMAL)
        table = program.tables["t1"]
        assert table.match_fields() == ["h.b"]
        assert table.actions == ["set_a", "nothing"]
        assert table.size == 4

    def test_default_table_size(self):
        assert parse(MINIMAL).tables["t2"].size == 1024

    def test_control_flow_order(self):
        assert parse(MINIMAL).table_order() == ["t1", "t2"]

    def test_registers_parsed(self):
        program = samples.simple_router()
        register = program.registers["flow_counter"]
        assert register.width == 32
        assert register.instance_count == 64

    def test_conditional_apply_parsed(self):
        source = MINIMAL.replace(
            "control ingress { apply(t1); apply(t2); }",
            "control ingress { apply(t1); if (h.a == 0) { apply(t2); } }",
        )
        program = parse(source)
        assert program.control_flow[1].condition_field == "h.a"
        assert program.control_flow[1].condition_value == 0

    def test_field_width_lookup(self):
        program = parse(MINIMAL)
        assert program.field_width("h.b") == 16
        with pytest.raises(P4SemanticError):
            program.field_width("nope")
        with pytest.raises(P4SemanticError):
            program.field_width("h.nope")

    def test_comments_ignored(self):
        program = parse("// top comment\n# another\n" + MINIMAL)
        assert "t1" in program.tables

    @pytest.mark.parametrize(
        "source",
        [
            "header_type t { fields { a : ; } }",
            "table t { reads { } actions { } size : many; }",
            "control egress { }",
            "widget w { }",
        ],
    )
    def test_syntax_errors(self, source):
        with pytest.raises(P4SyntaxError):
            parse(source)

    def test_sample_programs_parse_and_validate(self):
        assert samples.simple_router().table_order() == ["forward", "acl", "flow_stats"]
        assert samples.telemetry_pipeline().table_order() == ["bucketize", "accounting", "alarms"]


class TestValidation:
    def test_table_matching_unknown_field_rejected(self):
        source = MINIMAL.replace("h.b : exact;", "h.zzz : exact;")
        with pytest.raises(P4SemanticError):
            parse(source)

    def test_table_with_unknown_action_rejected(self):
        source = MINIMAL.replace("actions { set_a; nothing; }", "actions { teleport; }")
        with pytest.raises(P4SemanticError):
            parse(source)

    def test_control_applying_unknown_table_rejected(self):
        source = MINIMAL.replace("apply(t2);", "apply(ghost);")
        with pytest.raises(P4SemanticError):
            parse(source)

    def test_action_referencing_unknown_field_rejected(self):
        source = MINIMAL.replace("modify_field(h.a, v);", "modify_field(h.zzz, v);")
        with pytest.raises(P4SemanticError):
            parse(source)

    def test_unknown_primitive_rejected(self):
        with pytest.raises(P4SemanticError):
            PrimitiveCall(op="explode", args=[])

    def test_unknown_match_kind_rejected(self):
        with pytest.raises(P4SemanticError):
            TableRead(field="h.a", match_kind="range")


class TestDependencies:
    def test_match_dependency_detected(self):
        # t1's action writes h.a which t2 matches on.
        graph = build_dependency_graph(parse(MINIMAL))
        assert graph.has_edge("t1", "t2")
        assert graph.edges["t1", "t2"]["kind"] == MATCH_DEPENDENCY

    def test_action_dependency_detected(self):
        source = """
        header_type h_t { fields { a : 8; b : 8; } }
        header h_t h;
        action bump_a() { add_to_field(h.a, 1); }
        action set_a(v) { modify_field(h.a, v); }
        table t1 { reads { h.b : exact; } actions { bump_a; } }
        table t2 { reads { h.b : exact; } actions { set_a; } }
        control ingress { apply(t1); apply(t2); }
        """
        graph = build_dependency_graph(parse(source))
        assert graph.edges["t1", "t2"]["kind"] == ACTION_DEPENDENCY

    def test_independent_tables_have_no_edge(self):
        source = """
        header_type h_t { fields { a : 8; b : 8; } }
        header h_t h;
        action bump_a() { add_to_field(h.a, 1); }
        action bump_b() { add_to_field(h.b, 1); }
        table t1 { reads { h.a : exact; } actions { bump_a; } }
        table t2 { reads { h.b : exact; } actions { bump_b; } }
        control ingress { apply(t1); apply(t2); }
        """
        graph = build_dependency_graph(parse(source))
        assert not graph.has_edge("t1", "t2")

    def test_shared_register_creates_action_dependency(self):
        program = samples.telemetry_pipeline()
        usage_a = table_usage(program, "accounting")
        assert "byte_totals" in usage_a.registers

    def test_classify_dependency_successor(self):
        program = parse(MINIMAL)
        before = table_usage(program, "t2")
        after = table_usage(program, "t2")
        # A table compared against itself with no writes in common but same
        # match fields is a successor relationship here (no writes at all).
        before.action_writes.clear()
        after.action_writes.clear()
        assert classify_dependency(before, after) in (SUCCESSOR_DEPENDENCY, ACTION_DEPENDENCY)

    def test_conditional_application_adds_control_dependency(self):
        source = samples.SIMPLE_ROUTER.replace(
            "apply(acl);", ""
        ).replace(
            "apply(flow_stats);",
            "if (meta.egress_port == 1) { apply(flow_stats); }",
        )
        graph = build_dependency_graph(parse(source))
        assert graph.has_edge("forward", "flow_stats")
        assert graph.edges["forward", "flow_stats"]["kind"] == MATCH_DEPENDENCY

    def test_duplicate_table_application_rejected(self):
        source = MINIMAL.replace("apply(t2);", "apply(t1);")
        with pytest.raises(P4SemanticError):
            build_dependency_graph(parse(source))

    def test_critical_path_and_summary(self):
        graph = build_dependency_graph(samples.simple_router())
        assert critical_path(graph) == ["forward", "acl"]
        summary = dependency_summary(graph)
        assert summary[MATCH_DEPENDENCY] >= 1

    def test_usage_collects_action_reads_and_writes(self):
        program = samples.simple_router()
        usage = table_usage(program, "forward")
        assert "meta.egress_port" in usage.action_writes
        assert "ipv4.dstAddr" in usage.match_fields
        with pytest.raises(P4SemanticError):
            table_usage(program, "ghost")

    def test_action_field_queries(self):
        program = samples.simple_router()
        count_flow = program.actions["count_flow"]
        assert "meta.tmp_count" in count_flow.fields_written()
        assert "flow_counter" in count_flow.registers_used()
        set_nhop = program.actions["set_nhop"]
        assert "meta.egress_port" in set_nhop.fields_written()
