"""Tests for the ALU DSL pretty-printer (round-trip and formatting)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import atoms
from repro.alu_dsl import ALUInterpreter, format_expr, format_spec, format_stmts, parse_and_analyze
from repro.alu_dsl.ast_nodes import BinaryOp, MuxExpr, Number, UnaryOp, Var
from repro.dgen.optimize import specialize_spec


class TestExpressionFormatting:
    def test_number_and_variable(self):
        assert format_expr(Number(7)) == "7"
        assert format_expr(Var("pkt_0")) == "pkt_0"

    def test_binary_with_precedence_parentheses(self):
        expr = BinaryOp("*", BinaryOp("+", Var("a"), Var("b")), Number(2))
        assert format_expr(expr) == "(a + b) * 2"

    def test_no_redundant_parentheses(self):
        expr = BinaryOp("+", Var("a"), BinaryOp("*", Var("b"), Number(2)))
        assert format_expr(expr) == "a + b * 2"

    def test_unary(self):
        assert format_expr(UnaryOp("!", Var("x"))) == "!x"

    def test_primitive_calls(self):
        expr = MuxExpr((Var("pkt_0"), Var("pkt_1")))
        assert format_expr(expr) == "Mux2(pkt_0, pkt_1)"

    def test_statement_formatting(self):
        spec = atoms.get_atom("pred_raw")
        lines = format_stmts(spec.body)
        assert lines[0].startswith("if (rel_op(")
        assert lines[-1] == "}"


class TestSpecRoundTrip:
    @pytest.mark.parametrize("name", atoms.atom_names())
    def test_catalogue_atoms_round_trip_behaviourally(self, name):
        """parse(print(atom)) behaves exactly like the original atom."""
        original = atoms.get_atom(name)
        reparsed = parse_and_analyze(format_spec(original), name=name)
        assert reparsed.holes == original.holes
        holes = {hole: 1 for hole in original.holes}
        operands = [7] * original.num_operands
        state = [3] * original.num_state_vars
        a = ALUInterpreter(original).execute(operands, list(state), holes)
        b = ALUInterpreter(reparsed).execute(operands, list(state), holes)
        assert (a.output, a.state) == (b.output, b.state)

    def test_specialized_spec_prints_without_primitives(self):
        spec = atoms.get_atom("if_else_raw")
        holes = {hole: 0 for hole in spec.holes}
        text = format_spec(specialize_spec(spec, holes))
        assert "Mux3" not in text and "rel_op" not in text
        assert "state_0" in text

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_specialized_round_trip_random_holes(self, data):
        """Printing and reparsing a specialised atom preserves its behaviour."""
        spec = atoms.get_atom("sub")
        holes = {hole: data.draw(st.integers(min_value=0, max_value=7), label=hole)
                 for hole in spec.holes}
        specialized = specialize_spec(spec, holes)
        reparsed = parse_and_analyze(format_spec(specialized), name="sub_specialized")
        operands = [data.draw(st.integers(min_value=0, max_value=200)) for _ in range(2)]
        state = [data.draw(st.integers(min_value=0, max_value=200))]
        expected = ALUInterpreter(spec).execute(operands, list(state), holes)
        actual = ALUInterpreter(reparsed).execute(operands, list(state), {})
        assert (expected.output, expected.state) == (actual.output, actual.state)
