"""Unit tests for the code-generation IR and its Python printer."""

import pytest

from repro.ir import (
    Assign,
    Comment,
    ExprStmt,
    FunctionDef,
    If,
    Module,
    Pass,
    Return,
    count_source_lines,
    to_source,
)


def compile_module(module):
    namespace = {}
    exec(compile(to_source(module), "<test>", "exec"), namespace)  # noqa: S102
    return namespace


class TestPrinter:
    def test_simple_function(self):
        module = Module(functions=[FunctionDef("f", ["x"], [Return("x + 1")])])
        namespace = compile_module(module)
        assert namespace["f"](4) == 5

    def test_module_docstring_emitted(self):
        module = Module(docstring="generated for tests")
        assert to_source(module).startswith('"""generated for tests"""')

    def test_globals_emitted_before_functions(self):
        module = Module(
            globals=[Assign("WIDTH", "3")],
            functions=[FunctionDef("get", [], [Return("WIDTH")])],
        )
        namespace = compile_module(module)
        assert namespace["WIDTH"] == 3
        assert namespace["get"]() == 3

    def test_function_docstring(self):
        module = Module(functions=[FunctionDef("f", [], [Return("0")], docstring="doc here")])
        namespace = compile_module(module)
        assert namespace["f"].__doc__ == "doc here"

    def test_if_elif_else(self):
        body = [
            If(
                branches=[("x == 0", [Return("'zero'")]), ("x == 1", [Return("'one'")])],
                orelse=[Return("'many'")],
            )
        ]
        namespace = compile_module(Module(functions=[FunctionDef("classify", ["x"], body)]))
        assert namespace["classify"](0) == "zero"
        assert namespace["classify"](1) == "one"
        assert namespace["classify"](9) == "many"

    def test_if_without_else(self):
        body = [
            Assign("result", "0"),
            If(branches=[("x > 0", [Assign("result", "1")])]),
            Return("result"),
        ]
        namespace = compile_module(Module(functions=[FunctionDef("f", ["x"], body)]))
        assert namespace["f"](5) == 1
        assert namespace["f"](-1) == 0

    def test_empty_branch_body_gets_pass(self):
        body = [If(branches=[("x > 0", [])], orelse=[Return("1")]), Return("0")]
        namespace = compile_module(Module(functions=[FunctionDef("f", ["x"], body)]))
        assert namespace["f"](3) == 0
        assert namespace["f"](-3) == 1

    def test_nested_if_indentation(self):
        inner = If(branches=[("y > 0", [Return("2")])], orelse=[Return("1")])
        body = [If(branches=[("x > 0", [inner])], orelse=[Return("0")])]
        namespace = compile_module(Module(functions=[FunctionDef("f", ["x", "y"], body)]))
        assert namespace["f"](1, 1) == 2
        assert namespace["f"](1, -1) == 1
        assert namespace["f"](-1, 1) == 0

    def test_comment_emitted_as_hash(self):
        module = Module(functions=[FunctionDef("f", [], [Comment("explains things"), Return("0")])])
        assert "# explains things" in to_source(module)

    def test_multiline_comment(self):
        module = Module(functions=[FunctionDef("f", [], [Comment("line one\nline two"), Pass()])])
        source = to_source(module)
        assert "# line one" in source and "# line two" in source

    def test_expr_statement(self):
        module = Module(
            globals=[Assign("calls", "[]")],
            functions=[FunctionDef("f", [], [ExprStmt("calls.append(1)"), Return("calls")])],
        )
        namespace = compile_module(module)
        assert namespace["f"]() == [1]

    def test_empty_function_gets_pass(self):
        namespace = compile_module(Module(functions=[FunctionDef("f", [], [])]))
        assert namespace["f"]() is None

    def test_trailer_emitted_last(self):
        module = Module(
            functions=[FunctionDef("f", [], [Return("1")])],
            trailer=[Assign("TABLE", "[f]")],
        )
        namespace = compile_module(module)
        assert namespace["TABLE"][0]() == 1


class TestModuleQueries:
    def test_function_names_and_lookup(self):
        module = Module(functions=[FunctionDef("a", [], []), FunctionDef("b", [], [])])
        assert module.function_names() == ["a", "b"]
        assert module.get_function("b").name == "b"
        with pytest.raises(KeyError):
            module.get_function("missing")

    def test_count_statements_recurses(self):
        body = [If(branches=[("x", [Return("1"), Return("2")])], orelse=[Return("3")])]
        module = Module(functions=[FunctionDef("f", ["x"], body)])
        # 1 function + 1 if + 3 returns
        assert module.count_statements() == 5

    def test_count_source_lines_ignores_blank_lines(self):
        module = Module(functions=[FunctionDef("f", [], [Return("1")]), FunctionDef("g", [], [Return("2")])])
        assert count_source_lines(module) == 4
