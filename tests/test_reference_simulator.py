"""Tests for the interpreted reference simulator and its agreement with dgen's output."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import atoms, dgen
from repro.dsim import RMTSimulator, ReferenceSimulator
from repro.errors import MissingMachineCodeError, SimulationError
from repro.hardware import PipelineSpec
from repro.machine_code import naming
from repro.machine_code.pairs import MachineCode
from repro.programs import TABLE1_ORDER, get_program


class TestReferenceSimulatorBasics:
    def test_passthrough_identity(self, small_pipeline_spec, passthrough_machine_code):
        simulator = ReferenceSimulator(small_pipeline_spec, passthrough_machine_code)
        trace = simulator.run([[1, 2], [3, 4]])
        assert trace.outputs() == [(1, 2), (3, 4)]

    def test_state_persists_across_phvs(self):
        from repro.chipmunk import MachineCodeBuilder

        spec = PipelineSpec(
            depth=1, width=1,
            stateful_alu=atoms.get_atom("raw"),
            stateless_alu=atoms.get_atom("stateless_mux"),
            name="reference_counter",
        )
        builder = MachineCodeBuilder(spec)
        builder.configure_raw(0, 0, use_state=True, rhs=("pkt", 0), input_containers=[0, 0])
        builder.route_output(0, 0, kind=naming.STATEFUL, slot=0)
        simulator = ReferenceSimulator(spec, builder.build())
        trace = simulator.run([[5], [6], [7]])
        assert trace.outputs() == [(0,), (5,), (11,)]
        assert trace.final_state[0][0] == [18]

    def test_initial_state_honoured(self, small_pipeline_spec, passthrough_machine_code):
        initial = [[[9] for _ in range(2)] for _ in range(2)]
        simulator = ReferenceSimulator(small_pipeline_spec, passthrough_machine_code, initial)
        simulator.run([[0, 0]])
        # Pass-through machine code still executes the stateful ALUs; their
        # initial values came from the provided state, not zeros.
        assert simulator.state[0][0][0] != 0 or simulator.state[0][0] == [9]

    def test_missing_machine_code_detected(self, small_pipeline_spec, passthrough_machine_code):
        broken = passthrough_machine_code.without([naming.output_mux_name(0, 0)])
        simulator = ReferenceSimulator(small_pipeline_spec, broken)
        with pytest.raises(MissingMachineCodeError):
            simulator.run([[1, 2]])

    def test_wrong_width_rejected(self, small_pipeline_spec, passthrough_machine_code):
        simulator = ReferenceSimulator(small_pipeline_spec, passthrough_machine_code)
        with pytest.raises(SimulationError):
            simulator.process_phv([1])

    def test_wrong_initial_state_shape_rejected(self, small_pipeline_spec, passthrough_machine_code):
        with pytest.raises(SimulationError):
            ReferenceSimulator(small_pipeline_spec, passthrough_machine_code, initial_state=[])


class TestAgreementWithGeneratedCode:
    @pytest.mark.parametrize("name", TABLE1_ORDER)
    def test_reference_matches_dgen_for_benchmark_programs(self, name):
        """The interpreted path and the generated-code path agree on every program."""
        program = get_program(name)
        spec = program.pipeline_spec()
        machine_code = program.machine_code()
        inputs = program.traffic_generator(seed=17).generate(60)

        reference = ReferenceSimulator(spec, machine_code, program.initial_pipeline_state())
        reference_trace = reference.run(inputs)

        description = dgen.generate(spec, machine_code, opt_level=2)
        generated = RMTSimulator(description, initial_state=program.initial_pipeline_state()).run(inputs)

        assert generated.outputs == reference_trace.outputs()
        assert generated.final_state == reference_trace.final_state

    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_reference_matches_dgen_for_random_machine_code(self, data):
        """Random machine code over a 2x2 pipeline: both paths produce identical traces."""
        spec = PipelineSpec(
            depth=2, width=2,
            stateful_alu=atoms.get_atom("pred_raw"),
            stateless_alu=atoms.get_atom("stateless_full"),
            name="reference_property",
        )
        domains = spec.hole_domains()
        pairs = {}
        for pair_name in spec.expected_machine_code_names():
            domain = domains[pair_name]
            upper = (domain - 1) if domain else 31
            pairs[pair_name] = data.draw(st.integers(min_value=0, max_value=upper), label=pair_name)
        machine_code = MachineCode(pairs)
        inputs = [[data.draw(st.integers(min_value=0, max_value=255)) for _ in range(2)]
                  for _ in range(5)]

        reference_trace = ReferenceSimulator(spec, machine_code).run(inputs)
        description = dgen.generate(spec, machine_code, opt_level=0)
        generated = RMTSimulator(description).run(inputs)

        assert generated.outputs == reference_trace.outputs()
        assert generated.final_state == reference_trace.final_state
