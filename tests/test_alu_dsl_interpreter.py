"""Unit tests for the ALU DSL reference interpreter."""

import pytest

from repro.alu_dsl import ALUInterpreter, parse_and_analyze
from repro.alu_dsl import semantics
from repro.errors import ALUDSLSemanticError, MissingMachineCodeError

STATEFUL_TEMPLATE = """
type: stateful
state variables : {{state_0}}
hole variables : {{{holes}}}
packet fields : {{pkt_0, pkt_1}}
{body}
"""

STATELESS_TEMPLATE = """
type: stateless
state variables : {{}}
hole variables : {{}}
packet fields : {{pkt_0, pkt_1}}
{body}
"""


def run_stateful(body, operands, state, holes=None, hole_vars=""):
    spec = parse_and_analyze(STATEFUL_TEMPLATE.format(body=body, holes=hole_vars))
    return ALUInterpreter(spec).execute(operands, state, holes or {})


def run_stateless(body, operands, holes=None):
    spec = parse_and_analyze(STATELESS_TEMPLATE.format(body=body))
    return ALUInterpreter(spec).execute(operands, [], holes or {})


class TestBasicExecution:
    def test_plain_assignment_updates_state(self):
        result = run_stateful("state_0 = pkt_0 + pkt_1;", [3, 4], [0])
        assert result.state == [7]

    def test_default_output_is_old_state(self):
        result = run_stateful("state_0 = pkt_0;", [99, 0], [5])
        assert result.output == 5
        assert result.state == [99]

    def test_explicit_return_overrides_default(self):
        result = run_stateful("state_0 = pkt_0; return 42;", [1, 2], [7])
        assert result.output == 42

    def test_return_stops_execution(self):
        result = run_stateful("return pkt_0; state_0 = 999;", [11, 0], [3])
        assert result.output == 11
        assert result.state == [3]

    def test_stateless_return(self):
        result = run_stateless("return pkt_0 * pkt_1;", [6, 7])
        assert result.output == 42
        assert result.state == []

    def test_local_variables(self):
        result = run_stateful("tmp = pkt_0 + 1; state_0 = tmp * 2;", [4, 0], [0])
        assert result.state == [10]

    def test_sequential_state_reads_see_updates(self):
        result = run_stateful("state_0 = state_0 + 1; state_0 = state_0 + 1;", [0, 0], [10])
        assert result.state == [12]

    def test_operand_count_checked(self):
        with pytest.raises(ALUDSLSemanticError):
            run_stateful("state_0 = pkt_0;", [1], [0])

    def test_state_count_checked(self):
        with pytest.raises(ALUDSLSemanticError):
            run_stateful("state_0 = pkt_0;", [1, 2], [0, 0])


class TestControlFlow:
    def test_if_true_branch(self):
        result = run_stateful(
            "if (pkt_0 > 5) { state_0 = 1; } else { state_0 = 2; }", [9, 0], [0]
        )
        assert result.state == [1]

    def test_if_false_branch(self):
        result = run_stateful(
            "if (pkt_0 > 5) { state_0 = 1; } else { state_0 = 2; }", [3, 0], [0]
        )
        assert result.state == [2]

    def test_elif_branch(self):
        body = (
            "if (pkt_0 == 0) { state_0 = 10; } "
            "elif (pkt_0 == 1) { state_0 = 20; } "
            "else { state_0 = 30; }"
        )
        assert run_stateful(body, [1, 0], [0]).state == [20]
        assert run_stateful(body, [5, 0], [0]).state == [30]

    def test_if_without_else_no_change(self):
        result = run_stateful("if (pkt_0 > 100) { state_0 = 1; }", [5, 0], [7])
        assert result.state == [7]

    def test_nested_if(self):
        body = (
            "if (pkt_0 > 0) { if (pkt_1 > 0) { state_0 = 3; } else { state_0 = 2; } } "
            "else { state_0 = 1; }"
        )
        assert run_stateful(body, [1, 1], [0]).state == [3]
        assert run_stateful(body, [1, 0], [0]).state == [2]
        assert run_stateful(body, [0, 9], [0]).state == [1]


class TestOperatorSemantics:
    def test_division_by_zero_is_zero(self):
        assert run_stateless("return pkt_0 / pkt_1;", [5, 0]).output == 0

    def test_modulo_by_zero_is_zero(self):
        assert run_stateless("return pkt_0 % pkt_1;", [5, 0]).output == 0

    def test_integer_division(self):
        assert run_stateless("return pkt_0 / pkt_1;", [7, 2]).output == 3

    def test_relational_produces_zero_or_one(self):
        assert run_stateless("return pkt_0 < pkt_1;", [1, 2]).output == 1
        assert run_stateless("return pkt_0 < pkt_1;", [2, 1]).output == 0

    def test_logical_operators(self):
        assert run_stateless("return pkt_0 && pkt_1;", [3, 0]).output == 0
        assert run_stateless("return pkt_0 || pkt_1;", [0, 2]).output == 1

    def test_unary_not(self):
        assert run_stateless("return !pkt_0;", [0, 9]).output == 1
        assert run_stateless("return !pkt_0;", [7, 9]).output == 0

    def test_unary_minus(self):
        assert run_stateless("return -pkt_0 + pkt_1;", [3, 10]).output == 7


class TestPrimitives:
    def test_mux2_selection(self):
        body = "state_0 = Mux2(pkt_0, pkt_1);"
        assert run_stateful(body, [5, 9], [0], {"mux2_0": 0}).state == [5]
        assert run_stateful(body, [5, 9], [0], {"mux2_0": 1}).state == [9]

    def test_mux_value_wraps_modulo_width(self):
        body = "state_0 = Mux2(pkt_0, pkt_1);"
        assert run_stateful(body, [5, 9], [0], {"mux2_0": 2}).state == [5]

    def test_mux3_const_input(self):
        body = "state_0 = Mux3(pkt_0, pkt_1, C());"
        holes = {"mux3_0": 2, "const_0": 77}
        assert run_stateful(body, [1, 2], [0], holes).state == [77]

    def test_opt_keeps_or_zeroes(self):
        body = "state_0 = Opt(state_0) + 1;"
        assert run_stateful(body, [0, 0], [10], {"opt_0": 0}).state == [11]
        assert run_stateful(body, [0, 0], [10], {"opt_0": 1}).state == [1]

    def test_const_returns_machine_code_value(self):
        body = "state_0 = C();"
        assert run_stateful(body, [0, 0], [0], {"const_0": 123}).state == [123]

    @pytest.mark.parametrize("opcode, expected", [(0, 1), (1, 0), (2, 0), (3, 0), (4, 1), (5, 1)])
    def test_rel_op_opcodes(self, opcode, expected):
        # operands equal: ==, <=, >= hold; <, >, != do not.
        body = "state_0 = rel_op(pkt_0, pkt_1);"
        assert run_stateful(body, [4, 4], [0], {"rel_op_0": opcode}).state == [expected]

    @pytest.mark.parametrize("opcode, expected", [(0, 10), (1, 4), (2, 21), (3, 2)])
    def test_arith_op_opcodes(self, opcode, expected):
        body = "state_0 = arith_op(pkt_0, pkt_1);"
        assert run_stateful(body, [7, 3], [0], {"arith_op_0": opcode}).state == [expected]

    @pytest.mark.parametrize("opcode, expected", [(0, 0), (1, 1)])
    def test_bool_op_opcodes(self, opcode, expected):
        body = "state_0 = bool_op(pkt_0, pkt_1);"
        assert run_stateful(body, [1, 0], [0], {"bool_op_0": opcode}).state == [expected]

    def test_hole_variable_value_injected(self):
        body = "state_0 = state_0 + imm;"
        result = run_stateful(body, [0, 0], [10], {"imm": 5}, hole_vars="imm")
        assert result.state == [15]

    def test_missing_hole_raises(self):
        body = "state_0 = Mux2(pkt_0, pkt_1);"
        with pytest.raises(MissingMachineCodeError) as excinfo:
            run_stateful(body, [1, 2], [0], {})
        assert excinfo.value.name == "mux2_0"


class TestOpcodeTables:
    def test_rel_symbols_match_functions(self):
        for index, symbol in enumerate(semantics.REL_OP_SYMBOLS):
            assert semantics.apply_rel_op(index, 3, 5) == semantics.apply_binary(symbol, 3, 5)

    def test_arith_symbols_match_functions(self):
        for index, symbol in enumerate(semantics.ARITH_OP_SYMBOLS):
            assert semantics.apply_arith_op(index, 9, 4) == semantics.apply_binary(symbol, 9, 4)

    def test_bool_symbols_match_functions(self):
        for index, symbol in enumerate(semantics.BOOL_OP_SYMBOLS):
            assert semantics.apply_bool_op(index, 1, 0) == semantics.apply_binary(symbol, 1, 0)

    def test_templates_and_functions_agree(self):
        for template, function in semantics.REL_OPS + semantics.ARITH_OPS + semantics.BOOL_OPS:
            code = template.format(a="7", b="3")
            assert eval(code) == function(7, 3)  # noqa: S307 - controlled template text

    def test_binary_table_templates_agree(self):
        for op, (template, function) in semantics.BINARY_OPS.items():
            code = template.format(a="9", b="4")
            assert eval(code) == function(9, 4)  # noqa: S307 - controlled template text
