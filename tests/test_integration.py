"""End-to-end integration tests spanning multiple subsystems."""


from repro import atoms, dgen
from repro.chipmunk import ChipmunkCompiler, MachineCodeBuilder, SynthesisConfig
from repro.domino import PacketLayout
from repro.dsim import RMTSimulator
from repro.hardware import PipelineSpec
from repro.machine_code import MachineCode, naming
from repro.programs import get_program
from repro.testing import FailureClass, FuzzConfig, FuzzTester


class TestFigure5Workflow:
    """The complete compiler-testing workflow on a benchmark program."""

    def test_machine_code_round_trips_through_files(self, tmp_path):
        """Compiler writes machine code to disk; Druzhba loads and validates it."""
        program = get_program("marple_new_flow")
        path = tmp_path / "marple.mc"
        program.machine_code().to_file(path)
        loaded = MachineCode.from_file(path)
        loaded.validate_names()
        tester = FuzzTester(
            program.pipeline_spec(),
            program.specification(),
            config=FuzzConfig(num_phvs=150, seed=3),
            traffic_generator=program.traffic_generator(seed=3),
            initial_state=program.initial_pipeline_state(),
        )
        assert tester.test(loaded).passed

    def test_spec_trace_matches_pipeline_trace_directly(self):
        """Run dgen + dsim + the spec by hand (without the FuzzTester wrapper)."""
        from repro.testing import compare_traces

        program = get_program("rcp")
        description = dgen.generate(program.pipeline_spec(), program.machine_code(), opt_level=1)
        traffic = program.traffic_generator(seed=21)
        inputs = traffic.generate(200)
        pipeline_trace = RMTSimulator(
            description, initial_state=program.initial_pipeline_state()
        ).run(inputs).output_trace
        spec_trace = program.specification().run(inputs)
        report = compare_traces(pipeline_trace, spec_trace, containers=program.relevant_containers)
        assert report.equivalent

    def test_buggy_compiler_output_caught(self):
        """A 'compiler bug' (wrong relational operator) is caught by fuzzing."""
        program = get_program("sampling")
        machine_code = program.machine_code()
        # Flip the stage-1 comparison from == to != : the sample flag inverts.
        buggy = machine_code.with_pairs(
            {naming.alu_hole_name(1, naming.STATELESS, 0, "rel_op_0"): 3}
        )
        tester = FuzzTester(
            program.pipeline_spec(),
            program.specification(),
            config=FuzzConfig(num_phvs=100, seed=5),
            traffic_generator=program.traffic_generator(seed=5),
            initial_state=program.initial_pipeline_state(),
        )
        outcome = tester.test(buggy)
        assert outcome.failure_class in (FailureClass.OUTPUT_MISMATCH, FailureClass.VALUE_RANGE)
        assert outcome.counterexample is not None


class TestSynthesisToSimulationPipeline:
    def test_synthesised_code_runs_through_optimised_dgen(self):
        """Machine code found by CEGIS simulates identically at every opt level."""
        spec = PipelineSpec(
            depth=1, width=1,
            stateful_alu=atoms.get_atom("raw"),
            stateless_alu=atoms.get_atom("stateless_rel"),
            name="integration_synthesis",
        )
        freeze = {
            naming.output_mux_name(0, 0): spec.output_mux_value_for(naming.STATEFUL, 0),
            naming.input_mux_name(0, naming.STATEFUL, 0, 0): 0,
            naming.input_mux_name(0, naming.STATEFUL, 0, 1): 0,
            naming.input_mux_name(0, naming.STATELESS, 0, 0): 0,
            naming.input_mux_name(0, naming.STATELESS, 0, 1): 0,
        }
        search = [naming.alu_hole_name(0, naming.STATEFUL, 0, hole)
                  for hole in atoms.get_atom("raw").holes]
        source = """
        state seen = 0;
        transaction count_packets {
            pkt.out = seen;
            seen = seen + 1;
        }
        """
        layout = PacketLayout(container_fields=["ignored"], output_fields=["out"])
        compiler = ChipmunkCompiler(spec, SynthesisConfig(seed=7))
        result = compiler.compile_domino(source, layout, constant_pool=[0, 1],
                                         freeze=freeze, search_names=search)
        assert result.synthesis.success
        inputs = [[v] for v in (5, 9, 2, 8)]
        outputs = {}
        for level in dgen.OPT_LEVELS:
            description = dgen.generate(spec, result.machine_code, opt_level=level)
            outputs[level] = RMTSimulator(description).run(inputs).outputs
        assert outputs[0] == outputs[1] == outputs[2] == [(0,), (1,), (2,), (3,)]


class TestMultiProgramPipelineSharing:
    def test_two_algorithms_coexist_on_one_pipeline(self):
        """Two independent kernels placed on different slots of the same pipeline."""
        spec = PipelineSpec(
            depth=1, width=3,
            stateful_alu=atoms.get_atom("raw"),
            stateless_alu=atoms.get_atom("stateless_full"),
            name="shared",
        )
        builder = MachineCodeBuilder(spec)
        # Slot 0: accumulate container 0 into state, expose old total on container 1.
        builder.configure_raw(0, 0, use_state=True, rhs=("pkt", 0), input_containers=[0, 0])
        builder.route_output(0, 1, kind=naming.STATEFUL, slot=0)
        # Stateless slot 2: threshold container 2, write flag back to container 2.
        builder.configure_stateless_full(0, 2, mode="rel", op=">", a=("pkt", 0), b=("const", 10),
                                         input_containers=[2, 2])
        builder.route_output(0, 2, kind=naming.STATELESS, slot=2)
        description = dgen.generate(spec, builder.build(), opt_level=2)
        result = RMTSimulator(description).run([[4, 0, 20], [6, 0, 3]])
        assert result.outputs == [(4, 0, 1), (6, 4, 0)]

    def test_fuzzing_all_levels_for_composite_configuration(self):
        spec = PipelineSpec(
            depth=2, width=2,
            stateful_alu=atoms.get_atom("pred_raw"),
            stateless_alu=atoms.get_atom("stateless_full"),
            name="composite",
        )
        builder = MachineCodeBuilder(spec)
        builder.configure_pred_raw(0, 0, cond=("<", True, ("pkt", 0)), update=("+", False, ("pkt", 0)),
                                   input_containers=[0, 0])
        builder.route_output(0, 1, kind=naming.STATEFUL, slot=0)
        machine_code = builder.build()

        def running_max_spec(phv, state):
            old = state["maximum"]
            if state["maximum"] < phv[0]:
                state["maximum"] = phv[0]
            return [phv[0], old]

        from repro.testing import FunctionSpecification

        specification = FunctionSpecification(
            function=running_max_spec, num_containers=2,
            state_template={"maximum": 0}, relevant_containers=[1],
        )
        tester = FuzzTester(spec, specification, config=FuzzConfig(num_phvs=120, seed=2))
        outcomes = tester.test_all_levels(machine_code)
        assert all(outcome.passed for outcome in outcomes.values())
