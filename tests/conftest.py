"""Shared fixtures for the Druzhba reproduction test suite."""

from __future__ import annotations

import pytest

from repro import atoms, dgen
from repro.hardware import PipelineSpec
from repro.machine_code.pairs import MachineCode

#: The If Else Raw example of paper Figure 4, in this reproduction's DSL syntax.
IF_ELSE_RAW_SOURCE = atoms.STATEFUL_SOURCES["if_else_raw"]

#: A tiny stateful ALU used by unit tests that want something smaller than the atoms.
SIMPLE_STATEFUL_SOURCE = """
type: stateful
state variables : {state_0}
hole variables : {}
packet fields : {pkt_0, pkt_1}
state_0 = arith_op(Mux2(pkt_0, pkt_1), Mux2(pkt_0, pkt_1));
"""

#: A tiny stateless ALU: forward one operand or an immediate.
SIMPLE_STATELESS_SOURCE = """
type: stateless
state variables : {}
hole variables : {}
packet fields : {pkt_0, pkt_1}
return Mux3(pkt_0, pkt_1, C());
"""


@pytest.fixture(scope="session")
def if_else_raw_spec():
    """Analysed spec of the paper's Figure 4 atom."""
    return atoms.get_atom("if_else_raw")


@pytest.fixture(scope="session")
def stateless_full_spec():
    """Analysed spec of the default stateless ALU."""
    return atoms.get_atom("stateless_full")


@pytest.fixture(scope="session")
def small_pipeline_spec(if_else_raw_spec, stateless_full_spec):
    """A 2x2 pipeline used across dgen/dsim tests."""
    return PipelineSpec(
        depth=2,
        width=2,
        stateful_alu=if_else_raw_spec,
        stateless_alu=stateless_full_spec,
        name="test_pipeline",
    )


@pytest.fixture(scope="session")
def passthrough_machine_code(small_pipeline_spec) -> MachineCode:
    """Complete machine code in which every stage is a no-op."""
    return small_pipeline_spec.passthrough_machine_code()


@pytest.fixture(scope="session")
def passthrough_descriptions(small_pipeline_spec, passthrough_machine_code):
    """Compiled pipeline descriptions at every optimisation level."""
    return {
        level: dgen.generate(small_pipeline_spec, passthrough_machine_code, opt_level=level)
        for level in dgen.OPT_LEVELS
    }
