"""dRMT fused codegen: bit-for-bit fidelity, hazard analysis, observers."""

from __future__ import annotations

import pytest

from repro.drmt import (
    DRMTSimulator,
    DrmtHardwareParams,
    PacketGenerator,
    generate_bundle,
    run_to_completion_hazard,
)
from repro.drmt.fused import visit_orders
from repro.errors import SimulationError
from repro.p4 import samples

SEEDS = (0, 7, 1234)

PROGRAMS = {
    "simple_router": (samples.simple_router, samples.SIMPLE_ROUTER_ENTRIES),
    "telemetry_pipeline": (samples.telemetry_pipeline, samples.TELEMETRY_ENTRIES),
}

#: Two tables whose actions touch the same register: the later table's action
#: launches at a later cycle, so the tick model interleaves the register
#: accesses across packets — the case run-to-completion cannot reproduce but
#: the fused loop (which replays the tick interleaving) must.
HAZARD_PROGRAM = """
header_type pkt_t {
    fields {
        f : 16;
    }
}

header_type meta_t {
    fields {
        tmp : 32;
    }
}

header pkt_t pkt;
metadata meta_t meta;

register shared {
    width : 32;
    instance_count : 4;
}

action bump() {
    register_read(meta.tmp, shared, 0);
    add_to_field(meta.tmp, 1);
    register_write(shared, 0, meta.tmp);
}

action scale() {
    register_read(meta.tmp, shared, 0);
    add_to_field(meta.tmp, pkt.f);
    register_write(shared, 0, meta.tmp);
}

table first {
    reads {
        pkt.f : exact;
    }
    actions { bump; }
    size : 4;
    default_action : bump;
}

table second {
    reads {
        meta.tmp : exact;
    }
    actions { scale; }
    size : 4;
    default_action : scale;
}

control ingress {
    apply(first);
    apply(second);
}
"""


def _records_equal(left, right):
    for a, b in zip(left.records, right.records):
        for field in (
            "packet_id",
            "processor",
            "arrival_tick",
            "completed_tick",
            "inputs",
            "outputs",
            "dropped",
        ):
            if getattr(a, field) != getattr(b, field):
                return False, (field, a, b)
    return True, None


def run_engines(program_factory, entries, num_processors, seed, count=150, engines=("tick", "generic", "fused")):
    bundle = generate_bundle(
        program_factory(), DrmtHardwareParams(num_processors=num_processors)
    )
    packets = PacketGenerator(bundle.program, seed=seed).generate(count)
    return {
        engine: DRMTSimulator(bundle, table_entries=entries, engine=engine).run_packets(packets)
        for engine in engines
    }


class TestFusedMatchesTick:
    @pytest.mark.parametrize("program_name", sorted(PROGRAMS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bit_for_bit(self, program_name, seed):
        factory, entries = PROGRAMS[program_name]
        results = run_engines(factory, entries, num_processors=2, seed=seed)
        tick = results["tick"]
        for engine in ("generic", "fused"):
            other = results[engine]
            equal, detail = _records_equal(tick, other)
            assert equal, (engine, detail)
            assert other.ticks == tick.ticks
            assert other.per_processor_packets == tick.per_processor_packets
            assert other.per_processor_operations == tick.per_processor_operations
            assert other.table_hits == tick.table_hits
            assert other.register_dump == tick.register_dump
            assert other.engine == engine

    @pytest.mark.parametrize("num_processors", [1, 3])
    def test_processor_counts(self, num_processors):
        factory, entries = PROGRAMS["simple_router"]
        results = run_engines(factory, entries, num_processors=num_processors, seed=5)
        equal, detail = _records_equal(results["tick"], results["fused"])
        assert equal, detail

    def test_empty_trace(self):
        factory, entries = PROGRAMS["simple_router"]
        results = run_engines(factory, entries, num_processors=2, seed=0, count=0)
        for engine, result in results.items():
            assert result.ticks == 0, engine
            assert result.records == []

    def test_auto_selects_fused(self):
        factory, entries = PROGRAMS["telemetry_pipeline"]
        bundle = generate_bundle(factory(), DrmtHardwareParams(num_processors=2))
        packets = PacketGenerator(bundle.program, seed=3).generate(20)
        result = DRMTSimulator(bundle, table_entries=entries).run_packets(packets)
        assert result.engine == "fused"
        forced = DRMTSimulator(bundle, table_entries=entries).run_packets(
            packets, tick_accurate=True
        )
        assert forced.engine == "tick"
        equal, detail = _records_equal(forced, result)
        assert equal, detail

    def test_fused_program_cached_on_bundle(self):
        factory, _entries = PROGRAMS["simple_router"]
        bundle = generate_bundle(factory(), DrmtHardwareParams(num_processors=2))
        assert bundle.fused_program() is bundle.fused_program()
        assert "run_trace" in bundle.fused_program().source


class TestHazardAnalysis:
    def test_sample_programs_are_hazard_free(self):
        for factory, _entries in PROGRAMS.values():
            bundle = generate_bundle(factory(), DrmtHardwareParams(num_processors=2))
            assert run_to_completion_hazard(bundle.program, bundle.schedule) is None

    def test_cross_cycle_register_access_is_reported(self):
        bundle = generate_bundle(HAZARD_PROGRAM, DrmtHardwareParams(num_processors=2))
        hazard = run_to_completion_hazard(bundle.program, bundle.schedule)
        assert hazard is not None
        assert "shared" in hazard

    def test_generic_engine_refuses_hazardous_program(self):
        bundle = generate_bundle(HAZARD_PROGRAM, DrmtHardwareParams(num_processors=2))
        packets = PacketGenerator(bundle.program, seed=0).generate(10)
        with pytest.raises(SimulationError, match="shared"):
            DRMTSimulator(bundle, engine="generic").run_packets(packets)

    def test_auto_falls_back_to_fused_not_generic(self):
        bundle = generate_bundle(HAZARD_PROGRAM, DrmtHardwareParams(num_processors=2))
        packets = PacketGenerator(bundle.program, seed=0).generate(10)
        result = DRMTSimulator(bundle).run_packets(packets)
        assert result.engine == "fused"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fused_replays_interleaving_on_hazardous_program(self, seed):
        """The fused loop stays bit-for-bit even where run-to-completion cannot."""
        bundle = generate_bundle(HAZARD_PROGRAM, DrmtHardwareParams(num_processors=3))
        packets = PacketGenerator(bundle.program, seed=seed).generate(120)
        tick = DRMTSimulator(bundle, engine="tick").run_packets(packets)
        fused = DRMTSimulator(bundle, engine="fused").run_packets(packets)
        equal, detail = _records_equal(tick, fused)
        assert equal, detail
        assert fused.register_dump == tick.register_dump


class TestVisitOrders:
    def test_orders_follow_processor_then_arrival(self):
        bundle = generate_bundle(samples.simple_router(), DrmtHardwareParams(num_processors=2))
        orders = visit_orders(bundle.schedule, 2)
        assert len(orders) == 2
        active = sorted({start for start in bundle.schedule.start_times.values()})
        for residue, order in enumerate(orders):
            assert sorted(order) == active
            # Within one residue the cycles are grouped by the processor of
            # packet p = t - c, and ordered by arrival (descending cycle).
            keys = [((residue - c) % 2, -c) for c in order]
            assert keys == sorted(keys)


class TestObserver:
    def test_observer_sees_every_live_packet_cycle(self):
        factory, entries = PROGRAMS["simple_router"]
        bundle = generate_bundle(factory(), DrmtHardwareParams(num_processors=2))
        packets = PacketGenerator(bundle.program, seed=1).generate(12)
        events = []

        def observer(packet_id, processor, tick, fields):
            events.append((packet_id, processor, tick, dict(fields)))

        result = DRMTSimulator(bundle, table_entries=entries, engine="fused").run_packets(
            packets, observer=observer
        )
        assert result.engine == "fused"
        assert events
        active_cycles = len({start for start in bundle.schedule.start_times.values()})
        assert len(events) <= len(packets) * active_cycles
        for packet_id, processor, tick, fields in events:
            assert processor == packet_id % 2
            assert 0 <= tick - packet_id < bundle.schedule.makespan
            assert isinstance(fields, dict)
        # The last event of each packet carries its final field values.
        final = {packet_id: fields for packet_id, _proc, _tick, fields in events}
        for record in result.records:
            if not record.dropped:
                assert final[record.packet_id] == record.outputs

    def test_observer_requires_fused_engine(self):
        factory, entries = PROGRAMS["simple_router"]
        bundle = generate_bundle(factory(), DrmtHardwareParams(num_processors=2))
        packets = PacketGenerator(bundle.program, seed=1).generate(3)
        with pytest.raises(SimulationError, match="observer"):
            DRMTSimulator(bundle, table_entries=entries, engine="tick").run_packets(
                packets, observer=lambda *args: None
            )
