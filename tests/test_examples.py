"""Smoke tests: every example script runs to completion and prints what it promises.

The examples are part of the public deliverable, so they are executed as
subprocesses (the way a user would run them) with scaled-down workloads where
an environment variable allows it.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: (script, environment overrides, strings that must appear in stdout)
EXAMPLES = [
    (
        "quickstart.py",
        {},
        ["compiler-testing workflow", "PASS", "missing machine code"],
    ),
    (
        "optimization_levels.py",
        {},
        ["version 1", "version 3", "speedup"],
    ),
    (
        "compiler_testing_workflow.py",
        {},
        ["synthesis success:      True", "value range"],
    ),
    (
        "drmt_simulation.py",
        {},
        ["dRMT dgen", "schedule constraint violations: none", "packets per processor"],
    ),
    (
        "case_study.py",
        {"DRUZHBA_CASE_STUDY_PHVS": "60"},
        ["corpus size", "missing machine code pairs: 2", "limited value range:        6"],
    ),
    (
        "debugging_and_verification.py",
        {},
        ["breakpoint", "PROVEN", "REFUTED"],
    ),
]


@pytest.mark.parametrize("script, env_overrides, expected", EXAMPLES,
                         ids=[example[0] for example in EXAMPLES])
def test_example_runs(script, env_overrides, expected):
    env = dict(os.environ)
    env.update(env_overrides)
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for needle in expected:
        assert needle in completed.stdout, (
            f"expected {needle!r} in the output of {script}; got:\n{completed.stdout[-2000:]}"
        )


def test_every_example_is_listed_here():
    """Adding a new example without a smoke test should fail loudly."""
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    covered = {script for script, _env, _expected in EXAMPLES}
    assert on_disk == covered
