"""Unit tests for dsim: PHVs, the pipeline, the traffic generator and the simulator."""

import pytest

from repro import atoms, dgen
from repro.dsim import (
    PHV,
    Pipeline,
    RMTSimulator,
    Trace,
    TrafficGenerator,
    choice_field,
    constant_field,
    simulate,
    uniform_field,
)
from repro.errors import MissingMachineCodeError, SimulationError
from repro.hardware import PipelineSpec
from repro.machine_code import naming


class TestPHV:
    def test_from_values_copies(self):
        values = [1, 2, 3]
        phv = PHV.from_values(7, values)
        values[0] = 99
        assert phv.read == [1, 2, 3]
        assert phv.phv_id == 7

    def test_commit_moves_write_to_read(self):
        phv = PHV.from_values(0, [1, 2])
        phv.set_write([5, 6])
        assert phv.read == [1, 2]
        phv.commit()
        assert phv.read == [5, 6]

    def test_set_write_length_checked(self):
        phv = PHV.from_values(0, [1, 2])
        with pytest.raises(SimulationError):
            phv.set_write([1])

    def test_snapshot_is_a_copy(self):
        phv = PHV.from_values(0, [4])
        snap = phv.snapshot()
        snap[0] = 9
        assert phv.read == [4]

    def test_num_containers(self):
        assert PHV.from_values(0, [1, 2, 3]).num_containers == 3


class TestTrafficGenerator:
    def test_deterministic_for_same_seed(self):
        a = TrafficGenerator(num_containers=3, seed=5).generate(10)
        b = TrafficGenerator(num_containers=3, seed=5).generate(10)
        assert a == b

    def test_different_seeds_differ(self):
        a = TrafficGenerator(num_containers=3, seed=1).generate(10)
        b = TrafficGenerator(num_containers=3, seed=2).generate(10)
        assert a != b

    def test_value_range_respected(self):
        phvs = TrafficGenerator(num_containers=2, seed=0, min_value=5, max_value=9).generate(50)
        assert all(5 <= value <= 9 for phv in phvs for value in phv)

    def test_default_range_is_ten_bits(self):
        phvs = TrafficGenerator(num_containers=1, seed=0).generate(200)
        assert all(0 <= value <= 1023 for phv in phvs for value in phv)

    def test_field_generators(self):
        generator = TrafficGenerator(
            num_containers=3,
            seed=0,
            field_generators=[constant_field(7), choice_field([1, 2]), None],
        )
        phvs = generator.generate(30)
        assert all(phv[0] == 7 for phv in phvs)
        assert all(phv[1] in (1, 2) for phv in phvs)

    def test_uniform_field_bounds(self):
        generator = TrafficGenerator(
            num_containers=1, seed=0, field_generators=[uniform_field(10, 12)]
        )
        assert all(10 <= phv[0] <= 12 for phv in generator.generate(40))

    def test_invalid_configuration_rejected(self):
        with pytest.raises(SimulationError):
            TrafficGenerator(num_containers=0)
        with pytest.raises(SimulationError):
            TrafficGenerator(num_containers=1, min_value=5, max_value=1)
        with pytest.raises(SimulationError):
            TrafficGenerator(num_containers=2, field_generators=[None])

    def test_negative_count_rejected(self):
        with pytest.raises(SimulationError):
            TrafficGenerator(num_containers=1).generate(-1)

    def test_iter_phvs_matches_generate(self):
        generator = TrafficGenerator(num_containers=2, seed=3)
        assert list(generator.iter_phvs(5)) == generator.generate(5)


class TestTrace:
    def test_append_and_access(self):
        trace = Trace()
        trace.append(0, [1, 2], [3, 4])
        trace.append(1, [5, 6], [7, 8])
        assert len(trace) == 2
        assert trace[1].outputs == (7, 8)
        assert trace.outputs() == [(3, 4), (7, 8)]
        assert trace.inputs() == [(1, 2), (5, 6)]

    def test_container_series(self):
        trace = Trace()
        trace.append(0, [0], [10])
        trace.append(1, [0], [20])
        assert trace.container_series(0) == [10, 20]

    def test_format_truncates(self):
        trace = Trace()
        for index in range(30):
            trace.append(index, [index], [index])
        rendered = trace.format(limit=5)
        assert "more records" in rendered


@pytest.fixture(scope="module")
def counter_description():
    """A 2x1 pipeline: stage 0 accumulates the packet value, stage 1 passes through."""
    spec = PipelineSpec(
        depth=2,
        width=1,
        stateful_alu=atoms.get_atom("raw"),
        stateless_alu=atoms.get_atom("stateless_arith"),
        name="counter",
    )
    from repro.chipmunk import MachineCodeBuilder

    builder = MachineCodeBuilder(spec)
    builder.configure_raw(0, 0, use_state=True, rhs=("pkt", 0), input_containers=[0, 0])
    builder.route_output(0, 0, kind=naming.STATEFUL, slot=0)
    return dgen.generate(spec, builder.build(), opt_level=2)


class TestPipeline:
    def test_latency_equals_depth(self, counter_description):
        pipeline = Pipeline(counter_description)
        assert pipeline.tick(PHV.from_values(0, [5])) is None
        assert pipeline.tick(PHV.from_values(1, [6])) is None
        exited = pipeline.tick(PHV.from_values(2, [7]))
        assert exited is not None and exited.phv_id == 0

    def test_single_stage_per_tick(self, counter_description):
        """A PHV must traverse exactly one stage per tick (read/write halves)."""
        pipeline = Pipeline(counter_description)
        phv = PHV.from_values(0, [5])
        pipeline.tick(phv)
        # After one tick the PHV has only been processed by stage 0: its READ
        # half still holds the input value; the stage-0 result sits in the
        # write half until the next tick's commit.
        assert phv.read == [5]
        assert phv.write == [0]  # old state (0) forwarded by stage 0

    def test_state_persists_across_phvs(self, counter_description):
        pipeline = Pipeline(counter_description)
        outputs = [phv.read[0] for phv in pipeline.process([[10], [20], [30]])]
        # Stage 0 outputs the accumulator value before adding the packet value.
        assert outputs == [0, 10, 30]
        assert pipeline.state[0][0] == [60]

    def test_drain_empties_pipeline(self, counter_description):
        pipeline = Pipeline(counter_description)
        pipeline.tick(PHV.from_values(0, [1]))
        assert pipeline.in_flight == 1
        drained = pipeline.drain()
        assert [phv.phv_id for phv in drained] == [0]
        assert pipeline.in_flight == 0

    def test_initial_state_shape_validated(self, counter_description):
        with pytest.raises(SimulationError):
            Pipeline(counter_description, initial_state=[[[0]]])  # depth mismatch

    def test_wrong_width_input_rejected(self, counter_description):
        pipeline = Pipeline(counter_description)
        with pytest.raises(SimulationError):
            pipeline.process([[1, 2]])

    def test_state_snapshot_is_deep_copy(self, counter_description):
        pipeline = Pipeline(counter_description)
        snapshot = pipeline.state_snapshot()
        snapshot[0][0][0] = 999
        assert pipeline.state[0][0][0] == 0


class TestSimulator:
    def test_outputs_in_input_order(self, counter_description):
        result = RMTSimulator(counter_description).run([[1], [2], [3], [4]])
        assert [record.phv_id for record in result.output_trace] == [0, 1, 2, 3]
        assert result.outputs == [(0,), (1,), (3,), (6,)]

    def test_tick_count_includes_drain(self, counter_description):
        result = RMTSimulator(counter_description).run([[1], [2]])
        assert result.ticks == 2 + counter_description.spec.depth

    def test_final_state_recorded(self, counter_description):
        result = RMTSimulator(counter_description).run([[5], [6]])
        assert result.final_state[0][0] == [11]

    def test_initial_state_honoured(self, counter_description):
        initial = [[[100]], [[0]]]
        result = RMTSimulator(counter_description, initial_state=initial).run([[1]])
        assert result.outputs == [(100,)]

    def test_initial_state_not_mutated_between_runs(self, counter_description):
        initial = [[[100]], [[0]]]
        simulator = RMTSimulator(counter_description, initial_state=initial)
        first = simulator.run([[1], [2]])
        second = simulator.run([[1], [2]])
        assert first.outputs == second.outputs
        assert initial[0][0] == [100]

    def test_run_traffic_checks_width(self, counter_description):
        simulator = RMTSimulator(counter_description)
        with pytest.raises(SimulationError):
            simulator.run_traffic(TrafficGenerator(num_containers=3), 5)

    def test_simulate_convenience_wrapper(self, counter_description):
        result = simulate(counter_description, [[1], [2]])
        assert len(result.output_trace) == 2

    def test_missing_runtime_machine_code_classified(self):
        spec = PipelineSpec(
            depth=1,
            width=1,
            stateful_alu=atoms.get_atom("raw"),
            stateless_alu=atoms.get_atom("stateless_arith"),
            name="missing",
        )
        description = dgen.generate(spec, None, opt_level=0)
        simulator = RMTSimulator(description, runtime_values={})
        with pytest.raises(MissingMachineCodeError):
            simulator.run([[1]])

    def test_passthrough_pipeline_is_identity(self, passthrough_descriptions):
        inputs = [[3, 4], [5, 6], [7, 8]]
        for description in passthrough_descriptions.values():
            result = RMTSimulator(description).run(inputs)
            assert result.outputs == [tuple(v) for v in inputs]
