"""Unit tests for ALU DSL semantic analysis (hole naming, domains, validation)."""

import pytest

from repro.alu_dsl import analyze, parse, parse_and_analyze
from repro.alu_dsl.analysis import ARITH_OP_DOMAIN, BOOL_OP_DOMAIN, OPT_DOMAIN, REL_OP_DOMAIN, UNBOUNDED
from repro.errors import ALUDSLSemanticError


def analyzed(source, name="alu"):
    return parse_and_analyze(source, name=name)


STATEFUL_TEMPLATE = """
type: stateful
state variables : {{state_0}}
hole variables : {{{holes}}}
packet fields : {{pkt_0, pkt_1}}
{body}
"""


def stateful(body, holes=""):
    return analyzed(STATEFUL_TEMPLATE.format(body=body, holes=holes))


class TestHoleNaming:
    def test_single_mux_hole(self):
        spec = stateful("state_0 = Mux2(pkt_0, pkt_1);")
        assert spec.holes == ["mux2_0"]
        assert spec.hole_domains["mux2_0"] == 2

    def test_hole_indices_increase_per_kind(self):
        spec = stateful("state_0 = Mux2(pkt_0, pkt_1) + Mux2(pkt_1, pkt_0);")
        assert spec.holes == ["mux2_0", "mux2_1"]

    def test_different_primitives_counted_separately(self):
        spec = stateful("state_0 = arith_op(Mux2(pkt_0, pkt_1), C());")
        assert set(spec.holes) == {"mux2_0", "const_0", "arith_op_0"}

    def test_hole_names_are_deterministic(self):
        source = STATEFUL_TEMPLATE.format(
            body="state_0 = arith_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()));", holes=""
        )
        assert analyzed(source).holes == analyzed(source).holes

    def test_declared_hole_variables_appended(self):
        spec = stateful("state_0 = state_0 + imm;", holes="imm")
        assert spec.holes == ["imm"]
        assert spec.hole_domains["imm"] == UNBOUNDED

    def test_figure4_hole_count(self):
        from repro.atoms import get_atom

        spec = get_atom("if_else_raw")
        # 3 Opt, 3 C, 3 Mux3 and 1 rel_op call sites.
        assert len(spec.holes) == 10

    def test_condition_holes_precede_branch_holes(self):
        from repro.atoms import get_atom

        holes = get_atom("if_else_raw").holes
        assert holes.index("rel_op_0") < holes.index("opt_1")


class TestDomains:
    @pytest.mark.parametrize(
        "body, hole, domain",
        [
            ("state_0 = Mux2(pkt_0, pkt_1);", "mux2_0", 2),
            ("state_0 = Mux3(pkt_0, pkt_1, pkt_0);", "mux3_0", 3),
            ("state_0 = Mux4(pkt_0, pkt_1, pkt_0, pkt_1);", "mux4_0", 4),
            ("state_0 = Opt(state_0);", "opt_0", OPT_DOMAIN),
            ("state_0 = C();", "const_0", UNBOUNDED),
            ("state_0 = rel_op(pkt_0, pkt_1);", "rel_op_0", REL_OP_DOMAIN),
            ("state_0 = arith_op(pkt_0, pkt_1);", "arith_op_0", ARITH_OP_DOMAIN),
            ("state_0 = bool_op(pkt_0, pkt_1);", "bool_op_0", BOOL_OP_DOMAIN),
        ],
    )
    def test_domain_per_primitive(self, body, hole, domain):
        spec = stateful(body)
        assert spec.hole_domains[hole] == domain


class TestValidation:
    def test_stateless_with_state_vars_rejected(self):
        source = """
        type: stateless
        state variables : {s}
        hole variables : {}
        packet fields : {pkt_0}
        return pkt_0;
        """
        with pytest.raises(ALUDSLSemanticError):
            analyzed(source)

    def test_stateful_without_state_vars_rejected(self):
        source = """
        type: stateful
        state variables : {}
        hole variables : {}
        packet fields : {pkt_0}
        pkt_out = pkt_0;
        """
        with pytest.raises(ALUDSLSemanticError):
            analyzed(source)

    def test_no_packet_fields_rejected(self):
        source = """
        type: stateful
        state variables : {s}
        hole variables : {}
        packet fields : {}
        s = 1;
        """
        with pytest.raises(ALUDSLSemanticError):
            analyzed(source)

    def test_undeclared_identifier_rejected(self):
        with pytest.raises(ALUDSLSemanticError):
            stateful("state_0 = mystery;")

    def test_local_variable_allowed_after_assignment(self):
        spec = stateful("tmp = pkt_0 + pkt_1; state_0 = tmp;")
        assert spec.holes == []

    def test_local_read_before_assignment_rejected(self):
        with pytest.raises(ALUDSLSemanticError):
            stateful("state_0 = tmp; tmp = pkt_0;")

    def test_stateless_requires_return(self):
        source = """
        type: stateless
        state variables : {}
        hole variables : {}
        packet fields : {pkt_0}
        tmp = pkt_0;
        """
        with pytest.raises(ALUDSLSemanticError):
            analyzed(source)

    def test_assignment_to_packet_field_rejected(self):
        with pytest.raises(ALUDSLSemanticError):
            stateful("pkt_0 = 1;")

    def test_assignment_to_hole_variable_rejected(self):
        with pytest.raises(ALUDSLSemanticError):
            stateful("imm = 1;", holes="imm")

    def test_overlapping_declarations_rejected(self):
        source = """
        type: stateful
        state variables : {x}
        hole variables : {x}
        packet fields : {pkt_0}
        x = pkt_0;
        """
        with pytest.raises(ALUDSLSemanticError):
            analyzed(source)

    def test_locals_in_branch_do_not_leak_to_siblings(self):
        body = (
            "if (pkt_0 > 0) { tmp = 1; state_0 = tmp; } "
            "else { state_0 = tmp; }"
        )
        with pytest.raises(ALUDSLSemanticError):
            stateful(body)

    def test_original_spec_not_mutated(self):
        raw = parse(STATEFUL_TEMPLATE.format(body="state_0 = Mux2(pkt_0, pkt_1);", holes=""))
        analyzed_spec = analyze(raw)
        assert raw.holes == []
        assert analyzed_spec.holes == ["mux2_0"]

    def test_catalogue_atoms_all_analyze(self):
        from repro.atoms import atom_names, get_atom

        for name in atom_names():
            spec = get_atom(name)
            assert spec.holes or name in ()  # every atom has at least one hole
            assert spec.name == name
