"""Unit tests for the ALU DSL parser."""

import pytest

from repro.alu_dsl import parse
from repro.alu_dsl.ast_nodes import (
    ArithOpExpr,
    Assign,
    BinaryOp,
    BoolOpExpr,
    ConstExpr,
    If,
    MuxExpr,
    Number,
    OptExpr,
    RelOpExpr,
    Return,
    UnaryOp,
    Var,
)
from repro.errors import ALUDSLSyntaxError

HEADER = """
type: stateful
state variables : {state_0}
hole variables : {}
packet fields : {pkt_0, pkt_1}
"""

STATELESS_HEADER = """
type: stateless
state variables : {}
hole variables : {}
packet fields : {pkt_0, pkt_1}
"""


def parse_body(body, header=HEADER):
    return parse(header + body).body


class TestHeader:
    def test_stateful_header(self):
        spec = parse(HEADER)
        assert spec.kind == "stateful"
        assert spec.state_vars == ["state_0"]
        assert spec.hole_vars == []
        assert spec.packet_fields == ["pkt_0", "pkt_1"]

    def test_stateless_header(self):
        spec = parse(STATELESS_HEADER + "return pkt_0;")
        assert spec.kind == "stateless"
        assert spec.state_vars == []

    def test_hole_variables_parsed(self):
        source = """
        type: stateful
        state variables : {s}
        hole variables : {imm_0, imm_1}
        packet fields : {pkt_0}
        """
        spec = parse(source)
        assert spec.hole_vars == ["imm_0", "imm_1"]

    def test_declarations_in_any_order(self):
        source = """
        packet fields : {pkt_0}
        type: stateless
        hole variables : {}
        state variables : {}
        return pkt_0;
        """
        spec = parse(source)
        assert spec.kind == "stateless"
        assert spec.packet_fields == ["pkt_0"]

    def test_missing_type_rejected(self):
        with pytest.raises(ALUDSLSyntaxError):
            parse("packet fields : {pkt_0}\nreturn pkt_0;")

    def test_missing_packet_fields_rejected(self):
        with pytest.raises(ALUDSLSyntaxError):
            parse("type: stateless\nreturn 0;")

    def test_duplicate_type_rejected(self):
        with pytest.raises(ALUDSLSyntaxError):
            parse("type: stateful\ntype: stateless\npacket fields : {p}")

    def test_invalid_type_value_rejected(self):
        with pytest.raises(ALUDSLSyntaxError):
            parse("type: hybrid\npacket fields : {p}")

    def test_name_passed_through(self):
        spec = parse(HEADER, name="my_alu")
        assert spec.name == "my_alu"


class TestStatements:
    def test_assignment(self):
        body = parse_body("state_0 = pkt_0 + 1;")
        assert isinstance(body[0], Assign)
        assert body[0].target == "state_0"
        assert isinstance(body[0].value, BinaryOp)

    def test_return_statement(self):
        body = parse_body("return pkt_0;", header=STATELESS_HEADER)
        assert isinstance(body[0], Return)

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ALUDSLSyntaxError):
            parse(HEADER + "state_0 = pkt_0")

    def test_if_else(self):
        body = parse_body(
            "if (pkt_0 == 1) { state_0 = 1; } else { state_0 = 2; }"
        )
        stmt = body[0]
        assert isinstance(stmt, If)
        assert len(stmt.branches) == 1
        assert len(stmt.orelse) == 1

    def test_if_without_else(self):
        stmt = parse_body("if (pkt_0 > 0) { state_0 = 1; }")[0]
        assert isinstance(stmt, If)
        assert stmt.orelse == ()

    def test_elif_chain(self):
        stmt = parse_body(
            "if (pkt_0 == 0) { state_0 = 0; } "
            "elif (pkt_0 == 1) { state_0 = 1; } "
            "else { state_0 = 2; }"
        )[0]
        assert len(stmt.branches) == 2
        assert len(stmt.orelse) == 1

    def test_else_if_alias_for_elif(self):
        stmt = parse_body(
            "if (pkt_0 == 0) { state_0 = 0; } "
            "else if (pkt_0 == 1) { state_0 = 1; } "
            "else { state_0 = 2; }"
        )[0]
        assert len(stmt.branches) == 2

    def test_nested_if(self):
        stmt = parse_body(
            "if (pkt_0 > 0) { if (pkt_1 > 0) { state_0 = 1; } } else { state_0 = 2; }"
        )[0]
        inner = stmt.branches[0][1][0]
        assert isinstance(inner, If)

    def test_multiple_statements(self):
        body = parse_body("tmp = pkt_0 + pkt_1; state_0 = tmp;")
        assert len(body) == 2


class TestExpressions:
    def test_precedence_multiplication_over_addition(self):
        expr = parse_body("state_0 = pkt_0 + pkt_1 * 2;")[0].value
        assert expr.op == "+"
        assert isinstance(expr.right, BinaryOp)
        assert expr.right.op == "*"

    def test_precedence_relational_over_logical(self):
        expr = parse_body("state_0 = pkt_0 == 1 && pkt_1 == 2;")[0].value
        assert expr.op == "&&"
        assert expr.left.op == "=="

    def test_or_lower_than_and(self):
        expr = parse_body("state_0 = pkt_0 && pkt_1 || 1;")[0].value
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_parentheses_override_precedence(self):
        expr = parse_body("state_0 = (pkt_0 + pkt_1) * 2;")[0].value
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus(self):
        expr = parse_body("state_0 = -pkt_0;")[0].value
        assert isinstance(expr, UnaryOp)
        assert expr.op == "-"

    def test_unary_not(self):
        expr = parse_body("state_0 = !pkt_0;")[0].value
        assert isinstance(expr, UnaryOp)
        assert expr.op == "!"

    def test_number_literal(self):
        expr = parse_body("state_0 = 7;")[0].value
        assert expr == Number(7)

    def test_variable_reference(self):
        expr = parse_body("state_0 = pkt_1;")[0].value
        assert expr == Var("pkt_1")

    @pytest.mark.parametrize("op", ["==", "!=", "<=", ">=", "<", ">"])
    def test_relational_operators(self, op):
        expr = parse_body(f"state_0 = pkt_0 {op} pkt_1;")[0].value
        assert expr.op == op

    @pytest.mark.parametrize("op", ["+", "-", "*", "/", "%"])
    def test_arithmetic_operators(self, op):
        expr = parse_body(f"state_0 = pkt_0 {op} pkt_1;")[0].value
        assert expr.op == op


class TestPrimitiveCalls:
    def test_mux2(self):
        expr = parse_body("state_0 = Mux2(pkt_0, pkt_1);")[0].value
        assert isinstance(expr, MuxExpr)
        assert expr.width == 2

    def test_mux3_with_const(self):
        expr = parse_body("state_0 = Mux3(pkt_0, pkt_1, C());")[0].value
        assert isinstance(expr, MuxExpr)
        assert expr.width == 3
        assert isinstance(expr.inputs[2], ConstExpr)

    def test_mux4(self):
        expr = parse_body("state_0 = Mux4(pkt_0, pkt_1, state_0, C());")[0].value
        assert expr.width == 4

    def test_opt(self):
        expr = parse_body("state_0 = Opt(state_0);")[0].value
        assert isinstance(expr, OptExpr)

    def test_const(self):
        expr = parse_body("state_0 = C();")[0].value
        assert isinstance(expr, ConstExpr)

    def test_rel_op(self):
        expr = parse_body("state_0 = rel_op(pkt_0, pkt_1);")[0].value
        assert isinstance(expr, RelOpExpr)

    def test_arith_op(self):
        expr = parse_body("state_0 = arith_op(pkt_0, pkt_1);")[0].value
        assert isinstance(expr, ArithOpExpr)

    def test_bool_op(self):
        expr = parse_body("state_0 = bool_op(pkt_0, pkt_1);")[0].value
        assert isinstance(expr, BoolOpExpr)

    def test_nested_primitives(self):
        expr = parse_body("state_0 = arith_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()));")[0].value
        assert isinstance(expr, ArithOpExpr)
        assert isinstance(expr.left, OptExpr)
        assert isinstance(expr.right, MuxExpr)

    def test_wrong_arity_rejected(self):
        with pytest.raises(ALUDSLSyntaxError):
            parse(HEADER + "state_0 = Mux2(pkt_0);")

    def test_too_many_arguments_rejected(self):
        with pytest.raises(ALUDSLSyntaxError):
            parse(HEADER + "state_0 = Opt(pkt_0, pkt_1);")

    def test_primitive_name_without_call_is_variable(self):
        # "Opt" not followed by '(' parses as an identifier reference.
        spec = parse(HEADER.replace("{pkt_0, pkt_1}", "{Opt, pkt_1}") + "state_0 = Opt;")
        assert spec.body[0].value == Var("Opt")


class TestFigure4Example:
    def test_paper_figure_4_parses(self):
        """The paper's If Else Raw atom (Figure 4) is accepted verbatim."""
        from repro.atoms import STATEFUL_SOURCES

        spec = parse(STATEFUL_SOURCES["if_else_raw"], name="if_else_raw")
        assert spec.kind == "stateful"
        assert spec.state_vars == ["state_0"]
        assert spec.packet_fields == ["pkt_0", "pkt_1"]
        assert isinstance(spec.body[0], If)
        condition = spec.body[0].branches[0][0]
        assert isinstance(condition, RelOpExpr)
