"""Unit tests for the ALU DSL lexer."""

import pytest

from repro.alu_dsl.lexer import Lexer, tokenize
from repro.alu_dsl.tokens import Token, TokenType
from repro.errors import ALUDSLSyntaxError


def token_types(source):
    return [token.type for token in tokenize(source) if token.type is not TokenType.EOF]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_number_token(self):
        tokens = tokenize("42")
        assert tokens[0].type is TokenType.NUMBER
        assert tokens[0].value == "42"

    def test_identifier_token(self):
        tokens = tokenize("state_0")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "state_0"

    def test_identifier_with_leading_underscore(self):
        tokens = tokenize("_tmp1")
        assert tokens[0].type is TokenType.IDENT

    @pytest.mark.parametrize(
        "keyword, token_type",
        [
            ("type", TokenType.TYPE),
            ("stateful", TokenType.STATEFUL),
            ("stateless", TokenType.STATELESS),
            ("state", TokenType.STATE),
            ("hole", TokenType.HOLE),
            ("packet", TokenType.PACKET),
            ("variables", TokenType.VARIABLES),
            ("fields", TokenType.FIELDS),
            ("if", TokenType.IF),
            ("elif", TokenType.ELIF),
            ("else", TokenType.ELSE),
            ("return", TokenType.RETURN),
        ],
    )
    def test_keywords(self, keyword, token_type):
        assert tokenize(keyword)[0].type is token_type

    def test_keyword_prefix_is_identifier(self):
        # "iffy" starts with "if" but is a plain identifier.
        assert tokenize("iffy")[0].type is TokenType.IDENT


class TestOperators:
    @pytest.mark.parametrize(
        "text, token_type",
        [
            ("==", TokenType.EQ),
            ("!=", TokenType.NEQ),
            ("<=", TokenType.LE),
            (">=", TokenType.GE),
            ("&&", TokenType.AND),
            ("||", TokenType.OR),
            ("<", TokenType.LT),
            (">", TokenType.GT),
            ("+", TokenType.PLUS),
            ("-", TokenType.MINUS),
            ("*", TokenType.STAR),
            ("/", TokenType.SLASH),
            ("%", TokenType.PERCENT),
            ("!", TokenType.NOT),
            ("=", TokenType.ASSIGN),
            ("{", TokenType.LBRACE),
            ("}", TokenType.RBRACE),
            ("(", TokenType.LPAREN),
            (")", TokenType.RPAREN),
            (",", TokenType.COMMA),
            (";", TokenType.SEMICOLON),
            (":", TokenType.COLON),
        ],
    )
    def test_operator_tokens(self, text, token_type):
        assert tokenize(text)[0].type is token_type

    def test_two_char_operator_preferred_over_one_char(self):
        # "<=" must lex as LE, not LT followed by ASSIGN.
        assert token_types("a <= b") == [TokenType.IDENT, TokenType.LE, TokenType.IDENT]

    def test_equality_vs_assignment(self):
        assert token_types("a == b") == [TokenType.IDENT, TokenType.EQ, TokenType.IDENT]
        assert token_types("a = b") == [TokenType.IDENT, TokenType.ASSIGN, TokenType.IDENT]


class TestCommentsAndWhitespace:
    def test_hash_comment_ignored(self):
        assert token_types("# a comment\n42") == [TokenType.NUMBER]

    def test_double_slash_comment_ignored(self):
        assert token_types("// a comment\n42") == [TokenType.NUMBER]

    def test_comment_at_end_of_line(self):
        assert token_types("42 # trailing") == [TokenType.NUMBER]

    def test_whitespace_between_tokens(self):
        assert token_types("  a \t +   3 ") == [TokenType.IDENT, TokenType.PLUS, TokenType.NUMBER]


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_column_advances_within_line(self):
        tokens = tokenize("ab + c")
        assert tokens[1].column == 4  # the '+'

    def test_error_carries_location(self):
        with pytest.raises(ALUDSLSyntaxError) as excinfo:
            tokenize("a\n  @")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 3


class TestErrors:
    @pytest.mark.parametrize("bad", ["@", "$", "`", "~", "^"])
    def test_unexpected_character_rejected(self, bad):
        with pytest.raises(ALUDSLSyntaxError):
            tokenize(bad)

    def test_lexer_class_matches_function(self):
        source = "state_0 = pkt_0 + 1;"
        assert Lexer(source).tokenize() == tokenize(source)


class TestFullAtomSources:
    @pytest.mark.parametrize("name", ["raw", "if_else_raw", "pred_raw", "sub", "pair", "nested_if"])
    def test_catalogue_stateful_sources_lex(self, name):
        from repro.atoms import STATEFUL_SOURCES

        tokens = tokenize(STATEFUL_SOURCES[name])
        assert tokens[-1].type is TokenType.EOF
        assert len(tokens) > 20

    def test_token_repr_is_informative(self):
        token = Token(TokenType.NUMBER, "7", 1, 1)
        assert "NUMBER" in repr(token)
