"""Additional unit tests for smaller public surfaces.

Covers the pieces that the subsystem-focused test modules touch only in
passing: the exception hierarchy, the grammar description, the pipeline
description wrapper, trace/report rendering, the Domino/dRMT odds and ends,
and the public package exports.
"""

import pytest

import repro
from repro import atoms, dgen
from repro.alu_dsl import grammar
from repro.dgen.emit import PipelineDescription, compile_description
from repro.errors import (
    ALUDSLSyntaxError,
    DominoSyntaxError,
    DruzhbaError,
    MachineCodeError,
    MissingMachineCodeError,
    SimulationError,
    UnknownMachineCodeError,
)
from repro.hardware import PipelineSpec
from repro.ir import Module
from repro.machine_code import MachineCode


class TestPackageSurface:
    def test_version_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_all_exports_resolve(self):
        import repro.dsim as dsim
        import repro.testing as testing
        import repro.drmt as drmt

        for module in (dsim, testing, drmt):
            for name in module.__all__:
                assert getattr(module, name) is not None


class TestErrorHierarchy:
    def test_all_library_errors_derive_from_druzhba_error(self):
        from repro import errors

        exception_types = [
            value
            for value in vars(errors).values()
            if isinstance(value, type) and issubclass(value, Exception) and value is not Exception
        ]
        assert len(exception_types) >= 15
        for exception_type in exception_types:
            assert issubclass(exception_type, DruzhbaError)

    def test_syntax_errors_carry_location(self):
        error = ALUDSLSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(error) and error.column == 7
        domino_error = DominoSyntaxError("bad", line=2)
        assert "line 2" in str(domino_error)

    def test_missing_machine_code_error_carries_name(self):
        error = MissingMachineCodeError("pipeline_stage_0_output_mux_phv_0")
        assert error.name == "pipeline_stage_0_output_mux_phv_0"
        assert issubclass(MissingMachineCodeError, MachineCodeError)

    def test_unknown_machine_code_error(self):
        error = UnknownMachineCodeError("bogus_pair")
        assert "bogus_pair" in str(error)


class TestGrammarModule:
    def test_describe_lists_all_primitives(self):
        text = grammar.describe()
        for name in grammar.primitive_names():
            assert name in text

    def test_ebnf_mentions_core_productions(self):
        assert "if_stmt" in grammar.EBNF
        assert "primitive_call" in grammar.EBNF

    def test_primitive_names_sorted_and_complete(self):
        names = grammar.primitive_names()
        assert names == sorted(names)
        assert {"Mux2", "Mux3", "Opt", "C", "rel_op", "arith_op", "bool_op"} <= set(names)


class TestPipelineDescriptionWrapper:
    @pytest.fixture(scope="class")
    def description(self):
        spec = PipelineSpec(
            depth=1, width=1,
            stateful_alu=atoms.get_atom("raw"),
            stateless_alu=atoms.get_atom("stateless_mux"),
            name="wrapper_test",
        )
        return dgen.generate(spec, spec.passthrough_machine_code(), opt_level=1)

    def test_metadata_properties(self, description):
        assert description.opt_level_name == "scc_propagation"
        assert not description.needs_runtime_values
        assert description.function_count() >= 3
        assert description.source_line_count() > 10

    def test_runtime_values_reflect_machine_code(self, description):
        values = description.runtime_values()
        assert values == description.machine_code.as_dict()

    def test_initial_state_shape(self, description):
        state = description.initial_state(initial_value=4)
        assert state == [[[4]]]

    def test_broken_namespace_detected(self, description):
        broken = PipelineDescription(
            spec=description.spec,
            opt_level=description.opt_level,
            machine_code=description.machine_code,
            module=description.module,
            source=description.source,
            namespace={},
        )
        from repro.errors import CodegenError

        with pytest.raises(CodegenError):
            _ = broken.stage_functions

    def test_compile_description_rejects_bad_module(self):
        spec = PipelineSpec(
            depth=1, width=1,
            stateful_alu=atoms.get_atom("raw"),
            stateless_alu=atoms.get_atom("stateless_mux"),
        )
        from repro.errors import CodegenError

        with pytest.raises(CodegenError):
            compile_description(spec, Module(), opt_level=0, machine_code=None)


class TestTraceAndReportRendering:
    def test_trace_format_includes_state(self):
        from repro.dsim import Trace

        trace = Trace()
        trace.append(0, [1], [2])
        trace.final_state = [[[5]]]
        assert "final state" in trace.format()

    def test_spec_trace_format_includes_state_dict(self):
        from repro.testing import PassthroughSpecification

        trace = PassthroughSpecification(num_containers=1).run([[1]])
        assert trace.spec_state == {}

    def test_fuzz_outcome_value_range_mentions_counterexample(self):
        from repro.testing import FailureClass, FuzzOutcome
        from repro.testing.equivalence import EquivalenceReport, Mismatch

        report = EquivalenceReport(compared_phvs=1, compared_containers=[0])
        report.mismatches.append(Mismatch(0, 0, expected=1, actual=0, inputs=(700,)))
        outcome = FuzzOutcome(FailureClass.VALUE_RANGE, 100, report=report, max_value=1023)
        assert "first divergence" in outcome.describe()


class TestDrmtOddsAndEnds:
    def test_processor_rejects_misrouted_packet(self):
        from repro.drmt import DrmtHardwareParams, generate_bundle
        from repro.drmt.processor import MatchActionProcessor, PacketContext, RegisterFile
        from repro.drmt.tables import TableStore
        from repro.p4 import samples

        bundle = generate_bundle(samples.simple_router(), DrmtHardwareParams(num_processors=2))
        processor = MatchActionProcessor(
            0, bundle.program, bundle.schedule, TableStore(bundle.program), RegisterFile(bundle.program)
        )
        with pytest.raises(SimulationError):
            processor.accept(PacketContext(0, {}, arrival_tick=0, processor=1))

    def test_drmt_cli_milp_flag(self, capsys):
        from repro.cli import drmt_main

        assert drmt_main(["--packets", "5", "--milp"]) == 0
        assert "dRMT" in capsys.readouterr().out

    def test_bundle_generation_from_source_string(self):
        from repro.drmt import generate_bundle
        from repro.p4 import samples

        bundle = generate_bundle(samples.TELEMETRY_PIPELINE, name="telemetry")
        assert bundle.program.name == "telemetry"
        assert bundle.schedule.makespan > 0


class TestMachineCodeRoundTripThroughPrograms:
    @pytest.mark.parametrize("suffix", [".txt", ".json"])
    def test_every_program_machine_code_round_trips(self, tmp_path, suffix):
        from repro.programs import all_programs

        for program in all_programs():
            path = tmp_path / f"{program.name}{suffix}"
            machine_code = program.machine_code()
            machine_code.to_file(path)
            assert MachineCode.from_file(path) == machine_code

    def test_domino_sources_all_parse(self):
        from repro.domino import parse_and_analyze
        from repro.programs import all_programs

        for program in all_programs():
            if program.domino_source is not None:
                parsed = parse_and_analyze(program.domino_source)
                assert parsed.body, program.name
