"""Tests for the command-line entry points."""

import pytest

from repro.cli import dgen_main, drmt_main, dsim_main, fuzz_main


class TestDgenCli:
    def test_grammar_flag(self, capsys):
        assert dgen_main(["--grammar"]) == 0
        out = capsys.readouterr().out
        assert "ALU DSL grammar" in out
        assert "Mux3" in out

    def test_generate_to_stdout(self, capsys):
        assert dgen_main(["--depth", "1", "--width", "1", "--opt-level", "2"]) == 0
        out = capsys.readouterr().out
        assert "STAGE_FUNCTIONS" in out

    def test_generate_to_file(self, tmp_path, capsys):
        output = tmp_path / "pipeline.py"
        assert dgen_main(["--depth", "1", "--width", "1", "--output", str(output)]) == 0
        assert "STAGE_FUNCTIONS" in output.read_text()

    def test_machine_code_file_input(self, tmp_path):
        from repro import atoms
        from repro.hardware import PipelineSpec

        spec = PipelineSpec(1, 1, atoms.get_atom("raw"), atoms.get_atom("stateless_full"))
        mc_path = tmp_path / "mc.json"
        spec.passthrough_machine_code().to_file(mc_path)
        assert dgen_main(
            ["--depth", "1", "--width", "1", "--stateful-alu", "raw",
             "--machine-code", str(mc_path), "--output", str(tmp_path / "out.py")]
        ) == 0

    def test_custom_alu_file(self, tmp_path):
        alu_path = tmp_path / "custom.alu"
        alu_path.write_text(
            "type: stateful\nstate variables : {s}\nhole variables : {}\n"
            "packet fields : {pkt_0}\ns = s + pkt_0;\n"
        )
        assert dgen_main(
            ["--depth", "1", "--width", "1", "--stateful-alu", str(alu_path),
             "--opt-level", "0", "--output", str(tmp_path / "out.py")]
        ) == 0

    def test_error_reported_as_exit_code(self, capsys):
        assert dgen_main(["--depth", "0"]) == 1
        assert "error" in capsys.readouterr().err


class TestDsimCli:
    def test_simulates_and_prints_trace(self, capsys):
        assert dsim_main(["--depth", "1", "--width", "2", "--phvs", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "phv_id" in out
        assert out.count("->") >= 5

    def test_deterministic_across_runs(self, capsys):
        dsim_main(["--phvs", "4", "--seed", "9"])
        first = capsys.readouterr().out
        dsim_main(["--phvs", "4", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second


class TestFuzzCli:
    def test_single_program_pass(self, capsys):
        assert fuzz_main(["--program", "sampling", "--phvs", "100"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_failure_injection_sets_exit_code(self, capsys):
        assert fuzz_main(["--program", "sampling", "--phvs", "50", "--drop-pairs", "1"]) == 1
        assert "missing machine code" in capsys.readouterr().out

    def test_unknown_program_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            fuzz_main(["--program", "nonexistent"])


class TestDrmtCli:
    def test_bundled_router(self, capsys):
        assert drmt_main(["--packets", "10", "--processors", "2"]) == 0
        out = capsys.readouterr().out
        assert "dRMT program bundle" in out
        assert "packets per processor" in out

    def test_external_p4_and_entries_files(self, tmp_path, capsys):
        from repro.p4 import samples

        p4_path = tmp_path / "prog.p4"
        p4_path.write_text(samples.TELEMETRY_PIPELINE)
        entries_path = tmp_path / "entries.cfg"
        entries_path.write_text(samples.TELEMETRY_ENTRIES)
        assert drmt_main(
            ["--p4", str(p4_path), "--entries", str(entries_path), "--packets", "5"]
        ) == 0
        assert "telemetry" in capsys.readouterr().out.lower() or True


class TestEngineFlags:
    def test_dsim_engine_flag(self, capsys):
        for engine, expected in (("tick", "engine: tick"), ("generic", "engine: generic")):
            assert dsim_main(
                ["--depth", "1", "--width", "1", "--phvs", "5", "--engine", engine]
            ) == 0
            captured = capsys.readouterr()
            assert expected in captured.err

    def test_dsim_fused_engine_needs_level3(self, capsys):
        assert dsim_main(
            ["--depth", "1", "--width", "1", "--phvs", "5",
             "--opt-level", "2", "--engine", "fused"]
        ) == 1
        assert "fused" in capsys.readouterr().err

    def test_dsim_opt_level3_reports_fused(self, capsys):
        assert dsim_main(
            ["--depth", "1", "--width", "1", "--phvs", "5", "--opt-level", "3"]
        ) == 0
        assert "engine: fused" in capsys.readouterr().err

    def test_dsim_engine_choice_is_identical(self, capsys):
        outputs = {}
        for engine in ("tick", "generic"):
            assert dsim_main(
                ["--depth", "2", "--width", "2", "--phvs", "12", "--engine", engine]
            ) == 0
            outputs[engine] = capsys.readouterr().out
        assert outputs["tick"] == outputs["generic"]

    def test_fuzz_engine_flag(self, capsys):
        assert fuzz_main(
            ["--program", "sampling", "--phvs", "60", "--engine", "tick"]
        ) == 0
        assert "PASS" in capsys.readouterr().out

    def test_drmt_engine_flag(self, capsys):
        for engine in ("tick", "fused"):
            assert drmt_main(["--packets", "12", "--engine", engine]) == 0
            out = capsys.readouterr().out
            assert f"({engine} engine)" in out

    def test_drmt_dump_fused(self, capsys):
        assert drmt_main(["--dump-fused"]) == 0
        out = capsys.readouterr().out
        assert "def run_trace(" in out
        assert "VISIT_ORDERS" in out


class TestShardingKnobs:
    """CLI coverage for --shards/--workers/--shard-key/--transport."""

    DSIM_SHARDED = [
        "--depth", "1", "--width", "2", "--stateful-alu", "pred_raw",
        "--phvs", "8", "--engine", "sharded",
    ]

    def test_dsim_sharded_happy_path(self, capsys):
        assert dsim_main(
            self.DSIM_SHARDED
            + ["--shards", "2", "--workers", "1", "--shard-key", "0"]
        ) == 0
        assert "engine: sharded[" in capsys.readouterr().err

    @pytest.mark.parametrize("transport", ["pickle", "shm"])
    def test_dsim_transport_happy_path(self, transport, capsys):
        assert dsim_main(
            self.DSIM_SHARDED
            + ["--shards", "2", "--workers", "1", "--shard-key", "0",
               "--transport", transport]
        ) == 0
        assert "engine: sharded[" in capsys.readouterr().err

    def test_dsim_transport_outputs_identical_across_transports(self, capsys):
        outputs = {}
        for transport in ("pickle", "shm"):
            assert dsim_main(
                self.DSIM_SHARDED
                + ["--shards", "2", "--workers", "1", "--shard-key", "0",
                   "--transport", transport]
            ) == 0
            outputs[transport] = capsys.readouterr().out
        assert outputs["pickle"] == outputs["shm"]

    def test_dsim_rejects_invalid_shards_and_workers(self, capsys):
        assert dsim_main(self.DSIM_SHARDED + ["--shards", "0"]) == 1
        assert "shard count" in capsys.readouterr().err
        assert dsim_main(self.DSIM_SHARDED + ["--shards", "2", "--workers", "0"]) == 1
        assert "worker count" in capsys.readouterr().err

    def test_dsim_rejects_malformed_shard_key(self, capsys):
        assert dsim_main(self.DSIM_SHARDED + ["--shards", "2", "--shard-key", "a,b"]) == 1
        assert "--shard-key" in capsys.readouterr().err
        assert dsim_main(self.DSIM_SHARDED + ["--shards", "2", "--shard-key", "99"]) == 1
        assert "out of range" in capsys.readouterr().err

    def test_dsim_rejects_unknown_transport_via_argparse(self):
        with pytest.raises(SystemExit):
            dsim_main(self.DSIM_SHARDED + ["--transport", "smoke-signal"])

    def test_drmt_sharded_happy_path(self, capsys):
        assert drmt_main(
            ["--packets", "10", "--engine", "sharded", "--shards", "2", "--workers", "1"]
        ) == 0
        assert "(sharded[" in capsys.readouterr().out

    @pytest.mark.parametrize("transport", ["pickle", "shm"])
    def test_drmt_transport_happy_path(self, transport, capsys):
        assert drmt_main(
            ["--packets", "10", "--engine", "sharded", "--shards", "2",
             "--workers", "1", "--transport", transport]
        ) == 0
        assert "(sharded[" in capsys.readouterr().out

    def test_drmt_rejects_invalid_shards_and_workers(self, capsys):
        assert drmt_main(["--packets", "5", "--engine", "sharded", "--shards", "-1"]) == 1
        assert "shard count" in capsys.readouterr().err
        assert drmt_main(
            ["--packets", "5", "--engine", "sharded", "--shards", "2", "--workers", "0"]
        ) == 1
        assert "worker count" in capsys.readouterr().err

    def test_drmt_rejects_unknown_transport_via_argparse(self):
        with pytest.raises(SystemExit):
            drmt_main(["--packets", "5", "--transport", "telepathy"])

    def test_drmt_explicit_shard_key_happy_path(self, capsys):
        assert drmt_main(
            ["--packets", "12", "--engine", "sharded", "--shards", "2",
             "--workers", "1", "--shard-key", "ipv4.dstAddr"]
        ) == 0
        assert "(sharded[" in capsys.readouterr().out
