"""Unit tests for machine-code naming and the MachineCode container."""

import pytest

from repro.errors import MachineCodeError, MachineCodeValueError
from repro.machine_code import (
    MachineCode,
    STATEFUL,
    STATELESS,
    alu_hole_name,
    expected_names,
    input_mux_name,
    is_valid_name,
    output_mux_name,
    parse_name,
)


class TestNaming:
    def test_alu_hole_name_format(self):
        assert (
            alu_hole_name(2, STATEFUL, 3, "rel_op_0")
            == "pipeline_stage_2_stateful_alu_3_rel_op_0"
        )

    def test_input_mux_name_format(self):
        assert (
            input_mux_name(0, STATELESS, 1, 2)
            == "pipeline_stage_0_stateless_alu_1_input_mux_2"
        )

    def test_output_mux_name_format(self):
        assert output_mux_name(3, 4) == "pipeline_stage_3_output_mux_phv_4"

    def test_invalid_kind_rejected(self):
        with pytest.raises(MachineCodeError):
            alu_hole_name(0, "hybrid", 0, "x")

    @pytest.mark.parametrize(
        "builder, kwargs",
        [
            (alu_hole_name, dict(stage=1, kind=STATEFUL, slot=2, hole="mux3_1")),
            (alu_hole_name, dict(stage=0, kind=STATELESS, slot=0, hole="const_0")),
            (input_mux_name, dict(stage=4, kind=STATEFUL, slot=1, operand=0)),
            (output_mux_name, dict(stage=2, container=3)),
        ],
    )
    def test_round_trip(self, builder, kwargs):
        name = builder(**kwargs)
        parsed = parse_name(name)
        assert parsed.render() == name

    def test_parse_output_mux(self):
        parsed = parse_name("pipeline_stage_1_output_mux_phv_0")
        assert parsed.category == "output_mux"
        assert parsed.stage == 1
        assert parsed.container == 0

    def test_parse_input_mux(self):
        parsed = parse_name("pipeline_stage_0_stateful_alu_2_input_mux_1")
        assert parsed.category == "input_mux"
        assert (parsed.kind, parsed.slot, parsed.operand) == (STATEFUL, 2, 1)

    def test_parse_alu_hole(self):
        parsed = parse_name("pipeline_stage_0_stateless_alu_1_arith_op_0")
        assert parsed.category == "alu_hole"
        assert parsed.hole == "arith_op_0"

    def test_input_mux_not_misparsed_as_hole(self):
        parsed = parse_name(input_mux_name(0, STATEFUL, 0, 3))
        assert parsed.category == "input_mux"

    @pytest.mark.parametrize(
        "bad",
        ["", "stage_0_mux", "pipeline_stage_x_output_mux_phv_0", "pipeline_stage_0_hybrid_alu_0_x"],
    )
    def test_invalid_names_rejected(self, bad):
        assert not is_valid_name(bad)
        with pytest.raises(MachineCodeError):
            parse_name(bad)

    def test_is_valid_name_accepts_good_names(self):
        assert is_valid_name(output_mux_name(0, 0))


class TestMachineCodeContainer:
    def test_mapping_protocol(self):
        mc = MachineCode({"a": 1, "b": 2})
        assert mc["a"] == 1
        assert len(mc) == 2
        assert set(mc) == {"a", "b"}
        assert dict(mc) == {"a": 1, "b": 2}

    def test_from_pairs(self):
        mc = MachineCode.from_pairs([("x", 3), ("y", 4)])
        assert mc.as_dict() == {"x": 3, "y": 4}

    def test_equality_with_dict_and_machine_code(self):
        assert MachineCode({"a": 1}) == {"a": 1}
        assert MachineCode({"a": 1}) == MachineCode({"a": 1})
        assert MachineCode({"a": 1}) != MachineCode({"a": 2})

    def test_hashable(self):
        assert len({MachineCode({"a": 1}), MachineCode({"a": 1})}) == 1

    def test_negative_value_rejected(self):
        with pytest.raises(MachineCodeValueError):
            MachineCode({"a": -1})

    def test_non_integer_value_rejected(self):
        with pytest.raises(MachineCodeValueError):
            MachineCode({"a": 1.5})

    def test_boolean_value_rejected(self):
        with pytest.raises(MachineCodeValueError):
            MachineCode({"a": True})

    def test_empty_name_rejected(self):
        with pytest.raises(MachineCodeError):
            MachineCode({"": 1})

    def test_with_pairs_overrides(self):
        mc = MachineCode({"a": 1}).with_pairs({"a": 5, "b": 2})
        assert mc.as_dict() == {"a": 5, "b": 2}

    def test_without_removes(self):
        mc = MachineCode({"a": 1, "b": 2}).without(["a"])
        assert mc.as_dict() == {"b": 2}

    def test_merged_prefers_other(self):
        merged = MachineCode({"a": 1, "b": 2}).merged(MachineCode({"b": 9}))
        assert merged["b"] == 9

    def test_missing_and_unknown(self):
        mc = MachineCode({"a": 1, "z": 2})
        assert mc.missing(["a", "b"]) == ["b"]
        assert mc.unknown(["a", "b"]) == ["z"]

    def test_validate_names(self):
        good = MachineCode({output_mux_name(0, 0): 1})
        good.validate_names()
        with pytest.raises(MachineCodeError):
            MachineCode({"not_a_primitive": 1}).validate_names()

    def test_restricted_to_stage(self):
        mc = MachineCode({output_mux_name(0, 0): 1, output_mux_name(1, 0): 2})
        assert set(mc.restricted_to_stage(1)) == {output_mux_name(1, 0)}


class TestFileIO:
    def test_text_round_trip(self, tmp_path):
        mc = MachineCode({"pipeline_stage_0_output_mux_phv_0": 4, "pipeline_stage_0_output_mux_phv_1": 2})
        path = tmp_path / "machine_code.txt"
        mc.to_file(path)
        assert MachineCode.from_file(path) == mc

    def test_json_round_trip(self, tmp_path):
        mc = MachineCode({"a": 1, "b": 2})
        path = tmp_path / "machine_code.json"
        mc.to_file(path)
        assert MachineCode.from_file(path) == mc

    def test_text_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "mc.txt"
        path.write_text("# comment\n\nname_a 3\nname_b 4   # trailing\n")
        mc = MachineCode.from_file(path)
        assert mc.as_dict() == {"name_a": 3, "name_b": 4}

    def test_text_comma_separator_accepted(self, tmp_path):
        path = tmp_path / "mc.txt"
        path.write_text("name_a, 7\n")
        assert MachineCode.from_file(path)["name_a"] == 7

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "mc.txt"
        path.write_text("name_a 1 extra\n")
        with pytest.raises(MachineCodeError):
            MachineCode.from_file(path)

    def test_non_integer_value_rejected(self, tmp_path):
        path = tmp_path / "mc.txt"
        path.write_text("name_a seven\n")
        with pytest.raises(MachineCodeError):
            MachineCode.from_file(path)

    def test_json_must_be_object(self, tmp_path):
        path = tmp_path / "mc.json"
        path.write_text("[1, 2]")
        with pytest.raises(MachineCodeError):
            MachineCode.from_file(path)


class TestExpectedNames:
    def test_counts(self):
        names = expected_names(
            depth=2,
            width=2,
            stateful_holes=["h0", "h1"],
            stateless_holes=["g0"],
            stateful_operands=2,
            stateless_operands=2,
        )
        # per stage: 2 slots * (2 stateless muxes + 1 stateless hole
        #            + 2 stateful muxes + 2 stateful holes) + 2 output muxes = 16
        assert len(names) == 2 * (2 * (2 + 1 + 2 + 2) + 2)
        assert len(set(names)) == len(names)

    def test_every_expected_name_is_valid(self):
        names = expected_names(1, 1, ["a"], ["b"], 1, 1)
        assert all(is_valid_name(name) for name in names)

    def test_pipeline_spec_contract(self, small_pipeline_spec):
        names = small_pipeline_spec.expected_machine_code_names()
        assert len(names) == len(set(names))
        assert all(is_valid_name(name) for name in names)
        domains = small_pipeline_spec.hole_domains()
        assert set(domains) == set(names)
