"""Unit tests for the Domino-like packet-transaction frontend."""

import pytest

from repro.domino import (
    DominoInterpreter,
    DominoSpecification,
    PacketLayout,
    parse,
    parse_and_analyze,
)
from repro.domino.ast_nodes import DAssign, DBinaryOp, DIf, DTernary
from repro.domino.lexer import DTokenType, tokenize
from repro.errors import DominoSemanticError, DominoSyntaxError, SpecificationError

SAMPLING = """
state count = 0;

transaction sampling {
    if (count == 9) {
        pkt.sample = 1;
        count = 0;
    } else {
        pkt.sample = 0;
        count = count + 1;
    }
}
"""


class TestLexer:
    def test_keywords_and_identifiers(self):
        types = [token.type for token in tokenize("state pkt transaction if else foo")][:-1]
        assert types == [
            DTokenType.STATE,
            DTokenType.PKT,
            DTokenType.TRANSACTION,
            DTokenType.IF,
            DTokenType.ELSE,
            DTokenType.IDENT,
        ]

    def test_operators(self):
        types = [token.type for token in tokenize("== != <= >= && || ? :")][:-1]
        assert DTokenType.EQ in types and DTokenType.QUESTION in types

    def test_comments_ignored(self):
        types = [token.type for token in tokenize("// hi\n# there\n42")][:-1]
        assert types == [DTokenType.NUMBER]

    def test_bad_character_rejected(self):
        with pytest.raises(DominoSyntaxError):
            tokenize("@")


class TestParser:
    def test_state_declarations(self):
        program = parse("state a = 3; state b; transaction t { b = a; }")
        assert program.state_names == ["a", "b"]
        assert program.initial_state() == {"a": 3, "b": 0}

    def test_negative_initial_state(self):
        program = parse("state x = -5; transaction t { x = x + 1; }")
        assert program.initial_state() == {"x": -5}

    def test_bare_program_without_transaction(self):
        program = parse("state c = 0; c = c + 1;")
        assert program.name == "transaction"
        assert len(program.body) == 1

    def test_transaction_name(self):
        assert parse(SAMPLING).name == "sampling"

    def test_field_assignment_and_read(self):
        program = parse("transaction t { pkt.out = pkt.a + 1; }")
        stmt = program.body[0]
        assert isinstance(stmt, DAssign) and stmt.is_field and stmt.target == "out"

    def test_if_else_structure(self):
        program = parse(SAMPLING)
        stmt = program.body[0]
        assert isinstance(stmt, DIf)
        assert len(stmt.branches) == 1 and len(stmt.orelse) == 2

    def test_else_if_chain(self):
        program = parse(
            "transaction t { if (pkt.a == 0) { pkt.o = 0; } "
            "else if (pkt.a == 1) { pkt.o = 1; } else { pkt.o = 2; } }"
        )
        assert len(program.body[0].branches) == 2

    def test_ternary_expression(self):
        program = parse("transaction t { pkt.o = pkt.a > 3 ? 1 : 0; }")
        assert isinstance(program.body[0].value, DTernary)

    def test_operator_precedence(self):
        program = parse("transaction t { pkt.o = pkt.a + pkt.b * 2; }")
        expr = program.body[0].value
        assert isinstance(expr, DBinaryOp) and expr.op == "+"
        assert expr.right.op == "*"

    def test_missing_semicolon_rejected(self):
        with pytest.raises(DominoSyntaxError):
            parse("transaction t { pkt.o = 1 }")

    def test_unclosed_block_rejected(self):
        with pytest.raises(DominoSyntaxError):
            parse("transaction t { pkt.o = 1;")


class TestAnalysis:
    def test_field_usage_collected(self):
        program = parse_and_analyze("transaction t { pkt.out = pkt.a + pkt.b; }")
        assert program.packet_fields_read == ["a", "b"]
        assert program.packet_fields_written == ["out"]
        assert program.packet_fields == ["a", "b", "out"]

    def test_undeclared_identifier_rejected(self):
        with pytest.raises(DominoSemanticError):
            parse_and_analyze("transaction t { pkt.o = ghost; }")

    def test_local_temporary_allowed(self):
        program = parse_and_analyze("transaction t { tmp = pkt.a + 1; pkt.o = tmp; }")
        assert "tmp" not in program.state_names

    def test_duplicate_state_rejected(self):
        with pytest.raises(DominoSemanticError):
            parse_and_analyze("state x = 0; state x = 1; transaction t { x = x; }")

    def test_sampling_program_analyzes(self):
        program = parse_and_analyze(SAMPLING)
        assert program.packet_fields_written == ["sample"]
        assert program.state_names == ["count"]


class TestInterpreter:
    def test_sampling_behaviour(self):
        program = parse_and_analyze(SAMPLING)
        interpreter = DominoInterpreter(program)
        state = interpreter.initial_state()
        outputs = [interpreter.execute({}, state)["sample"] for _ in range(20)]
        assert outputs == [0] * 9 + [1] + [0] * 9 + [1]
        assert state["count"] == 0

    def test_field_reads_default_to_zero(self):
        program = parse_and_analyze("transaction t { pkt.o = pkt.missing + 1; }")
        assert DominoInterpreter(program).execute({}, {})["o"] == 1

    def test_run_trace(self):
        program = parse_and_analyze("state total = 0; transaction t { pkt.o = total; total = total + pkt.v; }")
        results = DominoInterpreter(program).run_trace([{"v": 5}, {"v": 6}, {"v": 7}])
        assert [r["o"] for r in results] == [0, 5, 11]

    def test_ternary_and_logical_ops(self):
        program = parse_and_analyze(
            "transaction t { pkt.o = (pkt.a > 2 && pkt.b > 2) ? 1 : 0; }"
        )
        interp = DominoInterpreter(program)
        assert interp.execute({"a": 3, "b": 3}, {})["o"] == 1
        assert interp.execute({"a": 3, "b": 1}, {})["o"] == 0

    def test_division_by_zero_is_zero(self):
        program = parse_and_analyze("transaction t { pkt.o = pkt.a / pkt.b; }")
        assert DominoInterpreter(program).execute({"a": 5, "b": 0}, {})["o"] == 0

    def test_unary_operators(self):
        program = parse_and_analyze("transaction t { pkt.o = !pkt.a; pkt.n = -pkt.a; }")
        result = DominoInterpreter(program).execute({"a": 4}, {})
        assert result["o"] == 0 and result["n"] == -4

    def test_read_before_assignment_rejected_at_runtime(self):
        program = parse("transaction t { pkt.o = later; later = 1; }")
        with pytest.raises(DominoSemanticError):
            DominoInterpreter(program).execute({}, {})


class TestPacketLayout:
    def test_layout_round_trip(self):
        layout = PacketLayout(container_fields=["a", None], output_fields=[None, "o"])
        assert layout.num_containers == 2
        assert layout.relevant_containers == [1]
        assert layout.phv_to_packet([5, 9]) == {"a": 5}
        assert layout.packet_to_phv({"a": 5, "o": 7}, [5, 9]) == [5, 7]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SpecificationError):
            PacketLayout(container_fields=["a"], output_fields=["a", "b"])


class TestDominoSpecification:
    def test_specification_matches_interpreter(self):
        layout = PacketLayout(container_fields=[None], output_fields=["sample"])
        spec = DominoSpecification.from_source(SAMPLING, layout)
        trace = spec.run([[0]] * 12)
        assert trace.container_series(0) == [0] * 9 + [1, 0, 0]

    def test_specification_matches_function_spec_of_benchmark_program(self):
        """The Domino rendition of the sampling benchmark agrees with its Python spec."""
        from repro.programs import get_program

        program = get_program("sampling")
        layout = PacketLayout(container_fields=[None], output_fields=["sample"])
        domino_spec = DominoSpecification.from_source(program.domino_source, layout)
        function_spec = program.specification()
        inputs = [[i % 7] for i in range(40)]
        assert domino_spec.run(inputs).outputs() == function_spec.run(inputs).outputs()

    def test_heavy_hitter_domino_agrees_with_spec(self):
        from repro.programs import get_program

        program = get_program("snap_heavy_hitter")
        layout = PacketLayout(container_fields=["len"], output_fields=["count_out"])
        domino_spec = DominoSpecification.from_source(program.domino_source, layout)
        inputs = [[v] for v in (10, 20, 30, 40)]
        assert domino_spec.run(inputs).outputs() == program.specification().run(inputs).outputs()
