"""Property-based tests: the two execution paths and the three dgen levels agree.

These are the reproduction's central internal correctness oracles:

* the ALU DSL reference interpreter and the code dgen generates must compute
  identical outputs and state updates for any machine code and any operands;
* a full pipeline simulated from the unoptimised, SCC-propagated and inlined
  descriptions must produce identical output traces and final state — i.e.
  the optimisations of §3.4 never change behaviour;
* the dict-specialised exact-match table lookup the fused dRMT generator
  emits must agree with the linear-scan :meth:`MatchActionTable.lookup` for
  any table contents — hits, misses and default-action fallthroughs alike.
"""

import functools

import pytest
from hypothesis import given, settings, strategies as st

from repro import atoms, dgen
from repro.alu_dsl import ALUInterpreter
from repro.dsim import RMTSimulator
from repro.hardware import PipelineSpec
from repro.ir import Module, to_source
from repro.machine_code import naming
from repro.machine_code.pairs import MachineCode

ATOM_NAMES = ["raw", "if_else_raw", "pred_raw", "sub", "nested_if", "pair"]

values_strategy = st.integers(min_value=0, max_value=1023)
hole_value_strategy = st.integers(min_value=0, max_value=7)


def compile_alu(spec, stage, kind, slot, opt_level, machine_code):
    """Compile a single ALU function (plus helpers) into a callable."""
    code = dgen.generate_alu(spec, stage, kind, slot, opt_level, machine_code)
    namespace = {}
    source = to_source(Module(functions=code.helpers + [code.function]))
    exec(compile(source, "<alu>", "exec"), namespace)  # noqa: S102
    return namespace[code.function.name]


def full_machine_code(spec, stage, kind, slot, hole_values):
    return {
        naming.alu_hole_name(stage, kind, slot, hole): value
        for hole, value in hole_values.items()
    }


class TestInterpreterVsGeneratedCode:
    @pytest.mark.parametrize("atom_name", ATOM_NAMES)
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_stateful_atom_equivalence(self, atom_name, data):
        """Interpreter output/state == generated-code output/state at every opt level."""
        spec = atoms.get_atom(atom_name)
        hole_values = {
            hole: data.draw(hole_value_strategy, label=hole) for hole in spec.holes
        }
        operands = [data.draw(values_strategy, label=f"operand_{i}") for i in range(spec.num_operands)]
        state = [data.draw(values_strategy, label=f"state_{i}") for i in range(spec.num_state_vars)]

        reference = ALUInterpreter(spec).execute(operands, list(state), hole_values)
        machine_code = full_machine_code(spec, 0, naming.STATEFUL, 0, hole_values)

        for opt_level in dgen.OPT_LEVELS:
            function = compile_alu(spec, 0, naming.STATEFUL, 0, opt_level, machine_code)
            generated_state = list(state)
            if opt_level == dgen.OPT_UNOPTIMIZED:
                output = function(*operands, generated_state, machine_code)
            else:
                output = function(*operands, generated_state)
            assert output == reference.output, f"output diverged at opt level {opt_level}"
            assert generated_state == reference.state, f"state diverged at opt level {opt_level}"

    @pytest.mark.parametrize("atom_name", ["stateless_arith", "stateless_rel", "stateless_mux", "stateless_full"])
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_stateless_atom_equivalence(self, atom_name, data):
        spec = atoms.get_atom(atom_name)
        hole_values = {hole: data.draw(hole_value_strategy, label=hole) for hole in spec.holes}
        operands = [data.draw(values_strategy, label=f"operand_{i}") for i in range(spec.num_operands)]

        reference = ALUInterpreter(spec).execute(operands, [], hole_values)
        machine_code = full_machine_code(spec, 1, naming.STATELESS, 0, hole_values)

        for opt_level in dgen.OPT_LEVELS:
            function = compile_alu(spec, 1, naming.STATELESS, 0, opt_level, machine_code)
            if opt_level == dgen.OPT_UNOPTIMIZED:
                output = function(*operands, machine_code)
            else:
                output = function(*operands)
            assert output == reference.output


class TestOptimisationLevelsAgree:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_pipeline_traces_identical_across_levels(self, data):
        """Random machine code, random traffic: the three levels agree end to end."""
        spec = PipelineSpec(
            depth=2,
            width=2,
            stateful_alu=atoms.get_atom("if_else_raw"),
            stateless_alu=atoms.get_atom("stateless_full"),
            name="property_pipeline",
        )
        domains = spec.hole_domains()
        pairs = {}
        for name in spec.expected_machine_code_names():
            domain = domains[name]
            upper = (domain - 1) if domain else 63
            pairs[name] = data.draw(st.integers(min_value=0, max_value=upper), label=name)
        machine_code = MachineCode(pairs)

        inputs = [
            [data.draw(values_strategy) for _ in range(spec.width)] for _ in range(6)
        ]

        results = {}
        for level in dgen.OPT_LEVELS:
            description = dgen.generate(spec, machine_code, opt_level=level)
            results[level] = RMTSimulator(description).run(inputs)

        baseline = results[dgen.OPT_UNOPTIMIZED]
        for level in (dgen.OPT_SCC, dgen.OPT_SCC_INLINE):
            assert results[level].outputs == baseline.outputs
            assert results[level].final_state == baseline.final_state

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        count=st.integers(min_value=0, max_value=30),
    )
    def test_traffic_generator_reproducible(self, seed, count):
        from repro.dsim import TrafficGenerator

        first = TrafficGenerator(num_containers=3, seed=seed).generate(count)
        second = TrafficGenerator(num_containers=3, seed=seed).generate(count)
        assert first == second
        assert len(first) == count

    @settings(max_examples=30, deadline=None)
    @given(
        stage=st.integers(min_value=0, max_value=31),
        slot=st.integers(min_value=0, max_value=15),
        operand=st.integers(min_value=0, max_value=7),
        container=st.integers(min_value=0, max_value=15),
        kind=st.sampled_from([naming.STATEFUL, naming.STATELESS]),
        hole=st.sampled_from(["mux3_0", "const_7", "rel_op_2", "imm", "opt_11"]),
    )
    def test_machine_code_names_round_trip(self, stage, slot, operand, container, kind, hole):
        for name in (
            naming.alu_hole_name(stage, kind, slot, hole),
            naming.input_mux_name(stage, kind, slot, operand),
            naming.output_mux_name(stage, container),
        ):
            assert naming.parse_name(name).render() == name


@functools.lru_cache(maxsize=1)
def _telemetry_bundle():
    from repro.drmt import DrmtHardwareParams, generate_bundle
    from repro.p4 import samples

    return generate_bundle(samples.telemetry_pipeline(), DrmtHardwareParams(num_processors=3))


class TestExactLookupSpecialisation:
    """The dict-specialised exact lookup vs the linear-scan oracle.

    The fused dRMT generator replaces :meth:`MatchActionTable.lookup` (a
    linear scan) with one dict probe over :meth:`exact_index` for all-exact
    tables; these properties pin the two to identical winners — including
    duplicate keys decided by priority, first-added tie-breaks, misses, and
    (end to end) default-action fallthroughs with identical hit statistics.
    """

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_exact_index_agrees_with_linear_scan(self, data):
        from repro.drmt.tables import MatchActionTable, MatchPattern, TableEntry
        from repro.p4.program import Table, TableRead

        num_fields = data.draw(st.integers(min_value=1, max_value=3), label="fields")
        field_names = [f"pkt.f{index}" for index in range(num_fields)]
        definition = Table(
            name="t",
            reads=[TableRead(field=name, match_kind="exact") for name in field_names],
            actions=["act"],
            size=256,
        )
        table = MatchActionTable(definition, program=None)
        # Values from a tiny domain so duplicate keys (priority contests) and
        # both hits and misses happen often.
        value_strategy = st.integers(min_value=0, max_value=3)
        entries = data.draw(
            st.lists(
                st.tuples(
                    st.tuples(*[value_strategy] * num_fields),
                    st.integers(min_value=0, max_value=3),  # priority
                ),
                max_size=24,
            ),
            label="entries",
        )
        for values, priority in entries:
            table.add_entry(
                TableEntry(
                    patterns={
                        name: MatchPattern(kind="exact", value=value, width=16)
                        for name, value in zip(field_names, values)
                    },
                    action="act",
                    action_args=[priority],
                    priority=priority,
                )
            )
        index = table.exact_index()
        packets = data.draw(
            st.lists(st.tuples(*[value_strategy] * num_fields), max_size=12),
            label="packets",
        )
        for values in packets:
            fields = dict(zip(field_names, values))
            scanned = table.lookup(fields)
            probed = index.get(tuple(values))
            assert probed is scanned, (values, entries)

    def test_exact_index_rejects_mixed_match_kinds(self):
        from repro.drmt.tables import MatchActionTable
        from repro.errors import TableConfigError
        from repro.p4.program import Table, TableRead

        definition = Table(
            name="t",
            reads=[
                TableRead(field="pkt.a", match_kind="exact"),
                TableRead(field="pkt.b", match_kind="ternary"),
            ],
            actions=["act"],
        )
        table = MatchActionTable(definition, program=None)
        assert not table.is_exact
        with pytest.raises(TableConfigError, match="all-exact"):
            table.exact_index()

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_fused_dict_lookup_end_to_end_vs_tick_scan(self, data):
        """Random table contents: fused (dict probe) == tick (linear scan).

        Covers hits (installed flows), misses and the default-action path
        (bucketize misses fall through to ``pick_bucket()`` with zero args),
        including the per-table hit/miss statistics the specialised code
        accumulates locally and folds back on exit.
        """
        from repro.drmt import DRMTSimulator
        from repro.drmt.tables import MatchPattern, TableEntry
        from repro.drmt.traffic import PacketGenerator
        from repro.traffic import choice_field

        bundle = _telemetry_bundle()
        installed_flows = data.draw(
            st.lists(st.integers(min_value=0, max_value=7), max_size=6, unique=True),
            label="installed",
        )
        entries = [
            (
                "bucketize",
                TableEntry(
                    patterns={"pkt.flow_id": MatchPattern(kind="exact", value=flow, width=16)},
                    action="pick_bucket",
                    action_args=[data.draw(st.integers(min_value=0, max_value=15), label="bucket")],
                ),
            )
            for flow in installed_flows
        ]
        installed_buckets = data.draw(
            st.lists(st.integers(min_value=0, max_value=15), max_size=8, unique=True),
            label="buckets",
        )
        entries.extend(
            (
                "accounting",
                TableEntry(
                    patterns={"meta.bucket": MatchPattern(kind="exact", value=bucket, width=16)},
                    action="accumulate",
                ),
            )
            for bucket in installed_buckets
        )
        count = data.draw(st.integers(min_value=0, max_value=60), label="count")
        seed = data.draw(st.integers(min_value=0, max_value=2**16), label="seed")
        packets = PacketGenerator(
            bundle.program,
            seed=seed,
            field_overrides={"pkt.flow_id": choice_field(range(10))},
        ).generate(count)

        tick = DRMTSimulator(bundle, table_entries=list(entries), engine="tick").run_packets(packets)
        fused = DRMTSimulator(bundle, table_entries=list(entries), engine="fused").run_packets(packets)
        assert [record.outputs for record in fused.records] == [
            record.outputs for record in tick.records
        ]
        assert fused.table_hits == tick.table_hits
        assert fused.register_dump == tick.register_dump
