"""Property-based tests: the two execution paths and the three dgen levels agree.

These are the reproduction's central internal correctness oracles:

* the ALU DSL reference interpreter and the code dgen generates must compute
  identical outputs and state updates for any machine code and any operands;
* a full pipeline simulated from the unoptimised, SCC-propagated and inlined
  descriptions must produce identical output traces and final state — i.e.
  the optimisations of §3.4 never change behaviour.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import atoms, dgen
from repro.alu_dsl import ALUInterpreter
from repro.dsim import RMTSimulator
from repro.hardware import PipelineSpec
from repro.ir import Module, to_source
from repro.machine_code import naming
from repro.machine_code.pairs import MachineCode

ATOM_NAMES = ["raw", "if_else_raw", "pred_raw", "sub", "nested_if", "pair"]

values_strategy = st.integers(min_value=0, max_value=1023)
hole_value_strategy = st.integers(min_value=0, max_value=7)


def compile_alu(spec, stage, kind, slot, opt_level, machine_code):
    """Compile a single ALU function (plus helpers) into a callable."""
    code = dgen.generate_alu(spec, stage, kind, slot, opt_level, machine_code)
    namespace = {}
    source = to_source(Module(functions=code.helpers + [code.function]))
    exec(compile(source, "<alu>", "exec"), namespace)  # noqa: S102
    return namespace[code.function.name]


def full_machine_code(spec, stage, kind, slot, hole_values):
    return {
        naming.alu_hole_name(stage, kind, slot, hole): value
        for hole, value in hole_values.items()
    }


class TestInterpreterVsGeneratedCode:
    @pytest.mark.parametrize("atom_name", ATOM_NAMES)
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_stateful_atom_equivalence(self, atom_name, data):
        """Interpreter output/state == generated-code output/state at every opt level."""
        spec = atoms.get_atom(atom_name)
        hole_values = {
            hole: data.draw(hole_value_strategy, label=hole) for hole in spec.holes
        }
        operands = [data.draw(values_strategy, label=f"operand_{i}") for i in range(spec.num_operands)]
        state = [data.draw(values_strategy, label=f"state_{i}") for i in range(spec.num_state_vars)]

        reference = ALUInterpreter(spec).execute(operands, list(state), hole_values)
        machine_code = full_machine_code(spec, 0, naming.STATEFUL, 0, hole_values)

        for opt_level in dgen.OPT_LEVELS:
            function = compile_alu(spec, 0, naming.STATEFUL, 0, opt_level, machine_code)
            generated_state = list(state)
            if opt_level == dgen.OPT_UNOPTIMIZED:
                output = function(*operands, generated_state, machine_code)
            else:
                output = function(*operands, generated_state)
            assert output == reference.output, f"output diverged at opt level {opt_level}"
            assert generated_state == reference.state, f"state diverged at opt level {opt_level}"

    @pytest.mark.parametrize("atom_name", ["stateless_arith", "stateless_rel", "stateless_mux", "stateless_full"])
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_stateless_atom_equivalence(self, atom_name, data):
        spec = atoms.get_atom(atom_name)
        hole_values = {hole: data.draw(hole_value_strategy, label=hole) for hole in spec.holes}
        operands = [data.draw(values_strategy, label=f"operand_{i}") for i in range(spec.num_operands)]

        reference = ALUInterpreter(spec).execute(operands, [], hole_values)
        machine_code = full_machine_code(spec, 1, naming.STATELESS, 0, hole_values)

        for opt_level in dgen.OPT_LEVELS:
            function = compile_alu(spec, 1, naming.STATELESS, 0, opt_level, machine_code)
            if opt_level == dgen.OPT_UNOPTIMIZED:
                output = function(*operands, machine_code)
            else:
                output = function(*operands)
            assert output == reference.output


class TestOptimisationLevelsAgree:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_pipeline_traces_identical_across_levels(self, data):
        """Random machine code, random traffic: the three levels agree end to end."""
        spec = PipelineSpec(
            depth=2,
            width=2,
            stateful_alu=atoms.get_atom("if_else_raw"),
            stateless_alu=atoms.get_atom("stateless_full"),
            name="property_pipeline",
        )
        domains = spec.hole_domains()
        pairs = {}
        for name in spec.expected_machine_code_names():
            domain = domains[name]
            upper = (domain - 1) if domain else 63
            pairs[name] = data.draw(st.integers(min_value=0, max_value=upper), label=name)
        machine_code = MachineCode(pairs)

        inputs = [
            [data.draw(values_strategy) for _ in range(spec.width)] for _ in range(6)
        ]

        results = {}
        for level in dgen.OPT_LEVELS:
            description = dgen.generate(spec, machine_code, opt_level=level)
            results[level] = RMTSimulator(description).run(inputs)

        baseline = results[dgen.OPT_UNOPTIMIZED]
        for level in (dgen.OPT_SCC, dgen.OPT_SCC_INLINE):
            assert results[level].outputs == baseline.outputs
            assert results[level].final_state == baseline.final_state

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        count=st.integers(min_value=0, max_value=30),
    )
    def test_traffic_generator_reproducible(self, seed, count):
        from repro.dsim import TrafficGenerator

        first = TrafficGenerator(num_containers=3, seed=seed).generate(count)
        second = TrafficGenerator(num_containers=3, seed=seed).generate(count)
        assert first == second
        assert len(first) == count

    @settings(max_examples=30, deadline=None)
    @given(
        stage=st.integers(min_value=0, max_value=31),
        slot=st.integers(min_value=0, max_value=15),
        operand=st.integers(min_value=0, max_value=7),
        container=st.integers(min_value=0, max_value=15),
        kind=st.sampled_from([naming.STATEFUL, naming.STATELESS]),
        hole=st.sampled_from(["mux3_0", "const_7", "rel_op_2", "imm", "opt_11"]),
    )
    def test_machine_code_names_round_trip(self, stage, slot, operand, container, kind, hole):
        for name in (
            naming.alu_hole_name(stage, kind, slot, hole),
            naming.input_mux_name(stage, kind, slot, operand),
            naming.output_mux_name(stage, container),
        ):
            assert naming.parse_name(name).render() == name
